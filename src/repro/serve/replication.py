"""Replicated shards: failover, hinted handoff, and anti-entropy repair.

Paper Section 4.2 anticipates that a heavily used AIDE facility would
"replicate itself among multiple computers, as many W3 services do".
The sharded :class:`~.server.DiffServer` spread archives across shards
but kept exactly one copy of each — a single lost shard silently loses
history for ~1/N of all tracked URLs.  This module adds the redundancy
layer, federated-archive style (Memento's overlapping holdings):

* every URL's archive lives on the top **R** shards of its rendezvous
  ranking (:meth:`~repro.core.snapshot.sharding.ShardRouter.
  replicas_for`) — prefix-stable under fleet growth, deterministic in
  every process;
* **writes fan out**: the serving replica applies the mutation through
  the ordinary CGI path, then state-transfers the result to its live
  peers; peers that are down get a **hinted handoff** entry queued in a
  framed journal (:class:`HandoffJournal`, same wire format as the
  store journal) and replayed when they recover;
* **reads fail over**: the serving replica is the freshest live member
  of the replica set, so a dead primary degrades to its peer instead
  of a 503; when live replicas visibly disagree (revision counts
  differ), the read triggers **read repair**;
* a background **anti-entropy scrub** walks the URL space on the sim
  clock, comparing per-replica **Merkle-style bucketed revision
  fingerprints** pairwise and converging any divergence to the
  freshest copy — the safety net for every window the fast paths miss;
* faults are injected by :class:`ShardFaultPlan` — crash (in-memory
  state lost, optionally with a torn on-disk journal tail), slow shard
  (cost multiplier), all at fixed virtual times — so one seeded chaos
  run is byte-reproducible and a recovered replica can be proved
  identical to an unfaulted twin.

Everything here is deterministic: fault schedules are explicit virtual
times, replica choice is a pure function of (liveness, archive state,
rendezvous order), and state transfer replays the deterministic
``checkin`` path — which is what lets the benchmark gate on
byte-identity of post-scrub state against a zero-fault reference run.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.snapshot.journal import JOURNAL_NAME, frame_payload, scan_frames
from ..core.snapshot.persistence import JournalRecoveryWarning, load_store
from ..core.snapshot.sharding import ShardedSnapshotStore, shard_dirname
from ..core.snapshot.store import SnapshotStore

__all__ = [
    "ShardFault",
    "ShardFaultPlan",
    "HandoffJournal",
    "ReplicationManager",
    "url_fingerprint",
    "bucket_fingerprints",
    "HANDOFF_NAME",
]

#: The hinted-handoff journal's file name, next to the shard dirs.
HANDOFF_NAME = "handoff.log"


# ----------------------------------------------------------------------
# Deterministic shard-level fault injection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardFault:
    """One scheduled shard fault.

    ``crash`` kills shard ``shard`` at virtual time ``at`` (its
    in-memory state is discarded; with ``torn_tail`` its on-disk
    journal additionally loses a partial final frame, the way a real
    crash tears an in-flight write) and recovers it at ``recover_at``.
    ``slow`` multiplies the shard's worker cost by ``factor`` over the
    same window instead.
    """

    kind: str  # "crash" | "slow"
    shard: int
    at: int
    recover_at: int
    torn_tail: bool = False
    factor: int = 4


class ShardFaultPlan:
    """A fixed schedule of shard faults, the storage-layer sibling of
    :class:`~repro.web.network.FaultPlan`: all fault times are explicit
    virtual timestamps, so two runs of the same plan observe the exact
    same transitions at the exact same dispatches."""

    def __init__(self) -> None:
        self.faults: List[ShardFault] = []

    def crash(self, shard: int, at: int, recover_at: int,
              torn_tail: bool = False) -> "ShardFaultPlan":
        if recover_at <= at:
            raise ValueError("recover_at must be after at")
        self.faults.append(ShardFault("crash", shard, at, recover_at,
                                      torn_tail=torn_tail))
        return self

    def slow(self, shard: int, at: int, until: int,
             factor: int = 4) -> "ShardFaultPlan":
        if until <= at:
            raise ValueError("until must be after at")
        if factor < 1:
            raise ValueError("slow factor must be >= 1")
        self.faults.append(ShardFault("slow", shard, at, until,
                                      factor=factor))
        return self

    @classmethod
    def kill_each_once(cls, shard_count: int, start: int, downtime: int,
                       spacing: Optional[int] = None,
                       torn_tail: bool = False) -> "ShardFaultPlan":
        """Kill every shard exactly once, staggered so no two outages
        overlap — the strongest single-failure schedule an R=2 fleet
        must survive with full availability."""
        if spacing is None:
            spacing = 2 * downtime
        if spacing < downtime:
            raise ValueError("spacing < downtime would overlap outages")
        plan = cls()
        for shard in range(shard_count):
            at = start + shard * spacing
            plan.crash(shard, at, at + downtime, torn_tail=torn_tail)
        return plan

    def transitions(self) -> List[Tuple[int, int, str, ShardFault]]:
        """Every state change in time order: ``(time, seq, event,
        fault)`` with event one of crash/recover/slow_on/slow_off.  The
        sequence number makes the sort total, so simultaneous events
        apply in plan order."""
        out: List[Tuple[int, int, str, ShardFault]] = []
        for seq, fault in enumerate(self.faults):
            if fault.kind == "crash":
                out.append((fault.at, seq, "crash", fault))
                out.append((fault.recover_at, seq, "recover", fault))
            else:
                out.append((fault.at, seq, "slow_on", fault))
                out.append((fault.recover_at, seq, "slow_off", fault))
        out.sort(key=lambda item: (item[0], item[1]))
        return out


# ----------------------------------------------------------------------
# Hinted handoff
# ----------------------------------------------------------------------

class HandoffJournal:
    """Per-replica queues of "this URL changed while you were down".

    Hints are URL-level, not operation-level: replay state-transfers
    the URL from a live peer, which is idempotent and order-free, so a
    hint queued twice or replayed after a scrub already fixed the URL
    is harmless.  With a ``directory`` the queue is also persisted as a
    framed append-only log (``handoff.log``) using the *store
    journal's* frame format — ``queue`` and ``drain`` events append
    records, and :meth:`load` folds them back into pending queues,
    tolerating a torn tail exactly like journal recovery does.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._pending: Dict[int, List[str]] = {}
        self.queued = 0
        self.replayed = 0
        self.torn_tail_truncations = 0
        if directory is not None:
            self.load()

    # ------------------------------------------------------------------
    def _path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, HANDOFF_NAME)

    def _append(self, line: str) -> None:
        path = self._path()
        if path is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        with open(path, "ab") as handle:
            handle.write(frame_payload(line.encode("utf-8")))
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> None:
        """Rebuild pending queues from the on-disk log.  A torn tail is
        truncated away (the lost suffix is at most one hint, whose URL
        the recovery scrub re-converges anyway)."""
        path = self._path()
        if path is None or not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            data = handle.read()
        scan = scan_frames(data)
        if scan.damage:
            with open(path, "wb") as handle:
                handle.write(data[:scan.valid_bytes])
            self.torn_tail_truncations += 1
        pending: Dict[int, List[str]] = {}
        for payload in scan.payloads:
            fields = payload.decode("utf-8").rstrip("\n").split("\t")
            if fields[0] == "hint" and len(fields) == 3:
                target = int(fields[1])
                urls = pending.setdefault(target, [])
                if fields[2] not in urls:
                    urls.append(fields[2])
            elif fields[0] == "drain" and len(fields) == 2:
                pending.pop(int(fields[1]), None)
        self._pending = pending

    # ------------------------------------------------------------------
    def queue(self, target: int, url: str) -> None:
        urls = self._pending.setdefault(target, [])
        if url not in urls:
            urls.append(url)
            self.queued += 1
            self._append(f"hint\t{target}\t{url}\n")

    def drain(self, target: int) -> List[str]:
        urls = self._pending.pop(target, [])
        if urls:
            self.replayed += len(urls)
            self._append(f"drain\t{target}\n")
        return urls

    def depth(self, target: int) -> int:
        return len(self._pending.get(target, []))

    def depths(self) -> Dict[int, int]:
        return {target: len(urls)
                for target, urls in sorted(self._pending.items()) if urls}

    @property
    def total_depth(self) -> int:
        return sum(len(urls) for urls in self._pending.values())


# ----------------------------------------------------------------------
# Replica state fingerprints
# ----------------------------------------------------------------------

def url_fingerprint(store: SnapshotStore, key: str) -> str:
    """Hex digest of everything one replica holds for canonical URL
    ``key``: every revision (number, date, author, log, full text),
    every per-user seen stamp, and the cached live page.  Two replicas
    with equal fingerprints hold byte-identical state for the URL —
    the equality witness read repair, the scrub, and the benchmark's
    identical-to-unfaulted-twin gate all share."""
    digest = hashlib.sha256()
    archive = store.archives.get(key)
    if archive is not None:
        for info, text in archive.iter_texts():
            digest.update(
                f"rev\t{info.number}\t{info.date}\t{info.author}\t"
                f"{info.log}\n".encode("utf-8")
            )
            digest.update(text.encode("utf-8"))
            digest.update(b"\x00")
    for user in store.users.users_tracking(key):
        for seen in store.users.versions_seen(user, key):
            digest.update(
                f"stamp\t{user}\t{seen.revision}\t{seen.when}\n"
                .encode("utf-8")
            )
    page = store.page_cache.get(key)
    if page is not None:
        digest.update(b"page\n")
        digest.update(page.encode("utf-8"))
    return digest.hexdigest()


def bucket_fingerprints(store: SnapshotStore, keys: Sequence[str],
                        buckets: int = 16) -> Dict[int, str]:
    """Merkle-style rollup: URL fingerprints folded into ``buckets``
    digests by URL hash.  Two replicas compare bucket digests first and
    descend to per-URL fingerprints only inside unequal buckets, so a
    converged pair is confirmed in ``buckets`` comparisons."""
    grouped: Dict[int, List[str]] = {}
    for key in keys:
        bucket = int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
        ) % buckets
        grouped.setdefault(bucket, []).append(key)
    out: Dict[int, str] = {}
    for bucket, bucket_keys in grouped.items():
        digest = hashlib.sha256()
        for key in sorted(bucket_keys):
            digest.update(key.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(url_fingerprint(store, key).encode("ascii"))
        out[bucket] = digest.hexdigest()
    return out


# ----------------------------------------------------------------------
# The replication manager
# ----------------------------------------------------------------------

class ReplicationManager:
    """Liveness, routing, fan-out, handoff, repair, and scrub for a
    replicated :class:`~repro.core.snapshot.sharding.
    ShardedSnapshotStore`.

    The consistency model is single-writer-per-URL: the **serving
    replica** — the freshest live member of the URL's rendezvous
    replica set, ties broken by rendezvous order — handles both reads
    and writes, and every other copy is converged to it by *state
    transfer* (:meth:`sync_url`), never by re-executing operations.
    Replaying the deterministic ``checkin`` path with the source's
    recorded dates and authors makes the transfer idempotent and the
    copies provably identical, which is what all four repair channels
    (write fan-out, hint replay, read repair, scrub) lean on.
    """

    def __init__(
        self,
        store: ShardedSnapshotStore,
        replication: int = 2,
        fault_plan: Optional[ShardFaultPlan] = None,
        directory: Optional[str] = None,
        scrub_interval: int = 0,
        scrub_batch: int = 64,
        scrub_buckets: int = 16,
        default_retry_after: int = 30,
        on_reset: Optional[Callable[[int], None]] = None,
        on_repair: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        if not 1 <= replication <= store.shard_count:
            raise ValueError(
                f"replication must be in [1, {store.shard_count}], "
                f"got {replication}"
            )
        self.store = store
        self.replication = replication
        self.directory = directory
        self.scrub_interval = scrub_interval
        self.scrub_batch = scrub_batch
        self.scrub_buckets = scrub_buckets
        self.default_retry_after = default_retry_after
        #: Hooks into the serving layer: a reset clears a shard's whole
        #: response cache, a repair drops one URL's cached responses on
        #: one shard — the stale-after-repair guarantee.
        self.on_reset = on_reset or (lambda shard: None)
        self.on_repair = on_repair or (lambda shard, url: None)
        self.alive = [True] * store.shard_count
        self.slow_factor = [1] * store.shard_count
        self.handoff = HandoffJournal(directory)
        self._transitions = (fault_plan.transitions()
                             if fault_plan is not None else [])
        self._next_transition = 0
        self._replica_sets: Dict[str, Tuple[int, ...]] = {}
        #: Dead shards' scheduled recovery times (for Retry-After).
        self._recover_at: Dict[int, int] = {}
        self._scrub_cursor = 0
        self._next_scrub = scrub_interval if scrub_interval else None
        # Counters (surfaced through stats()).
        self.failovers = 0
        self.read_repairs = 0
        self.write_syncs = 0
        self.sync_bytes = 0
        self.divergence_rebuilds = 0
        self.crashes = 0
        self.recoveries = 0
        self.journal_truncations = 0
        self.scrub_runs = 0
        self.scrub_cycles = 0
        self.scrub_repairs = 0
        self.unavailable = 0

    # ------------------------------------------------------------------
    # Liveness and fault transitions
    # ------------------------------------------------------------------
    def advance(self, now: int) -> None:
        """Apply every scheduled fault transition due by ``now``, then
        run the scrub if its next tick has arrived.  Called at the top
        of every dispatch, so fault timing is a pure function of the
        request stream's virtual timestamps."""
        while (self._next_transition < len(self._transitions)
               and self._transitions[self._next_transition][0] <= now):
            _at, _seq, event, fault = \
                self._transitions[self._next_transition]
            self._next_transition += 1
            if event == "crash":
                self._crash(fault)
            elif event == "recover":
                self._recover(fault, now)
            elif event == "slow_on":
                self.slow_factor[fault.shard] = fault.factor
            elif event == "slow_off":
                self.slow_factor[fault.shard] = 1
        if self._next_scrub is not None and now >= self._next_scrub:
            self.scrub(now)
            self._next_scrub = now + self.scrub_interval

    def _shard_dir(self, shard: int) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, shard_dirname(shard))

    def _crash(self, fault: ShardFault) -> None:
        shard = fault.shard
        self.alive[shard] = False
        self.crashes += 1
        self._recover_at[shard] = fault.recover_at
        if fault.torn_tail:
            self._tear_journal_tail(shard)
        # The crash model: in-memory state is gone.  Everything the
        # shard knew must come back from its disk journal and its
        # replica peers.
        self.store.reset_shard(shard)
        self.on_reset(shard)

    def _tear_journal_tail(self, shard: int) -> None:
        """Simulate an in-flight journal write torn by the crash:
        truncate the shard's journal mid-frame, producing exactly the
        recoverable torn-tail shape ``load_store`` knows how to cut."""
        shard_dir = self._shard_dir(shard)
        if shard_dir is None:
            return
        path = os.path.join(shard_dir, JOURNAL_NAME)
        if not os.path.exists(path):
            return
        size = os.path.getsize(path)
        if size > 17:
            with open(path, "ab") as handle:
                handle.truncate(size - 17)

    def _recover(self, fault: ShardFault, now: int) -> None:
        shard = fault.shard
        self.alive[shard] = True
        self.recoveries += 1
        self._recover_at.pop(shard, None)
        shard_dir = self._shard_dir(shard)
        if shard_dir is not None and os.path.isdir(shard_dir):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", JournalRecoveryWarning)
                load_store(self.store.shards[shard], shard_dir)
            self.journal_truncations += sum(
                1 for warning in caught
                if issubclass(warning.category, JournalRecoveryWarning)
            )
        # Hinted handoff first (targeted, cheap), then the recovery
        # scrub over every co-owned URL — the hint queue only covers
        # writes that happened while the shard was down, not state the
        # crash destroyed between disk syncs.
        for url in self.handoff.drain(shard):
            self._sync_to(shard, url)
        self._recovery_scrub(shard)
        self.on_reset(shard)

    def _recovery_scrub(self, shard: int) -> None:
        for key in self.known_urls():
            if shard in self.replica_set(key):
                self._sync_to(shard, key)

    def retry_after(self, url: str, now: int) -> int:
        """How long a request for a fully-dead replica set should wait:
        until the earliest scheduled recovery among its replicas."""
        waits = [
            self._recover_at[shard] - now
            for shard in self.replica_set(url)
            if shard in self._recover_at and self._recover_at[shard] > now
        ]
        return max(1, min(waits)) if waits else self.default_retry_after

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def replica_set(self, url: str) -> Tuple[int, ...]:
        key = self.store.router.canonical(url)
        cached = self._replica_sets.get(key)
        if cached is None:
            cached = tuple(self.store.router.replicas_for(
                key, self.replication))
            self._replica_sets[key] = cached
        return cached

    def serving_index(self, url: str) -> Optional[int]:
        """The freshest live replica for ``url`` (rendezvous order
        breaks ties), or None when the whole replica set is down."""
        key = self.store.router.canonical(url)
        replicas = self.replica_set(key)
        best: Optional[int] = None
        best_count = -1
        for shard in replicas:
            if not self.alive[shard]:
                continue
            archive = self.store.shards[shard].archives.get(key)
            count = archive.revision_count if archive is not None else 0
            if count > best_count:
                best, best_count = shard, count
        if best is not None and replicas and best != replicas[0]:
            # Served by a non-primary member: either the primary is
            # dead (failover) or it is still catching up (stale).
            self.failovers += 1
        return best

    def known_urls(self) -> List[str]:
        """The URL universe, discovered from the shards themselves:
        every archive key any replica holds, plus every URL a hint or a
        routing decision has mentioned.  Sorted for determinism."""
        keys = set(self._replica_sets)
        for shard in self.store.shards:
            keys.update(shard.archives.keys())
        for urls in self.handoff._pending.values():
            keys.update(urls)
        return sorted(keys)

    # ------------------------------------------------------------------
    # State transfer — the one repair primitive
    # ------------------------------------------------------------------
    def sync_url(self, source: int, target: int, url: str) -> int:
        """Converge ``target``'s state for ``url`` to ``source``'s;
        returns bytes transferred (0 when already identical).

        Fast path: the target's revision metadata is a prefix of the
        source's → append only the missing revisions, replaying
        ``checkin`` with the source's recorded dates/authors/logs so
        the copies end up identical.  Divergence (same numbers,
        different history) rebuilds the target's archive from the
        source outright.  Stamps and the cached live page are copied
        wholesale either way, and the target's derived caches for the
        URL are dropped.
        """
        src = self.store.shards[source]
        dst = self.store.shards[target]
        key = self.store.router.canonical(url)
        moved = 0
        src_archive = src.archives.get(key)
        dst_archive = dst.archives.get(key)
        if src_archive is not None:
            src_texts = list(src_archive.iter_texts())
            prefix_ok = dst_archive is not None and self._is_prefix(
                dst_archive, src_texts)
            if dst_archive is None or not prefix_ok:
                if dst_archive is not None:
                    # Divergent history: drop and rebuild.  The old
                    # revisions' cached checkouts are now lies.
                    self.divergence_rebuilds += 1
                    for info in dst_archive.revisions():
                        dst.checkout_cache.invalidate_revision(
                            key, info.number)
                    del dst.archives[key]
                    dst.persisted_revisions.pop(key, None)
                dst_archive = dst.archive_for(key)
            start = dst_archive.revision_count
            for info, text in src_texts[start:]:
                dst_archive.checkin(text, info.date, author=info.author,
                                    log=info.log)
                moved += len(text)
            dst.diff_cache.invalidate_url(key)
        elif dst_archive is not None:
            # The source holds nothing for this URL; mirror that.
            self.divergence_rebuilds += 1
            for info in dst_archive.revisions():
                dst.checkout_cache.invalidate_revision(key, info.number)
            del dst.archives[key]
            dst.persisted_revisions.pop(key, None)
            dst.diff_cache.invalidate_url(key)
        moved += self._sync_stamps(src, dst, key)
        page = src.page_cache.get(key)
        if page is None:
            dst.page_cache.pop(key, None)
        elif dst.page_cache.get(key) != page:
            dst.page_cache[key] = page
            moved += len(page)
        if moved:
            self.sync_bytes += moved
            self.on_repair(target, key)
        return moved

    @staticmethod
    def _is_prefix(dst_archive, src_texts: List[Tuple[object, str]]) -> bool:
        count = dst_archive.revision_count
        if count > len(src_texts):
            return False
        for (src_info, src_text), dst_info in zip(
                src_texts[:count], dst_archive.revisions()):
            if (src_info.number != dst_info.number
                    or src_info.date != dst_info.date
                    or src_info.author != dst_info.author
                    or src_info.log != dst_info.log):
                return False
        # Metadata matches; confirm the head text (interior texts are
        # pinned by the heads on both sides via the delta chains).
        if count:
            head = dst_archive.checkout(dst_archive.head_revision)
            if head != src_texts[count - 1][1]:
                return False
        return True

    def _sync_stamps(self, src: SnapshotStore, dst: SnapshotStore,
                     key: str) -> int:
        moved = 0
        src_users = src.users.users_tracking(key)
        for user in dst.users.users_tracking(key):
            if user not in src_users:
                dst.users.forget(user, key)
                moved += len(user)
        for user in src_users:
            src_seen = src.users.versions_seen(user, key)
            if dst.users.versions_seen(user, key) == src_seen:
                continue
            dst.users.forget(user, key)
            for seen in src_seen:
                dst.users.record(user, key, seen.revision, seen.when)
                moved += len(seen.revision) + 8
        return moved

    def _freshest(self, key: str, members: Sequence[int]) -> Optional[int]:
        best: Optional[int] = None
        best_count = -1
        for shard in members:
            archive = self.store.shards[shard].archives.get(key)
            count = archive.revision_count if archive is not None else 0
            if count > best_count:
                best, best_count = shard, count
        return best

    def _sync_to(self, target: int, url: str) -> int:
        """Converge ``target`` from the freshest live peer.

        A recovering shard whose disk journal is *ahead* of its peers
        is never truncated down to a staler copy — when the target
        holds strictly more revisions than every live peer it has
        nothing to pull (the peers catch up through read repair and the
        scrub).  On a revision-count tie the peer still wins: a
        disk-restored shard can match its peer's archive while lagging
        on stamps or the cached live page, and ``sync_url`` copies
        exactly those differences (and nothing when the copies really
        are identical).
        """
        key = self.store.router.canonical(url)
        peers = [shard for shard in self.replica_set(key)
                 if self.alive[shard] and shard != target]
        source = self._freshest(key, peers)
        if source is None:
            return 0
        target_archive = self.store.shards[target].archives.get(key)
        target_count = (target_archive.revision_count
                        if target_archive is not None else 0)
        source_archive = self.store.shards[source].archives.get(key)
        source_count = (source_archive.revision_count
                        if source_archive is not None else 0)
        if target_count > source_count:
            return 0
        return self.sync_url(source, target, key)

    # ------------------------------------------------------------------
    # The four repair channels
    # ------------------------------------------------------------------
    def on_write(self, url: str, serving: int) -> None:
        """Fan a completed mutation out: live peers get an immediate
        state transfer, dead peers get a hint."""
        key = self.store.router.canonical(url)
        for shard in self.replica_set(key):
            if shard == serving:
                continue
            if self.alive[shard]:
                if self.sync_url(serving, shard, key):
                    self.write_syncs += 1
            else:
                self.handoff.queue(shard, key)

    def on_read(self, url: str, serving: int) -> None:
        """Read repair: when live replicas visibly disagree (revision
        counts differ), converge the laggards to the serving copy
        before the response leaves — the next read may be served by
        the replica that was behind."""
        key = self.store.router.canonical(url)
        serving_archive = self.store.shards[serving].archives.get(key)
        serving_count = (serving_archive.revision_count
                         if serving_archive is not None else 0)
        for shard in self.replica_set(key):
            if shard == serving or not self.alive[shard]:
                continue
            archive = self.store.shards[shard].archives.get(key)
            count = archive.revision_count if archive is not None else 0
            if count != serving_count:
                if self.sync_url(serving, shard, key):
                    self.read_repairs += 1

    def scrub(self, now: int) -> int:
        """One anti-entropy tick: walk the next ``scrub_batch`` URLs of
        the (sorted) URL universe, compare every live replica pair's
        bucketed fingerprints, and converge any URL whose fingerprints
        disagree to its freshest live copy.  Returns repairs made."""
        self.scrub_runs += 1
        urls = self.known_urls()
        if not urls:
            return 0
        if self._scrub_cursor >= len(urls):
            self._scrub_cursor = 0
        batch = urls[self._scrub_cursor:self._scrub_cursor + self.scrub_batch]
        self._scrub_cursor += len(batch)
        if self._scrub_cursor >= len(urls):
            self._scrub_cursor = 0
            self.scrub_cycles += 1
        # Group the batch by replica pair so each pair is compared via
        # its bucket digests (the Merkle rollup) before any per-URL
        # fingerprint walk.
        by_pair: Dict[Tuple[int, int], List[str]] = {}
        for key in batch:
            replicas = [shard for shard in self.replica_set(key)
                        if self.alive[shard]]
            for a_pos in range(len(replicas)):
                for b_pos in range(a_pos + 1, len(replicas)):
                    pair = (replicas[a_pos], replicas[b_pos])
                    by_pair.setdefault(pair, []).append(key)
        repairs = 0
        suspect: Dict[str, None] = {}
        for (a, b), pair_keys in sorted(by_pair.items()):
            digests_a = bucket_fingerprints(
                self.store.shards[a], pair_keys, self.scrub_buckets)
            digests_b = bucket_fingerprints(
                self.store.shards[b], pair_keys, self.scrub_buckets)
            if digests_a == digests_b:
                continue
            bad_buckets = {bucket for bucket in digests_a
                           if digests_a[bucket] != digests_b.get(bucket)}
            for key in pair_keys:
                bucket = int.from_bytes(
                    hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
                ) % self.scrub_buckets
                if bucket in bad_buckets:
                    suspect[key] = None
        for key in suspect:
            replicas = [shard for shard in self.replica_set(key)
                        if self.alive[shard]]
            source = self._freshest(key, replicas)
            if source is None:
                continue
            for shard in replicas:
                if shard == source:
                    continue
                if (url_fingerprint(self.store.shards[shard], key)
                        != url_fingerprint(self.store.shards[source], key)):
                    self.sync_url(source, shard, key)
                    repairs += 1
        self.scrub_repairs += repairs
        return repairs

    def converged(self, url: str) -> bool:
        """Do every URL's live replicas hold identical state?  (The
        test/benchmark witness, not a serving-path operation.)"""
        key = self.store.router.canonical(url)
        replicas = [shard for shard in self.replica_set(key)
                    if self.alive[shard]]
        if len(replicas) < 2:
            return True
        first = url_fingerprint(self.store.shards[replicas[0]], key)
        return all(
            url_fingerprint(self.store.shards[shard], key) == first
            for shard in replicas[1:]
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        live = [index for index, up in enumerate(self.alive) if up]
        dead = [index for index, up in enumerate(self.alive) if not up]
        return {
            "factor": self.replication,
            "live_replicas": len(live),
            "dead_replicas": len(dead),
            "dead": dead,
            "slow": [index for index, factor
                     in enumerate(self.slow_factor) if factor > 1],
            "handoff": {
                "depth": self.handoff.total_depth,
                "by_target": self.handoff.depths(),
                "queued": self.handoff.queued,
                "replayed": self.handoff.replayed,
            },
            "failovers": self.failovers,
            "read_repairs": self.read_repairs,
            "write_syncs": self.write_syncs,
            "sync_bytes": self.sync_bytes,
            "divergence_rebuilds": self.divergence_rebuilds,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "journal_truncations": self.journal_truncations,
            "unavailable": self.unavailable,
            "scrub": {
                "runs": self.scrub_runs,
                "cycles": self.scrub_cycles,
                "repairs": self.scrub_repairs,
                "cursor": self._scrub_cursor,
                "interval": self.scrub_interval,
            },
        }
