"""Per-shard response caching for the diff server.

Paper Section 4.2: "These loads can be alleviated by caching the output
of HtmlDiff for a while."  The store already caches *diff results*
(:class:`~repro.core.snapshot.diffcache.DiffCache`) and *checkout
texts* (:class:`~repro.core.snapshot.checkoutcache.CheckoutCache`);
this layer caches the **finished HTTP response** — rendered HTML,
keep-alive padding and all — so a repeat request never reaches the
store at all.

Soundness rule: a response may be replayed only if recomputing it could
not produce different bytes.  Three request shapes qualify:

* ``action=view&rev=R`` — a pinned revision's text is immutable;
* ``action=diff&r1=A&r2=B`` — the diff of two pinned revisions is
  immutable (the store's own DiffCache relies on the same fact);
* ``action=view&date=D`` — resolves through ``revision_at``; a *new*
  check-in can change the resolution, so these entries are **volatile**
  and are dropped for a URL whenever the server routes a mutating
  action (remember, or a diff that may check in the live page) there.

The Memento actions follow the same split: ``action=memento&rev=R`` is
a pinned revision (immutable, like a pinned view), while
``action=timegate`` (keyed by the request's ``Accept-Datetime`` value
and policy — the 302 is a *negotiation result*, cacheable like a 200)
and ``action=timemap`` enumerate history that the next check-in
extends, so both are volatile.

Everything else (default diffs, history, remember, stats) is
state-dependent or side-effecting and is never cached.  Entries are
LRU-bounded; the hit counters feed the ``serve.cache.*`` metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from ..web.http import Response

__all__ = ["ResponseCache", "cacheable_key"]


def cacheable_key(params: Dict[str, str]) -> Optional[Tuple]:
    """The cache identity of a request, or None when it must not be
    cached.  The key carries a ``volatile`` flag (date-resolved views)
    used for per-URL invalidation."""
    action = params.get("action", "")
    url = params.get("url", "")
    if not url:
        return None
    if action == "view":
        rev = params.get("rev")
        date = params.get("date")
        if rev is not None:
            return ("view", url, str(rev), False)
        if date is not None:
            return ("view_at", url, str(date), True)
        return None
    if action == "diff":
        r1, r2 = params.get("r1"), params.get("r2")
        if r1 is not None and r2 is not None:
            return ("diff", url, str(r1), str(r2), False)
        return None
    if action == "memento":
        rev = params.get("rev")
        if rev is not None:
            return ("memento", url, str(rev), False)
        return None
    if action == "timegate":
        # The negotiated target lives in the Accept-Datetime *header*;
        # the server folds it into params as ``accept_datetime`` before
        # asking for a key (absent header ≠ any dated request).
        return ("timegate", url, params.get("policy") or "",
                params.get("accept_datetime", ""), True)
    if action == "timemap":
        return ("timemap", url, params.get("format", "link"), True)
    return None


def _copy_response(response: Response) -> Response:
    """Responses are handed to transport code that may mutate them
    (HEAD handling blanks bodies); never share the cached object."""
    return Response(status=response.status, headers=response.headers.copy(),
                    body=response.body)


class ResponseCache:
    """LRU cache of finished responses for one shard."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Response]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Response]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return _copy_response(entry)

    def put(self, key: Hashable, response: Response) -> None:
        if self.capacity == 0:
            return
        # Only successful pages — plus the TimeGate's 302, which is a
        # deterministic negotiation *result* — are worth replaying;
        # error pages are cheap to regenerate and may reflect transient
        # state.
        if response.status not in (200, 302):
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = _copy_response(response)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate_url(self, url: str, volatile_only: bool = True) -> int:
        """Drop cached entries for ``url``.

        The default drops only the *volatile* entries (date-resolved
        views) — pinned-revision entries are immutable under ordinary
        operation and survive a check-in.  ``volatile_only=False``
        drops **everything** for the URL: replication repair can
        rewrite a replica's archive (a divergence rebuild renumbers
        history), so after a failover or read repair even "immutable"
        pinned entries may describe revisions that no longer exist.
        """
        doomed = [
            key for key in self._entries
            if key[1] == url and (key[-1] is True or not volatile_only)
        ]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop every entry (a crashed-and-recovered shard's cache may
        describe state the crash destroyed); returns how many."""
        doomed = len(self._entries)
        self._entries.clear()
        self.invalidations += doomed
        return doomed

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
