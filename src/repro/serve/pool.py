"""Bounded worker pool with an admission queue, in virtual time.

The paper's snapshot was one CGI process per request: under load, httpd
forked without bound and the machine thrashed.  The diff server replaces
that with the shape every modern service uses (and the ROADMAP names):
**N workers + a bounded queue + load shedding**.

The pool is a *deterministic queueing model* on the shared
:class:`~repro.simclock.SimClock`: each worker is a ``free_at``
timestamp, an arriving request is assigned to the earliest-free worker
(FIFO; ties break toward the lowest index), and a request that would
have to wait behind more than ``queue_limit`` others is **rejected**
instead — the caller turns that into 503 + ``Retry-After``.  Because
admission is pure arithmetic over arrival order and sim time, two runs
of the same request sequence make identical decisions, which is what
lets the closed-loop benchmark assert byte-identity while simulating
10k+ concurrent users without 10k threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from ..obs import NOOP as NOOP_OBS

__all__ = ["Admission", "Rejection", "WorkerPool"]


@dataclass(frozen=True)
class Admission:
    """One admitted request's schedule: which worker runs it, when it
    starts (>= arrival when queued), and when it finishes."""

    worker: int
    start: int
    finish: int

    def latency(self, arrival: int) -> int:
        return self.finish - arrival

    def waited(self, arrival: int) -> int:
        return self.start - arrival


@dataclass(frozen=True)
class Rejection:
    """Queue-full: come back in ``retry_after`` simulated seconds (the
    earliest instant a queue slot opens — a queued request starts, or
    a worker goes fully idle)."""

    retry_after: int


class WorkerPool:
    """``workers`` parallel servers behind a queue of at most
    ``queue_limit`` waiting requests.

    ``queue_limit=0`` means no waiting at all — a request is served
    immediately or shed.  The queue depth at an instant is the number
    of admitted requests whose start time is still in the future.
    """

    def __init__(
        self,
        workers: int,
        queue_limit: int,
        obs=None,
        name: str = "serve.pool",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.workers = workers
        self.queue_limit = queue_limit
        self._free_at: List[int] = [0] * workers
        #: Start times of admitted-but-not-started requests (pruned
        #: lazily against the current instant).
        self._queued_starts: List[int] = []
        self.admitted = 0
        self.rejected = 0
        self.queued = 0
        self.busy_seconds = 0
        self.obs = obs if obs is not None else NOOP_OBS
        self._g_depth = self.obs.gauge(f"{name}.queue_depth")
        self._g_busy = self.obs.gauge(f"{name}.busy_workers")
        self._c_admitted = self.obs.counter(f"{name}.admitted")
        self._c_rejected = self.obs.counter(f"{name}.rejected")
        self._h_wait = self.obs.histogram(f"{name}.wait_seconds")

    # ------------------------------------------------------------------
    def _prune(self, now: int) -> None:
        self._queued_starts = [s for s in self._queued_starts if s > now]

    def queue_depth(self, now: int) -> int:
        self._prune(now)
        return len(self._queued_starts)

    def busy_workers(self, now: int) -> int:
        return sum(1 for free in self._free_at if free > now)

    def earliest_free(self) -> int:
        return min(self._free_at)

    def next_slot_time(self) -> int:
        """The earliest instant a rejected request could be admitted:
        when a queued request starts (freeing its queue slot) or when a
        worker drains entirely, whichever comes first."""
        candidates = [min(self._free_at)]
        if self._queued_starts:
            candidates.append(min(self._queued_starts))
        return min(candidates)

    # ------------------------------------------------------------------
    def admit(self, cost: int, now: int) -> Union[Admission, Rejection]:
        """Schedule one request of ``cost`` simulated seconds arriving
        at ``now``; either an :class:`Admission` or a :class:`Rejection`.
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self._prune(now)
        worker = min(range(self.workers), key=lambda i: self._free_at[i])
        start = max(now, self._free_at[worker])
        if start > now and len(self._queued_starts) >= self.queue_limit:
            self.rejected += 1
            self._c_rejected.inc()
            retry_after = max(1, self.next_slot_time() - now)
            self._update_gauges(now)
            return Rejection(retry_after=retry_after)
        finish = start + cost
        self._free_at[worker] = finish
        self.admitted += 1
        self.busy_seconds += cost
        self._c_admitted.inc()
        if start > now:
            self.queued += 1
            self._queued_starts.append(start)
        self._h_wait.observe(start - now)
        self._update_gauges(now)
        return Admission(worker=worker, start=start, finish=finish)

    def _update_gauges(self, now: int) -> None:
        self._g_depth.set(len(self._queued_starts))
        self._g_busy.set(self.busy_workers(now))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "queued": self.queued,
            "busy_seconds": self.busy_seconds,
        }
