"""Budgeted check scheduling: which URLs get this run's fetches?

The paper's w3newer walks the whole hotlist every run.  At 100k URLs
with a bounded fetch budget that is no longer a plan — this module
screens every hotlist entry the way :class:`UrlChecker`'s decision
ladder would, predicts which ones will need real HTTP, and picks the
check set that maximizes expected freshness gain:

* ``never`` thresholds still win unconditionally (Table-1 compat);
* checks that the ladder will answer for free (cached verdicts,
  ``file:`` URLs, cached robot exclusions) are always scheduled —
  they cost no budget;
* the remaining fetch candidates compete for the budget.  The STATIC
  policy keeps hotlist order (the paper's behavior, truncated); the
  ADAPTIVE policy ranks by expected-change probability since the URL
  was last verified, from :class:`ChangeRateEstimator`.

Whatever the budget excludes is synthesized as a DEFERRED outcome so
the report still covers the whole hotlist and the user can see what
the budget cost them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ...simclock import NEVER
from ...web.proxy import ProxyCache
from ...web.url import parse_url
from .checker import CheckerFlags
from .errors import CheckOutcome, CheckSource, UrlState, quarantine_backoff
from .estimator import ChangeRateEstimator
from .history import BrowserHistory
from .hotlist import HotlistEntry
from .statuscache import StatusCache
from .thresholds import ThresholdConfig

__all__ = [
    "SchedulePolicy",
    "ScheduledCheck",
    "PolicyDecision",
    "CrawlSchedule",
    "build_schedule",
]


class SchedulePolicy(Enum):
    """How fetch candidates compete for the budget."""

    #: Hotlist order, Table-1 thresholds as rate limiters (the paper).
    STATIC = "static"
    #: Ranked by expected-change probability from the estimator.
    ADAPTIVE = "adaptive"

    @classmethod
    def parse(cls, text: str) -> "SchedulePolicy":
        """Parse a policy name (CLI surface)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown schedule policy {text!r}; "
                f"expected one of: {', '.join(p.value for p in cls)}"
            )


@dataclass(frozen=True)
class ScheduledCheck:
    """One unit of work the crawl executor will run.

    ``expects_http`` is the screening *prediction* used for budgeting;
    the governor accounts the requests the check actually spends.
    ``force`` tells the checker the scheduler already decided to spend
    HTTP, so threshold rate limits and cached unmodified verdicts must
    not suppress the fetch (``never`` and robots still win).
    ``coalesced`` lists hotlist indexes that share this URL — they get
    a copy of the outcome instead of their own fetch.
    """

    index: int
    url: str
    priority: float = 0.0
    expects_http: bool = True
    force: bool = False
    coalesced: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PolicyDecision:
    """Why the scheduler did what it did with one URL (``--explain``)."""

    url: str
    action: str  # "fetch" | "free" | "deferred" | "never" | "not-due" | "coalesced"
    reason: str
    priority: float = 0.0


@dataclass
class CrawlSchedule:
    """Everything one screening pass decided."""

    policy: SchedulePolicy
    budget: Optional[int]
    #: Work for the executor, in hotlist order.
    checks: List[ScheduledCheck] = field(default_factory=list)
    #: Outcomes decided without running anything: (hotlist index, outcome).
    synthesized: List[Tuple[int, CheckOutcome]] = field(default_factory=list)
    #: Per-URL decisions (only when recording is enabled — it is a
    #: per-URL dict, which matters at 100k URLs).
    decisions: Dict[str, PolicyDecision] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Candidate:
    """Mutable scratch entry while the schedule is being built."""

    index: int
    url: str
    priority: float = 0.0
    expects_http: bool = True
    force: bool = False
    last_seen: Optional[int] = None
    coalesced: List[int] = field(default_factory=list)

    def freeze(self) -> ScheduledCheck:
        """The immutable form handed to the executor."""
        return ScheduledCheck(
            index=self.index,
            url=self.url,
            priority=self.priority,
            expects_http=self.expects_http,
            force=self.force,
            coalesced=tuple(self.coalesced),
        )


def _cached_says_changed(
    record, proxy: Optional[ProxyCache], url: str, last_seen: Optional[int]
) -> bool:
    """Will a cheap modification source answer changed-since-seen?

    Mirrors the checker's step 3: a "modified since seen" verdict from
    the status cache or the proxy cache is actionable at any age and
    costs no HTTP.
    """
    if record is not None and record.modification_date is not None \
            and record.date_obtained_at is not None:
        if last_seen is None or record.modification_date > last_seen:
            return True
    if proxy is not None:
        info = proxy.cached_last_modified(parse_url(url))
        if info is not None and (last_seen is None or info[0] > last_seen):
            return True
    return False


def _cached_fresh_unmodified(
    record, proxy: Optional[ProxyCache], url: str, last_seen: Optional[int],
    threshold: int, flags: CheckerFlags, now: int,
) -> bool:
    """Will step 3 answer "unmodified, and I still trust that"?

    Mirrors the checker's trust windows: status-cache info for the
    staleness horizon, proxy info only while current with respect to
    the threshold; a zero threshold never trusts an unmodified verdict.
    """
    if threshold == 0:
        return False
    candidates = []
    if record is not None and record.modification_date is not None \
            and record.date_obtained_at is not None:
        candidates.append(
            (record.modification_date, record.date_obtained_at,
             flags.stale_after)
        )
    if proxy is not None:
        info = proxy.cached_last_modified(parse_url(url))
        if info is not None:
            candidates.append(
                (info[0], info[1], min(threshold, flags.stale_after))
            )
    candidates.sort(key=lambda c: -c[1])
    for mod_date, obtained_at, trust_window in candidates:
        if last_seen is not None and mod_date <= last_seen \
                and now - obtained_at < trust_window:
            return True
    return False


def _verified_reference(record, last_seen: Optional[int]) -> Optional[int]:
    """When was this URL last *verified* by anything we trust?

    The adaptive priority is the probability of a change since this
    instant.  Any of: the user viewing the page, a direct HTTP check,
    or the moment cached modification info was obtained.
    """
    stamps = [last_seen]
    if record is not None:
        stamps.extend(
            [record.last_http_check, record.date_obtained_at,
             record.checksum_obtained_at]
        )
    known = [s for s in stamps if s is not None]
    return max(known) if known else None


def build_schedule(
    entries: Sequence[HotlistEntry],
    now: int,
    config: ThresholdConfig,
    history: BrowserHistory,
    cache: StatusCache,
    proxy: Optional[ProxyCache] = None,
    flags: Optional[CheckerFlags] = None,
    policy: SchedulePolicy = SchedulePolicy.STATIC,
    budget: Optional[int] = None,
    estimator: Optional[ChangeRateEstimator] = None,
    record_decisions: bool = True,
) -> CrawlSchedule:
    """Screen the hotlist and pick this run's check set.

    Deterministic: same inputs, same schedule.  ``budget`` bounds the
    number of *fetch* checks (screening's prediction); free checks are
    always scheduled.  The ADAPTIVE policy requires an ``estimator``.
    """
    flags = flags or CheckerFlags()
    if policy is SchedulePolicy.ADAPTIVE and estimator is None:
        raise ValueError("the adaptive policy needs a ChangeRateEstimator")
    schedule = CrawlSchedule(policy=policy, budget=budget)
    counters = {
        "scheduled": 0, "free": 0, "fetch": 0, "deferred": 0,
        "never": 0, "not_due": 0, "coalesced": 0, "quarantined": 0,
    }
    free: List[_Candidate] = []
    fetch: List[_Candidate] = []
    owners: Dict[str, _Candidate] = {}

    def decide(url: str, action: str, reason: str, priority: float = 0.0) -> None:
        if record_decisions:
            schedule.decisions[url] = PolicyDecision(
                url=url, action=action, reason=reason, priority=priority
            )

    for index, entry in enumerate(entries):
        url = entry.url
        canon = str(parse_url(url).normalized())
        owner = owners.get(canon)
        if owner is not None:
            # Same page elsewhere in the hotlist: one fetch, fanned out.
            owner.coalesced.append(index)
            counters["coalesced"] += 1
            decide(url, "coalesced", f"duplicate of hotlist entry {owner.index}")
            continue

        threshold = config.threshold_for(url)
        if threshold == NEVER:
            schedule.synthesized.append(
                (index, CheckOutcome(url=url, state=UrlState.NEVER_CHECK))
            )
            counters["never"] += 1
            decide(url, "never", "threshold is 'never'")
            continue

        parsed = parse_url(url)
        last_seen = history.last_seen(url)
        record = cache.peek(url)

        if parsed.scheme == "file":
            candidate = _Candidate(index=index, url=url, expects_http=False,
                                   last_seen=last_seen)
            free.append(candidate)
            owners[canon] = candidate
            decide(url, "free", "file: URL, one local stat")
            continue

        if policy is SchedulePolicy.STATIC and threshold > 0 \
                and last_seen is not None and now - last_seen < threshold:
            schedule.synthesized.append(
                (index, CheckOutcome(url=url, state=UrlState.NOT_CHECKED,
                                     last_seen=last_seen))
            )
            counters["not_due"] += 1
            decide(url, "not-due", "visited within the threshold")
            continue

        if record is not None and record.robot_forbidden \
                and not flags.ignore_robots:
            candidate = _Candidate(index=index, url=url, expects_http=False,
                                   last_seen=last_seen)
            free.append(candidate)
            owners[canon] = candidate
            decide(url, "free", "cached robot exclusion, no HTTP")
            continue

        if record is not None and record.quarantine_count > 0 \
                and record.quarantined_at is not None \
                and now - record.quarantined_at < quarantine_backoff(
                    record.quarantine_count,
                    flags.quarantine_backoff_base):
            # Mirrors the checker's quarantine backoff: a poison page
            # answers QUARANTINED for free instead of burning budget.
            schedule.synthesized.append(
                (index, CheckOutcome(url=url, state=UrlState.QUARANTINED,
                                     error=record.last_error,
                                     error_count=record.quarantine_count,
                                     last_seen=last_seen))
            )
            counters["quarantined"] += 1
            decide(url, "quarantined", "in quarantine backoff")
            continue

        if _cached_says_changed(record, proxy, url, last_seen):
            candidate = _Candidate(index=index, url=url, expects_http=False,
                                   last_seen=last_seen)
            free.append(candidate)
            owners[canon] = candidate
            decide(url, "free", "cached verdict: modified since seen")
            continue

        if policy is SchedulePolicy.STATIC:
            if _cached_fresh_unmodified(record, proxy, url, last_seen,
                                        threshold, flags, now):
                candidate = _Candidate(index=index, url=url,
                                       expects_http=False,
                                       last_seen=last_seen)
                free.append(candidate)
                owners[canon] = candidate
                decide(url, "free", "cached unmodified verdict still fresh")
                continue
            if threshold > 0 and record is not None \
                    and record.last_http_check is not None \
                    and now - record.last_http_check < threshold:
                schedule.synthesized.append(
                    (index, CheckOutcome(url=url, state=UrlState.NOT_CHECKED,
                                         last_seen=last_seen))
                )
                counters["not_due"] += 1
                decide(url, "not-due", "checked within the threshold")
                continue
            candidate = _Candidate(index=index, url=url, last_seen=last_seen)
            fetch.append(candidate)
            owners[canon] = candidate
            decide(url, "fetch", "due under the static thresholds")
            continue

        # ADAPTIVE: rank by expected change probability since the URL
        # was last verified.  A URL no layer has ever observed gets
        # p=1.0 (must-explore); the estimator's own history stands in
        # when the status cache has nothing.
        reference = _verified_reference(record, last_seen)
        if reference is None:
            estimate = estimator.peek(url)
            if estimate is not None:
                reference = estimate.last_check_at
        elapsed = None if reference is None else max(0, now - reference)
        p = estimator.p_changed(url, elapsed)
        candidate = _Candidate(index=index, url=url, priority=p, force=True,
                               last_seen=last_seen)
        fetch.append(candidate)
        owners[canon] = candidate
        decide(url, "fetch", "competing for budget", priority=p)

    # ------------------------------------------------------------------
    # Budget: free checks always run; fetch candidates compete.
    # ------------------------------------------------------------------
    if budget is None or budget >= len(fetch):
        selected = fetch
        deferred: List[_Candidate] = []
    elif policy is SchedulePolicy.ADAPTIVE:
        ranked = sorted(fetch, key=lambda c: (-c.priority, c.index))
        selected, deferred = ranked[:budget], ranked[budget:]
    else:
        selected, deferred = fetch[:budget], fetch[budget:]

    for candidate in deferred:
        schedule.synthesized.append(
            (candidate.index,
             CheckOutcome(url=candidate.url, state=UrlState.DEFERRED,
                          last_seen=candidate.last_seen))
        )
        counters["deferred"] += 1
        decide(candidate.url, "deferred", "over the fetch budget",
               priority=candidate.priority)
        # A deferred owner still answers for its duplicates.
        for dup in candidate.coalesced:
            schedule.synthesized.append(
                (dup, CheckOutcome(url=entries[dup].url,
                                   state=UrlState.DEFERRED,
                                   last_seen=candidate.last_seen))
            )

    chosen = sorted(free + selected, key=lambda c: c.index)
    schedule.checks = [c.freeze() for c in chosen]
    counters["free"] = len(free)
    counters["fetch"] = len(selected)
    counters["scheduled"] = len(schedule.checks)
    schedule.counters = counters
    return schedule
