"""The w3newer decision ladder: is this page new to the user?

Section 3's logic, per URL:

1. Look up the Table 1 threshold.  ``never`` ⇒ skip forever; if the
   user *visited* the page within the threshold ⇒ skip this run.
2. ``file:`` URLs cost one local ``stat`` — no HTTP.
3. Consult the known-modification-date sources in order of cheapness:
   the status cache from previous runs, then the proxy-caching server.
   If either says the page changed after the user last saw it, report
   CHANGED without any HTTP.  If it says the page has NOT changed,
   trust that only while the information is fresh ("HTTP is used only
   if the time the modification information was obtained was long
   enough ago to be considered 'stale' (currently... one week)").
4. A direct HEAD is also rate-limited by the threshold ("a threshold
   associated with each page to determine the maximum frequency of
   direct HEAD requests").
5. Honor robots.txt (verdicts cached; ``ignore_robots`` overrides).
6. HEAD the page.  No ``Last-Modified`` in the reply ⇒ GET it and
   compare checksums (the w3new inheritance; also how CGI output is
   tracked).  Redirects surface as MOVED; HTTP and transport errors as
   ERROR, feeding the systemic-failure detector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ...obs import NOOP as NOOP_OBS
from ...simclock import DAY, NEVER, WEEK, SimClock
from ...web.client import RobotsUnavailable, UserAgent
from ...web.guards import ContentGuardError
from ...web.http import NetworkError, NetworkUnreachable
from ...web.proxy import ProxyCache
from ...web.resilience import CircuitOpen, RetriesExhausted
from ...web.robots import RobotsFile
from ...web.url import parse_url
from .errors import (
    CheckOutcome,
    CheckSource,
    SystemicFailureDetector,
    UrlState,
    quarantine_backoff,
)
from .history import BrowserHistory
from .localfs import LocalFiles
from .statuscache import StatusCache
from .thresholds import ThresholdConfig

__all__ = ["CheckerFlags", "UrlChecker", "content_checksum"]


def content_checksum(body: str) -> str:
    """The page-content checksum used when Last-Modified is absent."""
    return hashlib.md5(body.encode("utf-8", "replace")).hexdigest()


def _wire_cost(exc: NetworkError) -> int:
    """HTTP requests a failed call actually put on the wire."""
    if isinstance(exc, CircuitOpen):
        return 0
    if isinstance(exc, RetriesExhausted):
        return exc.attempts
    return 1


@dataclass
class CheckerFlags:
    """w3newer's command-line flags, as the paper describes them."""

    #: "a special flag... set when the script is invoked" to retry
    #: URLs previously found robot-forbidden.
    ignore_robots: bool = False
    #: "Another flag can tell w3newer to treat error conditions as a
    #: successful check as far as the URL's timestamp goes."
    treat_errors_as_success: bool = False
    #: When cached modification info stops being trusted (the paper's
    #: "currently, the threshold is one week").
    stale_after: int = WEEK
    #: Robot name matched against robots.txt records.
    robot_name: str = "w3newer"
    #: Section 3.1's proposed improvement: "skip subsequent URLs for a
    #: host if a host or network error (such as 'timeout' or 'network
    #: unreachable') has already occurred."
    skip_failing_hosts: bool = False
    #: Base window for the quarantine backoff: a URL whose content
    #: tripped a guard is left alone for ``base * 2^(trips-1)``
    #: (capped at 16x) before the next attempt.
    quarantine_backoff_base: int = DAY


class UrlChecker:
    """Stateful per-run checker (robots verdicts cached per host)."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        config: ThresholdConfig,
        history: BrowserHistory,
        cache: StatusCache,
        proxy: Optional[ProxyCache] = None,
        local_files: Optional[LocalFiles] = None,
        flags: Optional[CheckerFlags] = None,
        failure_detector: Optional[SystemicFailureDetector] = None,
        obs=None,
        guard=None,
        quarantine=None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.config = config
        self.history = history
        self.cache = cache
        self.proxy = proxy
        self.local_files = local_files or LocalFiles()
        self.flags = flags or CheckerFlags()
        self.failures = failure_detector or SystemicFailureDetector()
        self._robots_by_host: Dict[str, RobotsFile] = {}
        #: Hosts whose robots.txt answered an HTTP error this run; the
        #: verdict (the error message) is cached so the host is asked
        #: once, and every one of its URLs reports the same error.
        self._robots_errors: Dict[str, str] = {}
        #: Hosts that produced a transport failure during THIS run; with
        #: ``skip_failing_hosts`` their remaining URLs are not attempted.
        self._failed_hosts: set = set()
        #: Optional :class:`~repro.web.guards.ContentGuard` applied to
        #: every fetched body (and HEAD headers); trips quarantine the
        #: URL instead of checksumming hostile bytes.
        self.guard = guard
        #: Optional :class:`~repro.core.quarantine.QuarantineJournal`
        #: receiving the offending bytes + verdict on every trip.
        self.quarantine = quarantine
        self.obs = obs if obs is not None else NOOP_OBS
        self._c_head = self.obs.counter("w3newer.fetch.head_requests")
        self._c_get = self.obs.counter("w3newer.fetch.get_requests")
        self._c_bytes = self.obs.counter("w3newer.fetch.bytes")
        self._c_robots = self.obs.counter("w3newer.fetch.robots_requests")
        self._c_degraded = self.obs.counter("w3newer.degraded_stale")
        self._c_quarantined = self.obs.counter("w3newer.quarantined")

    # ------------------------------------------------------------------
    def check(self, url: str, force: bool = False) -> CheckOutcome:
        """Run the full ladder for one URL.

        ``force`` is the adaptive scheduler's voice: it already decided
        to spend HTTP on this URL, so the threshold rate limits (steps
        1 and 4) and the trust window on cached *unmodified* verdicts
        are skipped.  ``never`` thresholds, robots.txt, and cached
        changed-since-seen verdicts still win — forcing buys a fetch,
        not permission.
        """
        now = self.clock.now
        threshold = self.config.threshold_for(url)
        if threshold == NEVER:
            return CheckOutcome(url=url, state=UrlState.NEVER_CHECK)

        parsed = parse_url(url)
        last_seen = self.history.last_seen(url)
        record = self.cache.record_for(url)

        if parsed.scheme == "file":
            return self._check_local_file(url, parsed.path, last_seen, record)

        if self.flags.skip_failing_hosts and parsed.host in self._failed_hosts:
            return CheckOutcome(
                url=url, state=UrlState.ERROR,
                error=f"{parsed.host} already failed this run; skipped",
                error_count=record.error_count, last_seen=last_seen,
            )

        # 1. Recently visited by the user ⇒ not due.
        if (
            not force
            and threshold > 0
            and last_seen is not None
            and now - last_seen < threshold
        ):
            return CheckOutcome(
                url=url, state=UrlState.NOT_CHECKED, last_seen=last_seen
            )

        # 2. Cached robot exclusion.
        if record.robot_forbidden and not self.flags.ignore_robots:
            return CheckOutcome(url=url, state=UrlState.ROBOT_FORBIDDEN,
                                last_seen=last_seen)

        # 2b. Quarantine backoff.  A URL whose content tripped a guard
        # is left alone for an exponentially growing window; like
        # robots, this survives ``force`` — the scheduler's budget is
        # better spent on pages that serve sane bytes.
        if record.quarantine_count > 0 and record.quarantined_at is not None:
            window = quarantine_backoff(
                record.quarantine_count, self.flags.quarantine_backoff_base
            )
            if now - record.quarantined_at < window:
                return CheckOutcome(
                    url=url, state=UrlState.QUARANTINED,
                    error=record.last_error,
                    error_count=record.quarantine_count,
                    last_seen=last_seen,
                )

        # 3. Cheap modification-date sources, freshest first.  A
        #    "modified since seen" verdict is actionable at any age; an
        #    "unmodified" verdict is only trusted while fresh — status-
        #    cache info for the paper's one-week staleness horizon,
        #    proxy info only while "current with respect to the
        #    threshold" (Section 3).
        for mod_date, obtained_at, source in self._known_modification(url, record):
            if last_seen is None or mod_date > last_seen:
                state = (UrlState.NEVER_SEEN if last_seen is None
                         else UrlState.CHANGED)
                return CheckOutcome(
                    url=url, state=state, source=source,
                    modification_date=mod_date, last_seen=last_seen,
                )
            if force:
                # The scheduler decided to spend HTTP; a cached
                # unmodified verdict must not suppress the fetch.
                continue
            if threshold == 0:
                # Table 1's "checked upon every execution": a zero
                # threshold never trusts a cached unmodified verdict.
                continue
            if source is CheckSource.PROXY_CACHE:
                trust_window = min(threshold, self.flags.stale_after)
            else:
                trust_window = self.flags.stale_after
            if now - obtained_at < trust_window:
                return CheckOutcome(
                    url=url, state=UrlState.SEEN, source=source,
                    modification_date=mod_date, last_seen=last_seen,
                )

        # 4. Direct-request rate limiting.
        if (
            not force
            and threshold > 0
            and record.last_http_check is not None
            and now - record.last_http_check < threshold
        ):
            return CheckOutcome(
                url=url, state=UrlState.NOT_CHECKED, last_seen=last_seen
            )

        # 5. The robot exclusion protocol.
        requests_spent = 0
        if not self.flags.ignore_robots:
            allowed, robots_cost, robots_error = self._robots_allow(
                parsed.host, parsed.path
            )
            requests_spent += robots_cost
            if robots_error:
                # robots.txt answered an HTTP error (500 from an
                # overloaded host, say): we do NOT know the host's
                # policy, so crawling it anyway is not an option — the
                # URL surfaces as an error the user can see counted.
                record.record_error(robots_error)
                return CheckOutcome(
                    url=url, state=UrlState.ERROR, error=robots_error,
                    error_count=record.error_count, last_seen=last_seen,
                    http_requests=requests_spent,
                )
            if not allowed:
                record.robot_forbidden = True
                return CheckOutcome(
                    url=url, state=UrlState.ROBOT_FORBIDDEN,
                    last_seen=last_seen, http_requests=requests_spent,
                )

        # 6. Spend real HTTP.
        return self._check_via_http(url, last_seen, record, requests_spent)

    # ------------------------------------------------------------------
    def _check_local_file(
        self, url: str, path: str, last_seen: Optional[int], record
    ) -> CheckOutcome:
        stat = self.local_files.stat(path)
        if stat is None:
            record.record_error("file not found")
            return CheckOutcome(
                url=url, state=UrlState.ERROR, source=CheckSource.LOCAL_STAT,
                error="file not found", error_count=record.error_count,
                last_seen=last_seen,
            )
        record.record_success()
        if (
            record.modification_date is not None
            and stat.mtime > record.modification_date
        ):
            record.note_change(stat.mtime)
        record.modification_date = stat.mtime
        record.date_obtained_at = self.clock.now
        if last_seen is None:
            state = UrlState.NEVER_SEEN
        elif stat.mtime > last_seen:
            state = UrlState.CHANGED
        else:
            state = UrlState.SEEN
        return CheckOutcome(
            url=url, state=state, source=CheckSource.LOCAL_STAT,
            modification_date=stat.mtime, last_seen=last_seen,
        )

    def _known_modification(self, url: str, record):
        """(date, obtained_at, source) candidates, freshest first."""
        candidates = []
        if record.modification_date is not None and record.date_obtained_at is not None:
            candidates.append(
                (record.modification_date, record.date_obtained_at,
                 CheckSource.STATUS_CACHE)
            )
        if self.proxy is not None:
            info = self.proxy.cached_last_modified(parse_url(url))
            if info is not None:
                candidates.append((info[0], info[1], CheckSource.PROXY_CACHE))
        candidates.sort(key=lambda c: -c[1])
        return candidates

    def _robots_allow(self, host: str, path: str):
        """(allowed, http_cost, error) with per-run per-host caching.

        ``error`` is non-empty when robots.txt answered an HTTP error —
        the caller reports the URL as ERROR rather than crawling a host
        whose policy is unknown.  Transport failures still mean
        "proceed": the page fetch itself will surface the problem with
        better context.
        """
        cached_error = self._robots_errors.get(host)
        if cached_error is not None:
            return False, 0, cached_error
        robots = self._robots_by_host.get(host)
        cost = 0
        if robots is None:
            try:
                robots = self.agent.fetch_robots(host)
                cost = 1
                self._c_robots.inc()
                self.failures.record_success()
            except RobotsUnavailable as exc:
                self._robots_errors[host] = str(exc)
                return False, 1, str(exc)
            except CircuitOpen:
                # Short-circuited before any wire traffic; the page
                # fetch below will hit the same breaker.
                robots = RobotsFile()
                cost = 0
            except RetriesExhausted as exc:
                robots = RobotsFile()
                cost = exc.attempts
            except NetworkError:
                robots = RobotsFile()
                cost = 1
            self._robots_by_host[host] = robots
        return robots.allows(self.flags.robot_name, path or "/"), cost, ""

    def _check_via_http(
        self, url: str, last_seen: Optional[int], record, requests_spent: int
    ) -> CheckOutcome:
        now = self.clock.now
        try:
            result = self.agent.head(url)
        except NetworkError as exc:
            return self._transport_error(url, record, last_seen, exc,
                                         requests_spent + _wire_cost(exc))
        self._c_head.inc()
        requests_spent += 1 + len(result.redirects)
        self.failures.record_success()
        response = result.response

        if result.moved:
            record.moved_to = str(result.url)

        if not response.ok and response.status != 304:
            record.record_error(f"HTTP {response.status} {response.reason}")
            if self.flags.treat_errors_as_success:
                record.last_http_check = now
            return CheckOutcome(
                url=url, state=UrlState.ERROR, source=CheckSource.HEAD,
                error=f"HTTP {response.status} {response.reason}",
                error_count=record.error_count, last_seen=last_seen,
                moved_to=record.moved_to, http_requests=requests_spent,
            )

        if self.guard is not None:
            try:
                # Header bombs arrive on HEAD responses too.
                self.guard.check_headers(url, response.headers)
            except ContentGuardError as exc:
                return self._quarantine(
                    url, record, last_seen, exc, requests_spent, body=""
                )

        record.record_success()

        mod_date = response.last_modified
        if mod_date is not None:
            previous_date = record.modification_date
            record.last_http_check = now
            record.modification_date = mod_date
            record.date_obtained_at = now
            if previous_date is not None and mod_date > previous_date:
                # The Last-Modified moved between looks: a genuine
                # change instant the rate estimator can learn from.
                record.note_change(mod_date)
            state = self._state_from_date(mod_date, last_seen)
            if record.moved_to and state is UrlState.SEEN:
                # Unchanged content at a new address: the move itself is
                # the news ("so the user can take action" — update the
                # hotlist).  A content change outranks it.
                state = UrlState.MOVED
            return CheckOutcome(
                url=url, state=state, source=CheckSource.HEAD,
                modification_date=mod_date, last_seen=last_seen,
                moved_to=record.moved_to, http_requests=requests_spent,
            )

        # No Last-Modified: "otherwise, it retrieves and checksums the
        # whole page" (w3new's strategy, inherited).
        return self._check_via_checksum(url, last_seen, record, requests_spent)

    def _check_via_checksum(
        self, url: str, last_seen: Optional[int], record, requests_spent: int
    ) -> CheckOutcome:
        now = self.clock.now
        try:
            result = self.agent.get(url)
        except NetworkError as exc:
            return self._transport_error(url, record, last_seen, exc,
                                         requests_spent + _wire_cost(exc))
        self._c_get.inc()
        self._c_bytes.inc(len(result.response.body))
        requests_spent += 1 + len(result.redirects)
        self.failures.record_success()
        response = result.response
        if not response.ok:
            record.record_error(f"HTTP {response.status} {response.reason}")
            if self.flags.treat_errors_as_success:
                # Same contract as the HEAD path: with -e the error
                # still counts as "checked now", so the URL is not
                # re-polled before its interval elapses.
                record.last_http_check = now
            return CheckOutcome(
                url=url, state=UrlState.ERROR, source=CheckSource.CHECKSUM,
                error=f"HTTP {response.status} {response.reason}",
                error_count=record.error_count, last_seen=last_seen,
                http_requests=requests_spent,
            )
        if self.guard is not None:
            try:
                body = self.guard.admit(url, response)
            except ContentGuardError as exc:
                return self._quarantine(
                    url, record, last_seen, exc, requests_spent,
                    body=response.body, content_type=response.content_type,
                )
            if record.quarantine_count:
                # The page serves sane bytes again; lift the backoff.
                record.clear_quarantine()
        else:
            body = response.body
        checksum = content_checksum(body)
        previous = record.checksum
        record.checksum = checksum
        record.checksum_obtained_at = now
        record.last_http_check = now
        record.record_success()
        if previous is None:
            # First sighting: no basis for "changed"; the checksum is
            # the baseline for the next run.
            state = UrlState.NEVER_SEEN if last_seen is None else UrlState.SEEN
        elif checksum != previous:
            state = UrlState.NEVER_SEEN if last_seen is None else UrlState.CHANGED
            record.modification_date = now  # best effort: "changed by now"
            record.date_obtained_at = now
            record.note_change(now)
        else:
            state = UrlState.SEEN if last_seen is not None else UrlState.NEVER_SEEN
        return CheckOutcome(
            url=url, state=state, source=CheckSource.CHECKSUM,
            modification_date=record.modification_date, last_seen=last_seen,
            moved_to=record.moved_to, http_requests=requests_spent,
        )

    def _quarantine(
        self, url: str, record, last_seen: Optional[int],
        exc: ContentGuardError, requests_spent: int, body: str,
        content_type: str = "text/html",
    ) -> CheckOutcome:
        """Record a guard trip: backoff state, journal, verdict."""
        now = self.clock.now
        record.record_quarantine(str(exc), now)
        record.last_http_check = now  # real HTTP was spent
        self._c_quarantined.inc()
        self.obs.event("w3newer.quarantine", url=url, guard=exc.guard)
        if self.quarantine is not None:
            self.quarantine.record(
                url=url, guard=exc.guard, detail=str(exc), body=body,
                at=now, content_type=content_type,
            )
        return CheckOutcome(
            url=url, state=UrlState.QUARANTINED, source=CheckSource.CHECKSUM,
            error=str(exc), error_count=record.quarantine_count,
            last_seen=last_seen, moved_to=record.moved_to,
            http_requests=requests_spent,
        )

    def _transport_error(
        self, url: str, record, last_seen: Optional[int], exc: Exception,
        requests_spent: int,
    ) -> CheckOutcome:
        host = parse_url(url).host
        self._failed_hosts.add(host)
        record.record_error(str(exc))
        if self.flags.treat_errors_as_success:
            record.last_http_check = self.clock.now
        # Degraded mode: when the resilience layer has already done its
        # best (retries exhausted) or refuses to try (open circuit), and
        # previous runs left a verdict in the status cache, serve that
        # verdict stale rather than failing the URL outright.  A STALE
        # row degrades gracefully; it does not feed the abort detector.
        degraded = isinstance(exc, (CircuitOpen, RetriesExhausted))
        has_cached_verdict = (
            record.modification_date is not None
            or record.checksum is not None
        )
        if degraded and has_cached_verdict:
            self._c_degraded.inc()
            self.obs.event("w3newer.degraded_stale", url=url,
                           reason=type(exc).__name__)
            record_fallback = getattr(self.agent, "record_fallback", None)
            if callable(record_fallback):
                record_fallback()
            return CheckOutcome(
                url=url, state=UrlState.STALE,
                source=CheckSource.STATUS_CACHE,
                modification_date=record.modification_date,
                error=f"degraded: {exc}", error_count=record.error_count,
                last_seen=last_seen, moved_to=record.moved_to,
                http_requests=requests_spent,
            )
        outcome = CheckOutcome(
            url=url, state=UrlState.ERROR, error=str(exc),
            error_count=record.error_count, last_seen=last_seen,
            http_requests=requests_spent,
        )
        # May raise RunAborted — the runner catches it.  Failures of a
        # single host cannot abort the run (the detector wants host
        # diversity); a dead network can.
        systemic = isinstance(exc, NetworkUnreachable) or (
            isinstance(exc, RetriesExhausted)
            and isinstance(exc.cause, NetworkUnreachable)
        )
        self.failures.record_transport_failure(host=host, systemic=systemic)
        return outcome

    @staticmethod
    def _state_from_date(mod_date: int, last_seen: Optional[int]) -> UrlState:
        if last_seen is None:
            return UrlState.NEVER_SEEN
        if mod_date > last_seen:
            return UrlState.CHANGED
        return UrlState.SEEN
