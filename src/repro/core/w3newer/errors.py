"""Check outcomes and the systemic-failure abort policy.

Section 3.1 ("Error Conditions") distinguishes local/systemic problems
(network down, proxy overloaded — every request fails; w3newer "should
be able to detect cases when it should abort and try again later") from
per-URL errors (moved, gone, robot-forbidden, timeout).  The outcome
vocabulary here feeds the Figure 1 report; the
:class:`SystemicFailureDetector` implements the abort heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["UrlState", "CheckSource", "CheckOutcome", "SystemicFailureDetector",
           "RunAborted", "quarantine_backoff"]


class UrlState(Enum):
    """What a run concluded about one hotlist entry."""

    #: Modified since the user last saw it.
    CHANGED = "changed"
    #: Checked; not modified since the user saw it.
    SEEN = "seen"
    #: Checked; modified, but the user never visited it (no history).
    NEVER_SEEN = "never-seen"
    #: Skipped: threshold says the check is not due yet.
    NOT_CHECKED = "not checked"
    #: Skipped forever (threshold ``never``).
    NEVER_CHECK = "never checked"
    #: Skipped this run: the fetch budget ran out before this URL's
    #: turn (the budgeted scheduler's over-budget verdict).
    DEFERRED = "deferred"
    #: robots.txt forbids automated retrieval (cached verdict).
    ROBOT_FORBIDDEN = "robots"
    #: The URL moved (301); the report shows the forwarding pointer.
    MOVED = "moved"
    #: Some per-URL error (404/410, timeout, DNS, refused...).
    ERROR = "error"
    #: Degraded mode: the host is open-circuited or out of retries, so
    #: the verdict is the status cache's last word, served stale.
    STALE = "stale"
    #: The content tripped an ingest guard (markup bomb, binary blob,
    #: undecodable charset...) — the document is in quarantine and the
    #: URL backs off exponentially until it serves sane bytes again.
    QUARANTINED = "quarantined"


class CheckSource(Enum):
    """Where the verdict's modification information came from."""

    NONE = "none"
    STATUS_CACHE = "status-cache"
    PROXY_CACHE = "proxy-cache"
    HEAD = "head"
    CHECKSUM = "checksum"
    LOCAL_STAT = "stat"


@dataclass
class CheckOutcome:
    """The result of checking one URL."""

    url: str
    state: UrlState
    source: CheckSource = CheckSource.NONE
    modification_date: Optional[int] = None
    last_seen: Optional[int] = None
    error: str = ""
    error_count: int = 0
    moved_to: str = ""
    #: Number of HTTP requests this check cost (the scalability metric).
    http_requests: int = 0

    @property
    def is_new_to_user(self) -> bool:
        return self.state in (UrlState.CHANGED, UrlState.NEVER_SEEN)


def quarantine_backoff(trip_count: int, base: int) -> int:
    """Seconds to leave a quarantined URL alone: exponential in the
    number of guard trips, capped at 16x the base window.

    A page that served one binary blob gets rechecked after ``base``;
    one that trips the guard every time it is fetched converges to a
    16x-base cadence instead of burning a request per run forever.
    """
    if trip_count <= 0:
        return 0
    return base * min(2 ** (trip_count - 1), 16)


class RunAborted(Exception):
    """Raised when systemic failure makes continuing pointless."""


class SystemicFailureDetector:
    """Abort after too many *consecutive* transport failures.

    Transport failures (not HTTP error statuses) from distinct hosts in
    a row point at the local network or proxy, not at the URLs; w3newer
    should "abort and try again later (preferably in time for the user
    to see an updated report)".

    "Distinct hosts" is load-bearing: a streak of failures from one
    host means *that host* is dead, which is a per-URL problem, not a
    reason to abandon the rest of the hotlist.  The streak escalates to
    :class:`RunAborted` only once it spans at least two hosts — or when
    a failure is inherently systemic (``NetworkUnreachable``, or a
    caller that cannot name the host), which no amount of host
    diversity is needed to confirm.
    """

    def __init__(self, abort_after: int = 5) -> None:
        if abort_after < 1:
            raise ValueError("abort_after must be at least 1")
        self.abort_after = abort_after
        self.consecutive_failures = 0
        self.total_failures = 0
        self._streak_hosts: set = set()
        self._streak_systemic = False

    def record_transport_failure(self, host: Optional[str] = None,
                                 systemic: bool = False) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if systemic or host is None:
            self._streak_systemic = True
        else:
            self._streak_hosts.add(host.lower())
        if self.consecutive_failures >= self.abort_after and (
            self._streak_systemic or len(self._streak_hosts) >= 2
        ):
            raise RunAborted(
                f"{self.consecutive_failures} consecutive transport failures "
                f"across {max(len(self._streak_hosts), 1)} host(s); "
                "local network or proxy trouble — aborting this run"
            )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._streak_hosts.clear()
        self._streak_systemic = False
