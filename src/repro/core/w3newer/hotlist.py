"""Hotlist (bookmark) parsing.

w3newer reads "the URLs of pages of interest to a user... saved in a
'hotlist' (known as a bookmark file in Netscape)".  Both 1995 formats
are parsed:

* Netscape bookmarks: an HTML outline of ``<DT><A HREF="..."
  ADD_DATE="...">Title</A>`` entries (folders via ``<DL>`` nesting);
* NCSA Mosaic hotlists: a two-line-per-entry text format
  (``url date`` then the title).

Plus a plain-lines format for tests and scripting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ...html.entities import decode_entities
from ...html.lexer import Tag, Text, tokenize_html

__all__ = ["HotlistEntry", "Hotlist"]


@dataclass(frozen=True)
class HotlistEntry:
    """One bookmarked URL."""

    url: str
    title: str = ""
    added: Optional[int] = None
    folder: str = ""

    def display_title(self) -> str:
        return self.title or self.url


@dataclass
class Hotlist:
    """An ordered collection of bookmarks."""

    entries: List[HotlistEntry] = field(default_factory=list)

    def __iter__(self) -> Iterator[HotlistEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def urls(self) -> List[str]:
        return [entry.url for entry in self.entries]

    def add(self, url: str, title: str = "", added: Optional[int] = None,
            folder: str = "") -> HotlistEntry:
        entry = HotlistEntry(url=url, title=title, added=added, folder=folder)
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------
    @classmethod
    def from_netscape_html(cls, source: str) -> "Hotlist":
        """Parse a Netscape bookmark file.

        Folder titles come from ``<H3>`` headers; nesting flattens into
        a ``/``-joined folder path.  Malformed files never raise — any
        ``<A HREF>`` found becomes an entry.
        """
        hotlist = cls()
        folder_stack: List[str] = []
        pending_header = False
        header_words: List[str] = []
        current_anchor: Optional[Tag] = None
        anchor_words: List[str] = []

        def _flush_anchor() -> None:
            nonlocal current_anchor, anchor_words
            if current_anchor is not None:
                href = current_anchor.attr("HREF")
                if href:
                    added_raw = current_anchor.attr("ADD_DATE")
                    try:
                        added = int(added_raw) if added_raw else None
                    except ValueError:
                        added = None
                    hotlist.add(
                        url=href,
                        title=" ".join(anchor_words).strip(),
                        added=added,
                        folder="/".join(folder_stack),
                    )
            current_anchor = None
            anchor_words = []

        for node in tokenize_html(source):
            if isinstance(node, Tag):
                name = node.name
                if name == "A" and not node.closing:
                    current_anchor = node
                    anchor_words = []
                elif name == "A" and node.closing:
                    _flush_anchor()
                elif name == "H3":
                    if node.closing:
                        folder_stack.append(" ".join(header_words).strip())
                        pending_header = False
                    else:
                        pending_header = True
                        header_words = []
                elif name == "DL" and node.closing:
                    if folder_stack:
                        folder_stack.pop()
            elif isinstance(node, Text):
                words = decode_entities(node.data).split()
                if current_anchor is not None:
                    anchor_words.extend(words)
                elif pending_header:
                    header_words.extend(words)
        _flush_anchor()
        return hotlist

    @classmethod
    def from_mosaic(cls, source: str) -> "Hotlist":
        """Parse an NCSA Mosaic hotlist.

        Format: a ``ncsa-xmosaic-hotlist-format-1`` header line, a list
        title line, then pairs of lines — ``<url> <date...>`` followed
        by the entry's title.
        """
        lines = source.splitlines()
        hotlist = cls()
        body = lines
        if body and body[0].startswith("ncsa-xmosaic-hotlist-format"):
            body = body[1:]
        if body:
            body = body[1:]  # the list's own title
        index = 0
        while index + 1 < len(body):
            url_line = body[index].strip()
            title = body[index + 1].strip()
            index += 2
            if not url_line:
                continue
            url = url_line.split()[0]
            hotlist.add(url=url, title=title)
        return hotlist

    @classmethod
    def from_lines(cls, source: str) -> "Hotlist":
        """One URL per line, optional title after whitespace."""
        hotlist = cls()
        for line in source.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            hotlist.add(url=parts[0], title=parts[1] if len(parts) > 1 else "")
        return hotlist

    # ------------------------------------------------------------------
    def to_netscape_html(self, title: str = "Bookmarks") -> str:
        """Serialize back to a Netscape bookmark file (round-trippable
        for flat lists)."""
        items = []
        for entry in self.entries:
            add_date = f' ADD_DATE="{entry.added}"' if entry.added is not None else ""
            items.append(
                f'<DT><A HREF="{entry.url}"{add_date}>'
                f"{entry.display_title()}</A>"
            )
        body = "\n".join(items)
        return (
            "<!DOCTYPE NETSCAPE-Bookmark-file-1>\n"
            f"<TITLE>{title}</TITLE>\n<H1>{title}</H1>\n<DL><P>\n"
            f"{body}\n</DL><P>\n"
        )
