"""The w3newer report: Figure 1's HTML page.

"w3newer... generates an HTML document indicating which pages have
changed", with each hotlist entry carrying three links into the
snapshot facility:

* **Remember** — save a copy of the page;
* **Diff** — HtmlDiff against the user's last-saved version;
* **History** — the full version log.

Rows are grouped: changed pages first (most recently modified first,
the paper's sort), then errors (so the user can prune dead URLs), then
skipped/seen pages.  Section 7's "information overload" lesson is
addressed by an optional priority function (see
:mod:`repro.aide.prioritize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ...html.entities import encode_entities
from ...simclock import format_timestamp
from ...web.cgi import encode_query_string
from .errors import CheckOutcome, UrlState
from .hotlist import HotlistEntry

__all__ = ["ReportOptions", "render_report", "render_all_dates_report",
           "render_report_text"]


@dataclass
class ReportOptions:
    """Where the snapshot facility lives and who is asking."""

    snapshot_base: str = "http://aide.research.att.com/cgi-bin/snapshot"
    user: str = "user@host"
    title: str = "w3newer: what's new on your hotlist"
    #: Optional priority: higher floats sort first within their group.
    priority: Optional[Callable[[str], float]] = None
    #: Append the run-summary block (per-run cost totals) to the
    #: report.  Off by default because it changes the report's bytes —
    #: the observability differential tests compare reports with the
    #: telemetry layer on and off and require them identical.
    run_summary: bool = False
    #: Build the HTML at all.  A 100k-URL run renders a ~100k-row
    #: report; fleet-scale benchmark runs turn this off and keep only
    #: the outcome list.
    render: bool = True


_STATE_LABELS: Dict[UrlState, str] = {
    UrlState.CHANGED: "changed",
    UrlState.NEVER_SEEN: "changed (never seen)",
    UrlState.SEEN: "seen",
    UrlState.NOT_CHECKED: "not checked",
    UrlState.NEVER_CHECK: "never checked",
    UrlState.DEFERRED: "deferred (fetch budget)",
    UrlState.ROBOT_FORBIDDEN: "robots.txt forbids checking",
    UrlState.MOVED: "moved",
    UrlState.ERROR: "error",
    UrlState.STALE: "stale (last known state)",
    UrlState.QUARANTINED: "quarantined (hostile content)",
}

_GROUP_ORDER = {
    UrlState.CHANGED: 0,
    UrlState.NEVER_SEEN: 0,
    UrlState.MOVED: 1,
    UrlState.ERROR: 1,
    UrlState.QUARANTINED: 2,
    UrlState.STALE: 2,
    UrlState.ROBOT_FORBIDDEN: 3,
    UrlState.SEEN: 4,
    UrlState.NOT_CHECKED: 5,
    UrlState.NEVER_CHECK: 5,
    UrlState.DEFERRED: 5,
}


def _aide_links(url: str, options: ReportOptions) -> str:
    """The Remember / Diff / History trio (Section 6)."""
    pieces = []
    for action in ("remember", "diff", "history"):
        query = encode_query_string(
            {"action": action, "url": url, "user": options.user}
        )
        label = action.capitalize()
        pieces.append(f'<A HREF="{options.snapshot_base}?{query}">[{label}]</A>')
    return " ".join(pieces)


def _sort_key(outcome: CheckOutcome, options: ReportOptions):
    group = _GROUP_ORDER.get(outcome.state, 6)
    priority = options.priority(outcome.url) if options.priority else 0.0
    recency = outcome.modification_date or 0
    return (group, -priority, -recency, outcome.url)


def render_report(
    outcomes: Sequence[CheckOutcome],
    entries: Sequence[HotlistEntry],
    options: Optional[ReportOptions] = None,
    now: Optional[int] = None,
    aborted: str = "",
    summary: Optional[Dict[str, object]] = None,
) -> str:
    """The Figure 1 HTML report (plus an optional run-summary block)."""
    options = options or ReportOptions()
    titles = {entry.url: entry.display_title() for entry in entries}

    rows: List[str] = []
    for outcome in sorted(outcomes, key=lambda o: _sort_key(o, options)):
        title = encode_entities(titles.get(outcome.url, outcome.url))
        label = _STATE_LABELS.get(outcome.state, outcome.state.value)
        detail = ""
        if outcome.modification_date is not None and outcome.is_new_to_user:
            detail = f" &#183; modified {format_timestamp(outcome.modification_date)}"
        if outcome.state is UrlState.ERROR:
            detail = f" &#183; {encode_entities(outcome.error)}"
            if outcome.error_count > 1:
                detail += f" ({outcome.error_count} consecutive errors)"
        if outcome.state is UrlState.STALE:
            # Degraded mode: the verdict is the status cache's last
            # word; say so, and show how old that word is.
            detail = " &#183; <I>host unreachable; showing last known state"
            if outcome.modification_date is not None:
                detail += (f" (modified "
                           f"{format_timestamp(outcome.modification_date)})")
            detail += "</I>"
        if outcome.state is UrlState.QUARANTINED:
            # The guard's verdict plus how many fetches have tripped —
            # the operator's cue for `aide quarantine list/retry`.
            detail = f" &#183; <I>{encode_entities(outcome.error)}"
            if outcome.error_count > 1:
                detail += f" ({outcome.error_count} guard trips)"
            detail += "; in backoff</I>"
        if outcome.moved_to:
            detail += (
                f' &#183; moved to <A HREF="{outcome.moved_to}">'
                f"{outcome.moved_to}</A>"
            )
        strong_open, strong_close = ("<B>", "</B>") if outcome.is_new_to_user else ("", "")
        rows.append(
            f'<LI>{strong_open}<A HREF="{outcome.url}">{title}</A>{strong_close} '
            f"&#151; {label}{detail}<BR>{_aide_links(outcome.url, options)}"
        )

    changed = sum(1 for o in outcomes if o.is_new_to_user)
    errors = sum(1 for o in outcomes if o.state is UrlState.ERROR)
    stale = sum(1 for o in outcomes if o.state is UrlState.STALE)
    quarantined = sum(
        1 for o in outcomes if o.state is UrlState.QUARANTINED
    )
    header_bits = [f"{len(outcomes)} URLs", f"{changed} changed"]
    if errors:
        header_bits.append(f"{errors} errors")
    if stale:
        header_bits.append(f"{stale} stale")
    if quarantined:
        header_bits.append(f"{quarantined} quarantined")
    status_line = ", ".join(header_bits)
    abort_html = (
        f'<P><B>Run aborted early:</B> {encode_entities(aborted)}</P>'
        if aborted
        else ""
    )
    generated = format_timestamp(now) if now is not None else ""
    summary_html = _render_summary(summary) if summary else ""
    return (
        "<HTML><HEAD><TITLE>"
        f"{encode_entities(options.title)}</TITLE></HEAD><BODY>"
        f"<H1>{encode_entities(options.title)}</H1>"
        f"<P>{status_line}. Generated {generated} for "
        f"{encode_entities(options.user)}.</P>{abort_html}<HR><UL>"
        + "\n".join(rows)
        + f"</UL>{summary_html}</BODY></HTML>"
    )


def _render_summary(summary: Dict[str, object]) -> str:
    """The run-summary block: what this invocation cost, in the
    spirit of Table 1's per-URL accounting.  Keys render in the order
    supplied (the runner passes a stable order)."""
    items = "".join(
        f"<DT>{encode_entities(str(key))}</DT>"
        f"<DD>{encode_entities(str(value))}</DD>"
        for key, value in summary.items()
        if value not in (None, "")
    )
    return f"<HR><H2>Run summary</H2><DL>{items}</DL>"


def render_all_dates_report(
    outcomes: Sequence[CheckOutcome],
    entries: Sequence[HotlistEntry],
) -> str:
    """The other 1995 report style (§2.1): "a sorted list of all
    modification times", newest first, regardless of what the user has
    or hasn't seen.  Included for comparison with the personalized
    report — this is the presentation w3newer improves upon.
    """
    titles = {entry.url: entry.display_title() for entry in entries}
    dated = [o for o in outcomes if o.modification_date is not None]
    undated = [o for o in outcomes if o.modification_date is None]
    rows = []
    for outcome in sorted(dated, key=lambda o: -o.modification_date):
        title = encode_entities(titles.get(outcome.url, outcome.url))
        rows.append(
            f'<LI>{format_timestamp(outcome.modification_date)} &#183; '
            f'<A HREF="{outcome.url}">{title}</A>'
        )
    for outcome in undated:
        title = encode_entities(titles.get(outcome.url, outcome.url))
        rows.append(
            f'<LI>(no modification date) &#183; '
            f'<A HREF="{outcome.url}">{title}</A>'
        )
    return (
        "<HTML><HEAD><TITLE>All modification times</TITLE></HEAD><BODY>"
        "<H1>Hotlist by modification time</H1><UL>"
        + "\n".join(rows)
        + "</UL></BODY></HTML>"
    )


def render_report_text(outcomes: Sequence[CheckOutcome]) -> str:
    """One-line-per-URL plain text summary (for logs and tests)."""
    lines = []
    for outcome in outcomes:
        label = _STATE_LABELS.get(outcome.state, outcome.state.value)
        lines.append(f"{label:28s} {outcome.url}")
    return "\n".join(lines)
