"""Per-URL change-rate estimation for adaptive revisit scheduling.

The paper's w3newer decides *when* to re-check a page with the static
Table-1 thresholds.  This module learns that cadence instead: each URL
gets a Poisson change-rate estimate fitted from whatever evidence the
system already has — snapshot revision histories, StatusCache
modification/check timestamps, and the verdicts of previous runs — so
the scheduler can rank a fetch budget by expected change probability
("Management of Volatile Information in Incremental Web Crawler").

The estimator is deliberately humble about its data.  Checks are
*sampled* observations of a renewal process: seeing "changed" at a
check means *at least one* change happened since the previous look, so
a naive changes/span ratio underestimates fast pages badly.  We use
the standard bias-corrected estimator

    lambda_hat = -ln((n - X + 0.5) / (n + 0.5)) / mean_gap

where ``n`` is the number of between-check intervals and ``X`` the
number that observed a change, blended with a conservative prior so a
URL with one data point does not swing to an extreme.  State persists
alongside the status cache in the same line-per-URL text format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from ...simclock import DAY, WEEK
from ...web.url import parse_url
from .statuscache import StatusCache

__all__ = ["UrlEstimate", "ChangeRateEstimator"]

#: Default prior: a page we know nothing about is assumed slow (about
#: one change a month).  Unobserved pages do not need an optimistic
#: prior to get crawled — a URL with *no* observations at all is
#: treated as must-explore (probability 1.0) by :meth:`p_changed`.
DEFAULT_PRIOR_RATE = 1.0 / (4 * WEEK)

#: Weight of the prior, in pseudo-observations.
DEFAULT_PRIOR_WEIGHT = 2.0


def _canonical(url: str) -> str:
    """Normalized URL key (same canonicalization as the status cache)."""
    return str(parse_url(url).normalized())


@dataclass
class UrlEstimate:
    """Observation counts for one URL.

    ``checks`` counts observations that produced a verdict (changed or
    unchanged); ``changes`` counts the subset that found the page
    changed.  ``misses`` counts checks that failed (errors, degraded
    STALE fallbacks) — they cost budget but teach nothing about the
    page, and are surfaced so ``--explain`` can show flaky URLs.
    """

    url: str
    checks: int = 0
    changes: int = 0
    misses: int = 0
    first_observed_at: Optional[int] = None
    last_check_at: Optional[int] = None
    last_change_at: Optional[int] = None

    @property
    def span(self) -> int:
        """Seconds covered by the observation window."""
        if self.first_observed_at is None or self.last_check_at is None:
            return 0
        return max(0, self.last_check_at - self.first_observed_at)


class ChangeRateEstimator:
    """URL-keyed Poisson change-rate model with persistence."""

    def __init__(
        self,
        prior_rate: float = DEFAULT_PRIOR_RATE,
        prior_weight: float = DEFAULT_PRIOR_WEIGHT,
    ) -> None:
        self.prior_rate = prior_rate
        self.prior_weight = prior_weight
        self._estimates: Dict[str, UrlEstimate] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def estimate_for(self, url: str) -> UrlEstimate:
        """The estimate for ``url``, created empty if absent."""
        key = _canonical(url)
        estimate = self._estimates.get(key)
        if estimate is None:
            estimate = UrlEstimate(url=key)
            self._estimates[key] = estimate
        return estimate

    def peek(self, url: str) -> Optional[UrlEstimate]:
        """The estimate if one exists; never creates."""
        return self._estimates.get(_canonical(url))

    def __len__(self) -> int:
        return len(self._estimates)

    def estimates(self) -> Iterator[UrlEstimate]:
        """All tracked estimates (arbitrary order)."""
        return iter(self._estimates.values())

    # ------------------------------------------------------------------
    # Feeding observations
    # ------------------------------------------------------------------
    def observe(self, url: str, at: int, changed: bool) -> None:
        """Record one successful check verdict at time ``at``.

        The first observation of a URL only establishes the baseline:
        there is no earlier look to define "changed since", so the
        ``changed`` flag is ignored for it.
        """
        estimate = self.estimate_for(url)
        if estimate.first_observed_at is None:
            estimate.first_observed_at = at
            estimate.last_check_at = at
            estimate.checks = max(estimate.checks, 1)
            return
        estimate.checks += 1
        if changed:
            estimate.changes += 1
            estimate.last_change_at = at
        if estimate.last_check_at is None or at > estimate.last_check_at:
            estimate.last_check_at = at

    def observe_miss(self, url: str, at: int) -> None:
        """Record a check that failed to produce a verdict."""
        estimate = self.estimate_for(url)
        estimate.misses += 1

    def seed_from_history(self, url: str, revision_dates: Iterable[int]) -> None:
        """Cold-start a URL from snapshot-archive revision timestamps.

        Every revision after the first is one observed change at a
        known time — exactly the evidence a dense snapshot history
        provides (the Memento motivation: well-timed revision
        histories are worth addressing).  Dates merge idempotently
        into whatever the estimate already covers.
        """
        dates = sorted(set(revision_dates))
        if not dates:
            return
        estimate = self.estimate_for(url)
        if estimate.first_observed_at is None:
            estimate.first_observed_at = dates[0]
            estimate.last_check_at = dates[0]
            estimate.checks = 1
            dates = dates[1:]
        for date in dates:
            if estimate.last_check_at is not None and date <= estimate.last_check_at:
                continue
            estimate.checks += 1
            estimate.changes += 1
            estimate.last_change_at = date
            estimate.last_check_at = date

    def absorb_status_cache(self, cache: StatusCache) -> None:
        """Cold-start URLs from StatusCache timestamps.

        A record proves at least one successful look (when the
        modification date or checksum was obtained); a recorded
        ``last_change_at`` proves one observed change.  Only fills
        gaps — URLs the estimator already tracks are left alone.
        """
        for record in cache.records():
            if self.peek(record.url) is not None:
                continue
            looked_at = [
                t for t in (
                    record.date_obtained_at,
                    record.checksum_obtained_at,
                    record.last_http_check,
                )
                if t is not None
            ]
            if not looked_at:
                continue
            estimate = self.estimate_for(record.url)
            estimate.first_observed_at = min(looked_at)
            estimate.last_check_at = max(looked_at)
            estimate.checks = 1
            last_change = record.last_change_at
            if last_change is None and record.modification_date is not None:
                # The page's Last-Modified is a genuine change instant;
                # usable as history when it falls inside the window.
                if record.modification_date > estimate.first_observed_at:
                    last_change = record.modification_date
            if last_change is not None:
                estimate.last_change_at = last_change
                if last_change > estimate.first_observed_at:
                    estimate.checks += 1
                    estimate.changes += 1
                    if estimate.last_check_at is None or last_change > estimate.last_check_at:
                        estimate.last_check_at = last_change

    # ------------------------------------------------------------------
    # The model
    # ------------------------------------------------------------------
    def rate(self, url: str) -> float:
        """Estimated change rate (changes per second) for ``url``."""
        estimate = self.peek(url)
        if estimate is None:
            return self.prior_rate
        intervals = estimate.checks - 1
        span = estimate.span
        if intervals < 1 or span <= 0:
            return self.prior_rate
        observed = min(estimate.changes, intervals)
        mean_gap = span / intervals
        lam = -math.log(
            (intervals - observed + 0.5) / (intervals + 0.5)
        ) / mean_gap
        return (
            (lam * intervals + self.prior_rate * self.prior_weight)
            / (intervals + self.prior_weight)
        )

    def p_changed(self, url: str, elapsed: Optional[int]) -> float:
        """Probability the page changed within the last ``elapsed`` s.

        ``elapsed=None`` means "never observed by anything" and returns
        1.0 — an unexplored URL must be worth one look.
        """
        if elapsed is None:
            return 1.0
        if elapsed <= 0:
            return 0.0
        return 1.0 - math.exp(-self.rate(url) * float(elapsed))

    def next_due(
        self, url: str, last_checked: Optional[int], confidence: float = 0.5
    ) -> Optional[int]:
        """When the change probability next crosses ``confidence``.

        Returns an absolute sim-clock timestamp, or None when the URL
        has never been checked (it is due immediately).
        """
        if last_checked is None:
            return None
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        rate = self.rate(url)
        if rate <= 0.0:
            return None
        wait = -math.log(1.0 - confidence) / rate
        return last_checked + int(wait)

    # ------------------------------------------------------------------
    # Surfaces
    # ------------------------------------------------------------------
    def explain(self, url: str, now: int) -> Dict[str, object]:
        """The ``aide newer --explain`` payload for one URL."""
        estimate = self.peek(url)
        rate_per_day = self.rate(url) * DAY
        last_checked = estimate.last_check_at if estimate else None
        due = self.next_due(url, last_checked)
        elapsed = None if last_checked is None else max(0, now - last_checked)
        return {
            "url": _canonical(url),
            "tracked": estimate is not None,
            "checks": estimate.checks if estimate else 0,
            "changes": estimate.changes if estimate else 0,
            "misses": estimate.misses if estimate else 0,
            "rate_per_day": round(rate_per_day, 6),
            "p_changed_now": round(self.p_changed(url, elapsed), 6),
            "last_check_at": last_checked,
            "last_change_at": estimate.last_change_at if estimate else None,
            "next_due_at": due,
        }

    def stats(self) -> Dict[str, object]:
        """Aggregate counters for the observability surface."""
        checks = sum(e.checks for e in self._estimates.values())
        changes = sum(e.changes for e in self._estimates.values())
        misses = sum(e.misses for e in self._estimates.values())
        return {
            "tracked": len(self._estimates),
            "observations": checks,
            "changes": changes,
            "misses": misses,
        }

    # ------------------------------------------------------------------
    # Persistence (lives alongside the status cache)
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """A line-per-URL text format, ``|``-separated fields."""
        lines = []
        for key in sorted(self._estimates):
            e = self._estimates[key]
            lines.append(
                "|".join(
                    [
                        e.url,
                        str(e.checks),
                        str(e.changes),
                        str(e.misses),
                        _opt(e.first_observed_at),
                        _opt(e.last_check_at),
                        _opt(e.last_change_at),
                    ]
                )
            )
        return "\n".join(lines)

    @classmethod
    def deserialize(
        cls,
        text: str,
        prior_rate: float = DEFAULT_PRIOR_RATE,
        prior_weight: float = DEFAULT_PRIOR_WEIGHT,
    ) -> "ChangeRateEstimator":
        """Rebuild an estimator from :meth:`serialize` output."""
        estimator = cls(prior_rate=prior_rate, prior_weight=prior_weight)
        for line in text.splitlines():
            parts = line.split("|")
            if len(parts) != 7:
                continue
            estimate = estimator.estimate_for(parts[0])
            try:
                estimate.checks = int(parts[1])
                estimate.changes = int(parts[2])
                estimate.misses = int(parts[3])
            except ValueError:
                continue
            estimate.first_observed_at = _parse_opt(parts[4])
            estimate.last_check_at = _parse_opt(parts[5])
            estimate.last_change_at = _parse_opt(parts[6])
        return estimator


def _opt(value: Optional[int]) -> str:
    """Serialize an optional integer field."""
    return "-" if value is None else str(value)


def _parse_opt(text: str) -> Optional[int]:
    """Parse an optional integer field."""
    if text == "-":
        return None
    try:
        return int(text)
    except ValueError:
        return None
