"""Per-URL check-frequency thresholds (paper Table 1).

The w3newer configuration file maps perl-style URL patterns to
thresholds: how recently a page may have been visited/checked before
w3newer will spend a direct HEAD request on it.  ``0`` means "check on
every run", ``never`` means "never check" (Dilbert), and "the first
matching pattern is used"; ``Default`` sets the fallback.

The exact configuration printed as Table 1 ships as
:data:`TABLE1_CONFIG` so the reproduction benchmark runs the very same
rules the paper shows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ...simclock import format_duration, parse_duration

__all__ = ["ThresholdRule", "ThresholdConfig", "parse_threshold_config",
           "TABLE1_CONFIG"]

#: Table 1 verbatim (de-hyphenated from the two-column layout).  The
#: comments are part of the artifact.
TABLE1_CONFIG = r"""
# Comments start with a sharp sign.
# perl syntax requires that "." be escaped
# Default is equivalent to ending the file with ".*"
Default 2d
file:.* 0
http://www\.yahoo\.com/.* 7d
http://.*\.att\.com/.* 0
http://www\.ncsa\.uiuc\.edu/SDG/Software/Mosaic/Docs/whats-new\.html 12h
http://snapple\.cs\.washington\.edu:600/mobile/ 1d
# this is in my hotlist but will be different every day
http://www\.unitedmedia\.com/comics/dilbert/ never
"""


@dataclass(frozen=True)
class ThresholdRule:
    """One pattern → threshold line."""

    pattern: str
    threshold: int  # seconds; 0 = every run; NEVER = never
    compiled: re.Pattern

    def matches(self, url: str) -> bool:
        return self.compiled.match(url) is not None

    def __str__(self) -> str:
        return f"{self.pattern} {format_duration(self.threshold)}"


class ThresholdConfig:
    """Ordered rule list with a default; first match wins."""

    def __init__(self, rules: List[ThresholdRule], default: int) -> None:
        self.rules = rules
        self.default = default

    def threshold_for(self, url: str) -> int:
        """Threshold (seconds) applying to ``url``."""
        for rule in self.rules:
            if rule.matches(url):
                return rule.threshold
        return self.default

    def rule_for(self, url: str) -> Optional[ThresholdRule]:
        """The rule that decided (None when the default applied)."""
        for rule in self.rules:
            if rule.matches(url):
                return rule
        return None

    @classmethod
    def default_config(cls) -> "ThresholdConfig":
        """The paper's own configuration (Table 1)."""
        return parse_threshold_config(TABLE1_CONFIG)


def parse_threshold_config(text: str) -> ThresholdConfig:
    """Parse a w3newer configuration file.

    Each non-comment line is ``<pattern> <threshold>``; whitespace
    separates the two (patterns contain no spaces — they are URLs).
    A line starting with ``Default`` (case-insensitive) sets the
    fallback threshold; without one, the default is "2d" as in Table 1.

    Table 1's comment pins the semantics: "Default is equivalent to
    ending the file with '.*'" — i.e. every ``Default`` line behaves
    like a ``.*`` rule appended *after* all explicit patterns, and the
    first matching pattern wins.  Explicit patterns therefore always
    beat the default regardless of line order, and when several
    ``Default`` lines appear the FIRST one wins (the first ``.*``
    would match first).  Bad regexes raise ``ValueError`` naming the
    offending line.
    """
    rules: List[ThresholdRule] = []
    default: Optional[int] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"line {line_number}: expected '<pattern> <threshold>': {line!r}"
            )
        pattern, spec = parts
        threshold = parse_duration(spec)
        if pattern.lower() == "default":
            if default is None:
                default = threshold
            continue
        try:
            compiled = re.compile(pattern)
        except re.error as exc:
            raise ValueError(f"line {line_number}: bad pattern {pattern!r}: {exc}")
        rules.append(
            ThresholdRule(pattern=pattern, threshold=threshold, compiled=compiled)
        )
    if default is None:
        default = parse_duration("2d")
    return ThresholdConfig(rules=rules, default=default)
