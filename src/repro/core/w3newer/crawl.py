"""Deterministic concurrent crawl execution.

The serial runner checks one URL at a time; this module runs the
scheduled check set as cooperative worker tasks on the snapshot
facility's deterministic :class:`SimScheduler`, with per-host
politeness enforced by a virtual-time **governor**:

* :class:`HostGovernor` — the politeness and throughput model.  The
  sim clock is frozen during a run (the simulated network does not
  advance it), so "wall-clock" is modeled the same way
  ``repro.serve.pool.WorkerPool`` models admission: workers are
  ``free_at`` timestamps, and every fetch is *placed* into the
  earliest virtual slot that respects (a) its worker being free,
  (b) at most ``max_per_host`` overlapping fetches per host, and
  (c) at least ``host_delay`` seconds between successive request
  starts to one host.  The resulting makespan is the run's virtual
  duration — the number the throughput bench gates on — and the slot
  trace is the determinism witness.
* :class:`CrawlExecutor` — spawns ``workers`` SimScheduler processes
  sharing one task queue.  Exactly one thread runs at a time and the
  interleaving is drawn from the seed, so a seeded run is
  byte-reproducible; checks themselves run without internal yields,
  so every verdict is computed exactly as the serial checker would.

An aborted or paused run leaves its unclaimed tasks with the caller
(the runner parks them in a checkpoint); the politeness invariants
hold by construction under *every* interleaving.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...web.url import parse_url
from ..snapshot.sched import SimScheduler
from .checker import UrlChecker
from .errors import CheckOutcome, RunAborted
from .scheduler import ScheduledCheck, SchedulePolicy

__all__ = [
    "CrawlOptions",
    "FetchSlot",
    "HostGovernor",
    "CrawlResult",
    "CrawlExecutor",
]


@dataclass
class CrawlOptions:
    """Knobs for the concurrent crawl pipeline."""

    #: Cooperative worker tasks (1 = serial, no SimScheduler).
    workers: int = 4
    #: Per-run fetch budget (None = unbounded, the paper's behavior).
    budget: Optional[int] = None
    #: How fetch candidates compete for the budget.
    policy: SchedulePolicy = SchedulePolicy.STATIC
    #: Max overlapping fetches to one host.
    max_per_host: int = 2
    #: Min seconds between successive request starts to one host.
    host_delay: int = 1
    #: Virtual seconds one HTTP request occupies a worker.
    request_cost: int = 1
    #: Interleaving seed for the SimScheduler.
    seed: int = 0
    #: Stop (checkpoint) after this many claimed checks; None = run to
    #: completion.  The deterministic mid-run abort used by tests.
    max_checks: Optional[int] = None
    #: Keep per-URL PolicyDecisions (a dict entry per URL; turn off at
    #: 100k scale unless ``--explain`` is needed).
    record_decisions: bool = True
    #: Keep the per-fetch slot trace (the determinism witness).
    record_trace: bool = True
    #: Advance the sim clock by the run's virtual makespan afterwards.
    advance_clock: bool = False


@dataclass(frozen=True)
class FetchSlot:
    """One placed fetch: where and when it virtually ran."""

    host: str
    worker: int
    start: int
    finish: int
    url: str = ""


@dataclass
class _HostState:
    """Per-host politeness bookkeeping."""

    #: Min-heap of finish times of fetches still in flight.
    active: List[int] = field(default_factory=list)
    #: Earliest allowed start of the next request (delay gate).
    next_allowed: int = 0
    placed: int = 0
    #: Max overlapping fetches ever observed (gauge surface).
    peak: int = 0


class HostGovernor:
    """Virtual-time fetch placement under per-host politeness limits.

    Placement is greedy and deterministic: argmin-``free_at`` worker
    (lowest index wins ties), then the start time is pushed forward
    until both host constraints hold.  Per-host starts are therefore
    monotonically nondecreasing, which makes the inter-request-delay
    check O(1) and the in-flight check one heap peek.
    """

    def __init__(
        self,
        workers: int,
        max_per_host: int = 2,
        host_delay: int = 1,
        request_cost: int = 1,
        start: int = 0,
        record_trace: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_per_host < 1:
            raise ValueError("max_per_host must be at least 1")
        self.workers = workers
        self.max_per_host = max_per_host
        self.host_delay = host_delay
        self.request_cost = request_cost
        self.start = start
        self.record_trace = record_trace
        self._free = [start] * workers
        self._hosts: Dict[str, _HostState] = {}
        self._end = start
        self.fetches = 0
        self.requests = 0
        self.trace: List[FetchSlot] = []

    # ------------------------------------------------------------------
    def place(self, host: str, requests: int, url: str = "") -> FetchSlot:
        """Place one check's ``requests`` HTTP requests on the timeline.

        The whole check occupies one worker for ``requests *
        request_cost`` virtual seconds (its requests run back to back
        on one connection); politeness constraints apply to the slot's
        start.
        """
        if requests < 1:
            raise ValueError("place() is for checks that spent HTTP")
        state = self._hosts.get(host)
        if state is None:
            state = _HostState(next_allowed=self.start)
            self._hosts[host] = state
        worker = min(range(self.workers), key=self._free.__getitem__)
        t = max(self._free[worker], state.next_allowed)
        while True:
            while state.active and state.active[0] <= t:
                heapq.heappop(state.active)
            if len(state.active) < self.max_per_host:
                break
            t = max(t, state.active[0])
        cost = requests * self.request_cost
        finish = t + cost
        heapq.heappush(state.active, finish)
        state.peak = max(state.peak, len(state.active))
        state.next_allowed = t + self.host_delay
        state.placed += 1
        self._free[worker] = finish
        self._end = max(self._end, finish)
        self.fetches += 1
        self.requests += requests
        slot = FetchSlot(host=host, worker=worker, start=t, finish=finish,
                         url=url)
        if self.record_trace:
            self.trace.append(slot)
        return slot

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        """Virtual seconds from run start to the last fetch's finish."""
        return self._end - self.start

    @property
    def max_inflight(self) -> int:
        """The highest per-host overlap any host ever reached."""
        return max((s.peak for s in self._hosts.values()), default=0)

    def host_counts(self) -> Dict[str, int]:
        """Fetch checks placed per host."""
        return {host: state.placed for host, state in self._hosts.items()}

    def stats(self) -> Dict[str, object]:
        """Aggregate counters for the observability surface."""
        return {
            "workers": self.workers,
            "fetches": self.fetches,
            "http_requests": self.requests,
            "hosts": len(self._hosts),
            "makespan": self.makespan,
            "max_inflight": self.max_inflight,
        }

    # ------------------------------------------------------------------
    # Checkpoint support: plain-data snapshot / restore.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data state for a RunCheckpoint."""
        return {
            "free": list(self._free),
            "end": self._end,
            "start": self.start,
            "fetches": self.fetches,
            "requests": self.requests,
            "hosts": {
                host: {
                    "active": sorted(state.active),
                    "next_allowed": state.next_allowed,
                    "placed": state.placed,
                    "peak": state.peak,
                }
                for host, state in self._hosts.items()
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Resume from a :meth:`snapshot` (same construction params)."""
        self._free = list(state["free"])
        self._end = state["end"]
        self.start = state["start"]
        self.fetches = state["fetches"]
        self.requests = state["requests"]
        self._hosts = {}
        for host, data in state["hosts"].items():
            host_state = _HostState(
                next_allowed=data["next_allowed"],
                placed=data["placed"],
                peak=data["peak"],
            )
            host_state.active = list(data["active"])
            heapq.heapify(host_state.active)
            self._hosts[host] = host_state


@dataclass
class CrawlResult:
    """What one executor drain produced."""

    #: (task, outcome) pairs, in completion order.
    completed: List[Tuple[ScheduledCheck, CheckOutcome]] = field(
        default_factory=list)
    #: Tasks never claimed (non-empty only when aborted/paused).
    pending: List[ScheduledCheck] = field(default_factory=list)
    #: Systemic-failure abort reason ("" = none).
    aborted: str = ""
    #: True when the ``max_checks`` quota stopped the run.
    paused: bool = False
    claims: int = 0


class CrawlExecutor:
    """Drains a scheduled check set with bounded cooperative workers."""

    def __init__(
        self,
        checker: UrlChecker,
        governor: HostGovernor,
        options: CrawlOptions,
        obs=None,
    ) -> None:
        from ...obs import NOOP as NOOP_OBS
        self.checker = checker
        self.governor = governor
        self.options = options
        self.obs = obs if obs is not None else NOOP_OBS
        self._queue: deque = deque()
        self._completed: List[Tuple[ScheduledCheck, CheckOutcome]] = []
        self._stop_reason = ""
        self._paused = False
        self._claims = 0

    # ------------------------------------------------------------------
    def run(self, checks: Sequence[ScheduledCheck]) -> CrawlResult:
        """Run every scheduled check; stop early on abort or quota.

        With ``workers > 1`` the checks execute as SimScheduler
        processes: one thread at a time, claim order drawn from the
        seed.  Checks have no internal yield points, so each verdict
        is computed atomically — concurrency changes *when* checks
        run, never what they conclude.
        """
        self._queue = deque(checks)
        self._completed = []
        self._stop_reason = ""
        self._paused = False
        self._claims = 0
        workers = max(1, self.options.workers)
        if workers == 1 or len(self._queue) <= 1:
            self._drain(None)
        else:
            sim = SimScheduler(seed=self.options.seed)
            for i in range(min(workers, len(self._queue))):
                sim.spawn(f"crawl-{i}", lambda: self._drain(sim))
            sim.run()
            sim.join_threads()
            for name in sorted(sim.processes):
                process = sim.processes[name]
                if process.error is not None:
                    raise process.error
        return CrawlResult(
            completed=self._completed,
            pending=list(self._queue),
            aborted=self._stop_reason,
            paused=self._paused,
            claims=self._claims,
        )

    # ------------------------------------------------------------------
    def _drain(self, sim: Optional[SimScheduler]) -> None:
        """One worker's loop: claim, check, place, repeat."""
        options = self.options
        while True:
            if self._stop_reason or self._paused:
                return
            if options.max_checks is not None \
                    and self._claims >= options.max_checks:
                self._paused = True
                return
            if not self._queue:
                return
            task = self._queue.popleft()
            self._claims += 1
            if sim is not None:
                sim.checkpoint("crawl.claim")
            try:
                outcome = self.checker.check(task.url, force=task.force)
            except RunAborted as exc:
                # The aborting URL's outcome was never recorded: it
                # goes back on the queue and is retried first on
                # resume, exactly like the serial checkpoint.
                self._queue.appendleft(task)
                self._stop_reason = str(exc)
                return
            if outcome.http_requests > 0:
                if sim is not None:
                    sim.checkpoint("crawl.fetched")
                host = parse_url(task.url).host or "-"
                self.governor.place(host, outcome.http_requests, url=task.url)
            self._completed.append((task, outcome))
