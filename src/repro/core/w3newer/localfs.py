"""A tiny local filesystem for ``file:`` hotlist entries.

"Local files are checked upon every execution, since a stat call is
cheap" — Table 1 gives ``file:.*`` threshold 0, and w3newer "supports
the 'file:' specification and can find out if a local file has
changed".  The simulation is a path → (mtime, contents) map whose
``stat`` never touches the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["LocalFiles", "FileStat"]


@dataclass(frozen=True)
class FileStat:
    mtime: int
    size: int


class LocalFiles:
    """The user's (simulated) local files, keyed by absolute path."""

    def __init__(self) -> None:
        self._files: Dict[str, tuple] = {}
        self.stat_calls = 0

    def write(self, path: str, contents: str, mtime: int) -> None:
        self._files[path] = (mtime, contents)

    def remove(self, path: str) -> None:
        self._files.pop(path, None)

    def stat(self, path: str) -> Optional[FileStat]:
        """mtime/size, or None when the file does not exist."""
        self.stat_calls += 1
        entry = self._files.get(path)
        if entry is None:
            return None
        mtime, contents = entry
        return FileStat(mtime=mtime, size=len(contents))

    def read(self, path: str) -> Optional[str]:
        entry = self._files.get(path)
        return entry[1] if entry else None
