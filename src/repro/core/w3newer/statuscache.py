"""w3newer's between-runs state.

The first of the checker's modification-date sources is "a cached
modification date from previous runs of w3newer"; the robot-exclusion
verdicts are likewise cached ("If a URL is inaccessible to robots, that
fact is cached so the page is not accessed again unless a special flag
is set"), and error counts accumulate so the report can tell the user a
URL "repeatedly hits errors".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ...web.url import parse_url

__all__ = ["UrlRecord", "StatusCache"]


def _canonical(url: str) -> str:
    return str(parse_url(url).normalized())


@dataclass
class UrlRecord:
    """Everything w3newer remembers about one URL."""

    url: str
    #: The page's Last-Modified as last learned, and when we learned it.
    modification_date: Optional[int] = None
    date_obtained_at: Optional[int] = None
    #: When we last spent a direct HTTP request on this URL.
    last_http_check: Optional[int] = None
    #: Content checksum for pages without Last-Modified.
    checksum: Optional[str] = None
    checksum_obtained_at: Optional[int] = None
    #: robots.txt said no; sticky until --ignore-robots.
    robot_forbidden: bool = False
    #: Consecutive errors (reset on any success).
    error_count: int = 0
    last_error: str = ""
    #: A 301 told us where the page went.
    moved_to: str = ""
    #: When the page was last *observed to change* (the Last-Modified
    #: advancing, or a checksum mismatch) — the change-rate estimator's
    #: per-URL evidence, persisted with the rest of the record.
    last_change_at: Optional[int] = None
    #: Consecutive content-guard trips (drives the quarantine backoff)
    #: and when the last one happened.  Cleared only when a fetch is
    #: admitted cleanly — unlike ``error_count``, a successful HEAD does
    #: not vouch for the body.
    quarantine_count: int = 0
    quarantined_at: Optional[int] = None

    def record_success(self) -> None:
        self.error_count = 0
        self.last_error = ""

    def record_quarantine(self, message: str, at: int) -> None:
        self.quarantine_count += 1
        self.quarantined_at = at
        self.last_error = message

    def clear_quarantine(self) -> None:
        self.quarantine_count = 0
        self.quarantined_at = None

    def record_error(self, message: str) -> None:
        self.error_count += 1
        self.last_error = message

    def note_change(self, at: int) -> None:
        """Record an observed change instant (monotone latest-wins)."""
        if self.last_change_at is None or at > self.last_change_at:
            self.last_change_at = at


class StatusCache:
    """URL-keyed persistent store for :class:`UrlRecord`."""

    def __init__(self) -> None:
        self._records: Dict[str, UrlRecord] = {}

    def record_for(self, url: str) -> UrlRecord:
        key = _canonical(url)
        record = self._records.get(key)
        if record is None:
            record = UrlRecord(url=key)
            self._records[key] = record
        return record

    def peek(self, url: str) -> Optional[UrlRecord]:
        """The record if one exists; never creates."""
        return self._records.get(_canonical(url))

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[UrlRecord]:
        return iter(self._records.values())

    def clear_robot_verdicts(self) -> None:
        """The 'special flag': forget cached robot exclusions."""
        for record in self._records.values():
            record.robot_forbidden = False

    # ------------------------------------------------------------------
    # Persistence (w3newer keeps this across cron runs)
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """A line-per-URL text format, ``|``-separated fields.

        The tenth field (``last_change_at``) was added for the change-
        rate estimator, and the eleventh/twelfth
        (``quarantine_count``/``quarantined_at``) for the content-guard
        quarantine; :meth:`deserialize` still accepts the legacy nine-
        and ten-field forms, so old cache files load cleanly.
        """
        lines = []
        for key in sorted(self._records):
            r = self._records[key]
            lines.append(
                "|".join(
                    [
                        r.url,
                        _opt(r.modification_date),
                        _opt(r.date_obtained_at),
                        _opt(r.last_http_check),
                        r.checksum or "-",
                        _opt(r.checksum_obtained_at),
                        "R" if r.robot_forbidden else "-",
                        str(r.error_count),
                        r.moved_to or "-",
                        _opt(r.last_change_at),
                        str(r.quarantine_count),
                        _opt(r.quarantined_at),
                    ]
                )
            )
        return "\n".join(lines)

    @classmethod
    def deserialize(cls, text: str) -> "StatusCache":
        cache = cls()
        for line in text.splitlines():
            parts = line.split("|")
            if len(parts) not in (9, 10, 12):
                continue
            record = cache.record_for(parts[0])
            record.modification_date = _parse_opt(parts[1])
            record.date_obtained_at = _parse_opt(parts[2])
            record.last_http_check = _parse_opt(parts[3])
            record.checksum = None if parts[4] == "-" else parts[4]
            record.checksum_obtained_at = _parse_opt(parts[5])
            record.robot_forbidden = parts[6] == "R"
            try:
                record.error_count = int(parts[7])
            except ValueError:
                record.error_count = 0
            record.moved_to = "" if parts[8] == "-" else parts[8]
            if len(parts) >= 10:
                record.last_change_at = _parse_opt(parts[9])
            if len(parts) == 12:
                try:
                    record.quarantine_count = int(parts[10])
                except ValueError:
                    record.quarantine_count = 0
                record.quarantined_at = _parse_opt(parts[11])
        return cache


def _opt(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def _parse_opt(text: str) -> Optional[int]:
    if text == "-":
        return None
    try:
        return int(text)
    except ValueError:
        return None
