"""Browser history: when did the user last see each URL?

"The time when the user has viewed the page comes from the W3 browser's
history."  The model is a Netscape-style history database: URL → last
visit time.  The integration wart the paper reports in Section 6 — that
viewing a page through HtmlDiff does NOT update the browser history, so
w3newer keeps reporting the page as modified — falls straight out of
this separation and is exercised in the integration tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ...web.url import parse_url

__all__ = ["BrowserHistory"]


def _canonical(url: str) -> str:
    return str(parse_url(url).normalized())


class BrowserHistory:
    """URL → last-visited timestamp, with normalization."""

    def __init__(self) -> None:
        self._visits: Dict[str, int] = {}

    def visit(self, url: str, when: int) -> None:
        """Record a page view (later of the two when already present)."""
        key = _canonical(url)
        existing = self._visits.get(key)
        if existing is None or when > existing:
            self._visits[key] = when

    def last_seen(self, url: str) -> Optional[int]:
        """Last visit time, or None if the user never viewed the page."""
        return self._visits.get(_canonical(url))

    def forget(self, url: str) -> None:
        self._visits.pop(_canonical(url), None)

    def __len__(self) -> int:
        return len(self._visits)

    def __contains__(self, url: str) -> bool:
        return _canonical(url) in self._visits

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._visits.items())

    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """Netscape-ish on-disk form: ``<url> <timestamp>`` lines."""
        return "\n".join(f"{url} {when}" for url, when in sorted(self._visits.items()))

    @classmethod
    def deserialize(cls, text: str) -> "BrowserHistory":
        history = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            parts = line.rsplit(None, 1)
            if len(parts) != 2:
                continue
            try:
                history.visit(parts[0], int(parts[1]))
            except ValueError:
                continue
        return history
