"""One periodic w3newer run, and its cron wiring.

"Currently, w3newer is invoked directly by the user, probably by a
crontab entry, and generates an HTML document indicating which pages
have changed."  :class:`W3Newer` owns the per-user state (hotlist,
history, status cache, flags) and produces a :class:`RunResult` per
invocation; :meth:`W3Newer.schedule` hangs it off the simulation cron.

Aborting is no longer losing: when the systemic-failure detector fires,
the position in the hotlist (and every outcome already computed) is
parked in a :class:`RunCheckpoint`, and the next invocation resumes
mid-list — the paper's "abort and try again later" without repeating
the work already done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...obs import NOOP as NOOP_OBS
from ...simclock import DAY, CronScheduler, SimClock
from ...web.client import UserAgent
from ...web.proxy import ProxyCache
from .checker import CheckerFlags, UrlChecker
from .errors import CheckOutcome, RunAborted, SystemicFailureDetector, UrlState
from .history import BrowserHistory
from .hotlist import Hotlist
from .localfs import LocalFiles
from .report import ReportOptions, render_report
from .statuscache import StatusCache
from .thresholds import ThresholdConfig

__all__ = ["RunResult", "RunCheckpoint", "W3Newer"]


@dataclass
class RunCheckpoint:
    """Where an aborted run stopped, so the next one can resume.

    ``next_index`` is the hotlist position of the URL whose check
    triggered the abort (it gets retried first); ``outcomes`` carries
    everything already decided, so the resumed run's report still
    covers the whole hotlist.  A checkpoint is only honored while the
    hotlist has the same length — an edited hotlist restarts cleanly.
    """

    next_index: int
    hotlist_size: int
    started_at: int
    outcomes: List[CheckOutcome] = field(default_factory=list)


@dataclass
class RunResult:
    """Everything one w3newer invocation produced."""

    started_at: int
    outcomes: List[CheckOutcome] = field(default_factory=list)
    aborted: str = ""
    report_html: str = ""
    #: Hotlist index this run resumed from (None = started fresh).
    resumed_from: Optional[int] = None

    @property
    def changed(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if o.is_new_to_user]

    @property
    def errors(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if o.state is UrlState.ERROR]

    @property
    def stale(self) -> List[CheckOutcome]:
        """Degraded-mode verdicts served from the status cache."""
        return [o for o in self.outcomes if o.state is UrlState.STALE]

    @property
    def http_requests(self) -> int:
        return sum(o.http_requests for o in self.outcomes)

    @property
    def checked_via_http(self) -> int:
        return sum(1 for o in self.outcomes if o.http_requests > 0)

    @property
    def skipped(self) -> int:
        return sum(
            1 for o in self.outcomes
            if o.state in (UrlState.NOT_CHECKED, UrlState.NEVER_CHECK)
        )


class W3Newer:
    """The per-user change tracker."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        hotlist: Hotlist,
        config: Optional[ThresholdConfig] = None,
        history: Optional[BrowserHistory] = None,
        cache: Optional[StatusCache] = None,
        proxy: Optional[ProxyCache] = None,
        local_files: Optional[LocalFiles] = None,
        flags: Optional[CheckerFlags] = None,
        report_options: Optional[ReportOptions] = None,
        abort_after_failures: int = 5,
        obs=None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.hotlist = hotlist
        self.config = config if config is not None else ThresholdConfig.default_config()
        # NOTE: explicit None checks — an empty BrowserHistory/StatusCache
        # is falsy (it defines __len__), and `or` would silently replace a
        # shared-but-empty instance with a private new one.
        self.history = history if history is not None else BrowserHistory()
        self.cache = cache if cache is not None else StatusCache()
        self.proxy = proxy
        self.local_files = local_files or LocalFiles()
        self.flags = flags or CheckerFlags()
        self.report_options = report_options or ReportOptions()
        self.abort_after_failures = abort_after_failures
        self.runs: List[RunResult] = []
        #: Set when a run aborts; the next run resumes from it.
        self.checkpoint: Optional[RunCheckpoint] = None
        self.obs = obs if obs is not None else NOOP_OBS
        self._c_runs = self.obs.counter("w3newer.runs")
        self._c_checks = self.obs.counter("w3newer.checks")
        self._c_http = self.obs.counter("w3newer.http_requests")
        self._c_aborts = self.obs.counter("w3newer.run_aborts")
        self._h_check_cost = self.obs.histogram(
            "w3newer.check.http_requests", buckets=(0, 1, 2, 3, 5, 8, 13),
        )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Check every hotlist URL; abort early on systemic failure.

        If the previous invocation aborted, this one picks up from its
        checkpoint instead of restarting: outcomes already computed are
        carried over and checking continues mid-list.
        """
        entries = list(self.hotlist)
        start_index = 0
        carried: List[CheckOutcome] = []
        resumed_from: Optional[int] = None
        if (
            self.checkpoint is not None
            and self.checkpoint.hotlist_size == len(entries)
        ):
            start_index = self.checkpoint.next_index
            carried = list(self.checkpoint.outcomes)
            resumed_from = start_index
        self.checkpoint = None
        result = RunResult(started_at=self.clock.now,
                           resumed_from=resumed_from)
        result.outcomes.extend(carried)
        checker = UrlChecker(
            clock=self.clock,
            agent=self.agent,
            config=self.config,
            history=self.history,
            cache=self.cache,
            proxy=self.proxy,
            local_files=self.local_files,
            flags=self.flags,
            failure_detector=SystemicFailureDetector(self.abort_after_failures),
            obs=self.obs,
        )
        self._c_runs.inc()
        index = start_index
        with self.obs.span(
            "w3newer.run", urls=len(entries),
            resumed=resumed_from is not None,
        ) as run_span:
            try:
                while index < len(entries):
                    url = entries[index].url
                    # One span per hotlist URL: the state/source pair
                    # names the ladder rung that decided it (threshold
                    # skip, proxy/status-cache verdict, HEAD, checksum
                    # fallback, degraded STALE).
                    with self.obs.span("w3newer.check", url=url) as span:
                        outcome = checker.check(url)
                        span.set(
                            state=outcome.state.name.lower(),
                            source=outcome.source.value,
                            http_requests=outcome.http_requests,
                        )
                    result.outcomes.append(outcome)
                    self._c_checks.inc()
                    self._c_http.inc(outcome.http_requests)
                    self._h_check_cost.observe(outcome.http_requests)
                    self.obs.counter(
                        "w3newer.state." + outcome.state.name.lower()
                    ).inc()
                    index += 1
            except RunAborted as exc:
                result.aborted = str(exc)
                self._c_aborts.inc()
                self.obs.event("w3newer.run_aborted", reason=str(exc),
                               next_index=index)
                # Park the position: the aborting URL itself is retried
                # first next time (its outcome was never recorded).
                self.checkpoint = RunCheckpoint(
                    next_index=index,
                    hotlist_size=len(entries),
                    started_at=result.started_at,
                    outcomes=list(result.outcomes),
                )
            run_span.set(
                checked=len(result.outcomes),
                http_requests=result.http_requests,
                aborted=bool(result.aborted),
            )
        result.report_html = render_report(
            result.outcomes,
            list(self.hotlist),
            options=self.report_options,
            now=self.clock.now,
            aborted=result.aborted,
            summary=(self._run_summary(result)
                     if self.report_options.run_summary else None),
        )
        self.runs.append(result)
        return result

    def _run_summary(self, result: RunResult) -> dict:
        """The report's opt-in run-summary block: per-run cost totals
        in the spirit of the paper's Table 1 accounting.  Derived from
        the RunResult alone (deterministic, works with observability
        disabled); opt-in because it changes the report's bytes."""
        return {
            "urls": len(result.outcomes),
            "changed": len(result.changed),
            "errors": len(result.errors),
            "stale": len(result.stale),
            "skipped": result.skipped,
            "checked_via_http": result.checked_via_http,
            "http_requests": result.http_requests,
            "resumed_from": result.resumed_from,
            "aborted": result.aborted or "",
        }

    def schedule(self, cron: CronScheduler, period: int = DAY):
        """Hang this tracker off the simulated crontab."""
        return cron.schedule(period, lambda now: self.run(), name="w3newer")

    # ------------------------------------------------------------------
    def mark_page_viewed(self, url: str) -> None:
        """The user visited a page directly (updates browser history).

        Note: viewing a page *through HtmlDiff* does not call this —
        Section 6 points out that "the browser records the URL that was
        used to invoke HtmlDiff", so the page keeps showing as modified
        until visited directly.  The integration tests rely on exactly
        that wart.
        """
        self.history.visit(url, self.clock.now)
