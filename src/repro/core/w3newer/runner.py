"""One periodic w3newer run, and its cron wiring.

"Currently, w3newer is invoked directly by the user, probably by a
crontab entry, and generates an HTML document indicating which pages
have changed."  :class:`W3Newer` owns the per-user state (hotlist,
history, status cache, flags) and produces a :class:`RunResult` per
invocation; :meth:`W3Newer.schedule` hangs it off the simulation cron.

Aborting is no longer losing: when the systemic-failure detector fires,
the position in the hotlist (and every outcome already computed) is
parked in a :class:`RunCheckpoint`, and the next invocation resumes
mid-list — the paper's "abort and try again later" without repeating
the work already done.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from ...obs import NOOP as NOOP_OBS
from ...simclock import DAY, CronScheduler, SimClock
from ...web.client import UserAgent
from ...web.proxy import ProxyCache
from ...web.robots import RobotsFile
from .checker import CheckerFlags, UrlChecker
from .crawl import CrawlExecutor, CrawlOptions, HostGovernor
from .errors import CheckOutcome, RunAborted, SystemicFailureDetector, UrlState
from .estimator import ChangeRateEstimator
from .history import BrowserHistory
from .hotlist import Hotlist
from .localfs import LocalFiles
from .report import ReportOptions, render_report
from .scheduler import (
    CrawlSchedule,
    ScheduledCheck,
    SchedulePolicy,
    build_schedule,
)
from .statuscache import StatusCache
from .thresholds import ThresholdConfig

__all__ = ["RunResult", "RunCheckpoint", "CrawlCheckpoint", "W3Newer"]


@dataclass
class RunCheckpoint:
    """Where an aborted run stopped, so the next one can resume.

    ``next_index`` is the hotlist position of the URL whose check
    triggered the abort (it gets retried first); ``outcomes`` carries
    everything already decided, so the resumed run's report still
    covers the whole hotlist.  A checkpoint is only honored while the
    hotlist has the same length — an edited hotlist restarts cleanly.
    """

    next_index: int
    hotlist_size: int
    started_at: int
    outcomes: List[CheckOutcome] = field(default_factory=list)


@dataclass
class CrawlCheckpoint:
    """Where an interrupted *concurrent* run stopped.

    Unlike the serial checkpoint, position is not one hotlist index:
    the budgeted schedule was already fixed when the run began, so the
    checkpoint parks the **remaining scheduled checks** verbatim (never
    re-screened against the now-mutated caches — re-screening would
    change the check set and break byte-identity with an uninterrupted
    run), every outcome already decided, the governor's virtual
    timeline, and the per-run robots verdicts so resuming does not
    re-fetch robots.txt for hosts already asked.
    """

    hotlist_size: int
    started_at: int
    pending: List[ScheduledCheck] = field(default_factory=list)
    outcomes: Dict[int, CheckOutcome] = field(default_factory=dict)
    governor_state: Dict[str, object] = field(default_factory=dict)
    robots_by_host: Dict[str, RobotsFile] = field(default_factory=dict)
    robots_errors: Dict[str, str] = field(default_factory=dict)
    failed_hosts: Set[str] = field(default_factory=set)


@dataclass
class RunResult:
    """Everything one w3newer invocation produced."""

    started_at: int
    outcomes: List[CheckOutcome] = field(default_factory=list)
    aborted: str = ""
    report_html: str = ""
    #: Hotlist index this run resumed from (None = started fresh).
    resumed_from: Optional[int] = None

    @property
    def changed(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if o.is_new_to_user]

    @property
    def errors(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if o.state is UrlState.ERROR]

    @property
    def stale(self) -> List[CheckOutcome]:
        """Degraded-mode verdicts served from the status cache."""
        return [o for o in self.outcomes if o.state is UrlState.STALE]

    @property
    def quarantined(self) -> List[CheckOutcome]:
        """URLs whose content tripped an ingest guard."""
        return [o for o in self.outcomes
                if o.state is UrlState.QUARANTINED]

    @property
    def http_requests(self) -> int:
        return sum(o.http_requests for o in self.outcomes)

    @property
    def checked_via_http(self) -> int:
        return sum(1 for o in self.outcomes if o.http_requests > 0)

    @property
    def skipped(self) -> int:
        return sum(
            1 for o in self.outcomes
            if o.state in (UrlState.NOT_CHECKED, UrlState.NEVER_CHECK,
                           UrlState.DEFERRED)
        )

    @property
    def deferred(self) -> int:
        """URLs the fetch budget pushed past this run."""
        return sum(
            1 for o in self.outcomes if o.state is UrlState.DEFERRED
        )


class W3Newer:
    """The per-user change tracker."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        hotlist: Hotlist,
        config: Optional[ThresholdConfig] = None,
        history: Optional[BrowserHistory] = None,
        cache: Optional[StatusCache] = None,
        proxy: Optional[ProxyCache] = None,
        local_files: Optional[LocalFiles] = None,
        flags: Optional[CheckerFlags] = None,
        report_options: Optional[ReportOptions] = None,
        abort_after_failures: int = 5,
        obs=None,
        crawl: Optional[CrawlOptions] = None,
        estimator: Optional[ChangeRateEstimator] = None,
        guard=None,
        quarantine=None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.hotlist = hotlist
        self.config = config if config is not None else ThresholdConfig.default_config()
        # NOTE: explicit None checks — an empty BrowserHistory/StatusCache
        # is falsy (it defines __len__), and `or` would silently replace a
        # shared-but-empty instance with a private new one.
        self.history = history if history is not None else BrowserHistory()
        self.cache = cache if cache is not None else StatusCache()
        self.proxy = proxy
        self.local_files = local_files or LocalFiles()
        self.flags = flags or CheckerFlags()
        self.report_options = report_options or ReportOptions()
        self.abort_after_failures = abort_after_failures
        self.runs: List[RunResult] = []
        #: Set when a run aborts; the next run resumes from it.  Holds
        #: a :class:`RunCheckpoint` (serial path) or a
        #: :class:`CrawlCheckpoint` (concurrent path).
        self.checkpoint = None
        #: None = the paper's serial walk; a CrawlOptions = the
        #: budgeted concurrent pipeline.
        self.crawl = crawl
        if estimator is None and crawl is not None \
                and crawl.policy is SchedulePolicy.ADAPTIVE:
            estimator = ChangeRateEstimator()
        self.estimator = estimator
        #: Optional hostile-content hardening: a ContentGuard applied
        #: to every fetched body, and a QuarantineJournal holding the
        #: offending bytes for `aide quarantine list/retry/purge`.
        self.guard = guard
        self.quarantine = quarantine
        #: The last screening pass (PolicyDecisions for ``--explain``).
        self.last_schedule: Optional[CrawlSchedule] = None
        #: Governor/scheduling stats of the last concurrent run.
        self.last_crawl: Dict[str, object] = {}
        self.obs = obs if obs is not None else NOOP_OBS
        self._c_runs = self.obs.counter("w3newer.runs")
        self._c_checks = self.obs.counter("w3newer.checks")
        self._c_http = self.obs.counter("w3newer.http_requests")
        self._c_aborts = self.obs.counter("w3newer.run_aborts")
        self._h_check_cost = self.obs.histogram(
            "w3newer.check.http_requests", buckets=(0, 1, 2, 3, 5, 8, 13),
        )
        self._h_priority = self.obs.histogram(
            "w3newer.crawl.priority",
            buckets=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0),
        )
        self._g_inflight = self.obs.gauge("w3newer.crawl.max_host_inflight")
        self._g_makespan = self.obs.gauge("w3newer.crawl.makespan")

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Check every hotlist URL; abort early on systemic failure.

        If the previous invocation aborted, this one picks up from its
        checkpoint instead of restarting: outcomes already computed are
        carried over and checking continues mid-list.

        With :class:`CrawlOptions` configured, the run goes through the
        budgeted concurrent pipeline instead (see :meth:`_run_crawl`).
        """
        if self.crawl is not None:
            return self._run_crawl()
        entries = list(self.hotlist)
        start_index = 0
        carried: List[CheckOutcome] = []
        resumed_from: Optional[int] = None
        if (
            isinstance(self.checkpoint, RunCheckpoint)
            and self.checkpoint.hotlist_size == len(entries)
        ):
            start_index = self.checkpoint.next_index
            carried = list(self.checkpoint.outcomes)
            resumed_from = start_index
        self.checkpoint = None
        result = RunResult(started_at=self.clock.now,
                           resumed_from=resumed_from)
        result.outcomes.extend(carried)
        checker = UrlChecker(
            clock=self.clock,
            agent=self.agent,
            config=self.config,
            history=self.history,
            cache=self.cache,
            proxy=self.proxy,
            local_files=self.local_files,
            flags=self.flags,
            failure_detector=SystemicFailureDetector(self.abort_after_failures),
            obs=self.obs,
            guard=self.guard,
            quarantine=self.quarantine,
        )
        self._c_runs.inc()
        index = start_index
        with self.obs.span(
            "w3newer.run", urls=len(entries),
            resumed=resumed_from is not None,
        ) as run_span:
            try:
                while index < len(entries):
                    url = entries[index].url
                    # One span per hotlist URL: the state/source pair
                    # names the ladder rung that decided it (threshold
                    # skip, proxy/status-cache verdict, HEAD, checksum
                    # fallback, degraded STALE).
                    with self.obs.span("w3newer.check", url=url) as span:
                        outcome = checker.check(url)
                        span.set(
                            state=outcome.state.name.lower(),
                            source=outcome.source.value,
                            http_requests=outcome.http_requests,
                        )
                    result.outcomes.append(outcome)
                    self._c_checks.inc()
                    self._c_http.inc(outcome.http_requests)
                    self._h_check_cost.observe(outcome.http_requests)
                    self.obs.counter(
                        "w3newer.state." + outcome.state.name.lower()
                    ).inc()
                    index += 1
            except RunAborted as exc:
                result.aborted = str(exc)
                self._c_aborts.inc()
                self.obs.event("w3newer.run_aborted", reason=str(exc),
                               next_index=index)
                # Park the position: the aborting URL itself is retried
                # first next time (its outcome was never recorded).
                self.checkpoint = RunCheckpoint(
                    next_index=index,
                    hotlist_size=len(entries),
                    started_at=result.started_at,
                    outcomes=list(result.outcomes),
                )
            run_span.set(
                checked=len(result.outcomes),
                http_requests=result.http_requests,
                aborted=bool(result.aborted),
            )
        self._render_into(result)
        self.runs.append(result)
        return result

    # ------------------------------------------------------------------
    # The concurrent pipeline
    # ------------------------------------------------------------------
    def _run_crawl(self) -> RunResult:
        """One budgeted, concurrent, politeness-governed run.

        Screening (:func:`build_schedule`) synthesizes every outcome
        the checker ladder would decide without HTTP and picks the
        fetch set under the budget; the executor drains the scheduled
        checks on ``workers`` cooperative SimScheduler tasks while the
        :class:`HostGovernor` places every fetch on a virtual timeline
        under the per-host politeness limits.  Same seed, same inputs
        ⇒ byte-identical report and fetch trace.
        """
        entries = list(self.hotlist)
        opts = self.crawl
        now = self.clock.now
        resumed_from: Optional[int] = None
        outcomes: Dict[int, CheckOutcome] = {}
        governor = HostGovernor(
            workers=max(1, opts.workers),
            max_per_host=opts.max_per_host,
            host_delay=opts.host_delay,
            request_cost=opts.request_cost,
            start=now,
            record_trace=opts.record_trace,
        )
        checkpoint = self.checkpoint
        self.checkpoint = None
        schedule: Optional[CrawlSchedule] = None
        if (
            isinstance(checkpoint, CrawlCheckpoint)
            and checkpoint.hotlist_size == len(entries)
        ):
            pending = list(checkpoint.pending)
            outcomes = dict(checkpoint.outcomes)
            governor.restore(checkpoint.governor_state)
            resumed_from = len(outcomes)
            started_at = checkpoint.started_at
        else:
            checkpoint = None
            started_at = now
            schedule = build_schedule(
                entries,
                now=now,
                config=self.config,
                history=self.history,
                cache=self.cache,
                proxy=self.proxy,
                flags=self.flags,
                policy=opts.policy,
                budget=opts.budget,
                estimator=self.estimator,
                record_decisions=opts.record_decisions,
            )
            self.last_schedule = schedule
            pending = list(schedule.checks)
            outcomes.update(dict(schedule.synthesized))
            for name, value in schedule.counters.items():
                self.obs.counter("w3newer.crawl." + name).inc(value)
            for check in schedule.checks:
                if check.expects_http:
                    self._h_priority.observe(check.priority)

        checker = UrlChecker(
            clock=self.clock,
            agent=self.agent,
            config=self.config,
            history=self.history,
            cache=self.cache,
            proxy=self.proxy,
            local_files=self.local_files,
            flags=self.flags,
            failure_detector=SystemicFailureDetector(self.abort_after_failures),
            obs=self.obs,
            guard=self.guard,
            quarantine=self.quarantine,
        )
        if checkpoint is not None:
            checker._robots_by_host.update(checkpoint.robots_by_host)
            checker._robots_errors.update(checkpoint.robots_errors)
            checker._failed_hosts.update(checkpoint.failed_hosts)

        self._c_runs.inc()
        result = RunResult(started_at=started_at, resumed_from=resumed_from)
        with self.obs.span(
            "w3newer.crawl_run", urls=len(entries),
            policy=opts.policy.value, workers=opts.workers,
            resumed=resumed_from is not None,
        ) as run_span:
            executor = CrawlExecutor(checker, governor, opts, obs=self.obs)
            crawl = executor.run(pending)
            for task, outcome in crawl.completed:
                outcomes[task.index] = outcome
                for dup in task.coalesced:
                    outcomes[dup] = replace(outcome, url=entries[dup].url)
                self._feed_estimator(task.url, outcome, now)
                self._c_checks.inc()
                self._c_http.inc(outcome.http_requests)
                self._h_check_cost.observe(outcome.http_requests)
                self.obs.counter(
                    "w3newer.state." + outcome.state.name.lower()
                ).inc()
            if crawl.aborted:
                result.aborted = crawl.aborted
            elif crawl.paused:
                result.aborted = (
                    f"crawl paused: check quota ({opts.max_checks}) reached"
                )
            if result.aborted:
                self._c_aborts.inc()
                self.obs.event("w3newer.run_aborted", reason=result.aborted,
                               pending=len(crawl.pending))
                self.checkpoint = CrawlCheckpoint(
                    hotlist_size=len(entries),
                    started_at=started_at,
                    pending=list(crawl.pending),
                    outcomes=dict(outcomes),
                    governor_state=governor.snapshot(),
                    robots_by_host=dict(checker._robots_by_host),
                    robots_errors=dict(checker._robots_errors),
                    failed_hosts=set(checker._failed_hosts),
                )
            run_span.set(
                checked=len(crawl.completed),
                http_requests=governor.requests,
                makespan=governor.makespan,
                aborted=bool(result.aborted),
            )
        result.outcomes = [outcomes[i] for i in sorted(outcomes)]
        self._g_inflight.set(governor.max_inflight)
        self._g_makespan.set(governor.makespan)
        self.last_crawl = {
            "policy": opts.policy.value,
            "budget": opts.budget,
            "governor": governor.stats(),
            "trace": governor.trace,
            "schedule": dict(schedule.counters) if schedule else {},
            "claims": crawl.claims,
        }
        if opts.advance_clock and governor.makespan > 0:
            self.clock.advance(governor.makespan)
        self._render_into(result)
        self.runs.append(result)
        return result

    def _feed_estimator(self, url: str, outcome: CheckOutcome,
                        now: int) -> None:
        """Turn one verdict into change-rate evidence."""
        if self.estimator is None:
            return
        state = outcome.state
        if state is UrlState.CHANGED:
            self.estimator.observe(url, now, changed=True)
        elif state in (UrlState.SEEN, UrlState.MOVED, UrlState.NEVER_SEEN):
            self.estimator.observe(url, now, changed=False)
        elif state in (UrlState.ERROR, UrlState.STALE,
                       UrlState.QUARANTINED):
            # A quarantined fetch taught us nothing about change rate;
            # like errors, it counts as a miss so the estimator cools
            # the URL's priority instead of re-spending budget on it.
            self.estimator.observe_miss(url, now)

    def _render_into(self, result: RunResult) -> None:
        """Render the Figure-1 report into the result (if enabled)."""
        if not self.report_options.render:
            return
        result.report_html = render_report(
            result.outcomes,
            list(self.hotlist),
            options=self.report_options,
            now=self.clock.now,
            aborted=result.aborted,
            summary=(self._run_summary(result)
                     if self.report_options.run_summary else None),
        )

    # ------------------------------------------------------------------
    # Surfaces
    # ------------------------------------------------------------------
    def explain(self, url: str) -> Dict[str, object]:
        """The ``aide newer --explain URL`` payload.

        Combines the estimator's model view (predicted change rate,
        next-due time) with the last screening pass's policy decision
        for the URL, when either exists.
        """
        now = self.clock.now
        if self.estimator is not None:
            info = self.estimator.explain(url, now)
        else:
            info = {"url": url, "tracked": False}
        decision = None
        if self.last_schedule is not None:
            decision = self.last_schedule.decisions.get(url)
        if decision is not None:
            info["last_decision"] = {
                "action": decision.action,
                "reason": decision.reason,
                "priority": round(decision.priority, 6),
            }
        else:
            info["last_decision"] = None
        record = self.cache.peek(url)
        if record is not None:
            info["last_http_check"] = record.last_http_check
            info["last_observed_change"] = record.last_change_at
        return info

    def crawl_stats(self) -> Dict[str, object]:
        """The ``crawl`` block for ``store.stats()`` / CGI stats."""
        if self.crawl is None:
            return {"attached": False}
        out: Dict[str, object] = {
            "attached": True,
            "policy": self.crawl.policy.value,
            "workers": self.crawl.workers,
            "budget": self.crawl.budget,
            "runs": len(self.runs),
        }
        if self.last_crawl:
            out["last_run"] = {
                "governor": self.last_crawl.get("governor", {}),
                "schedule": self.last_crawl.get("schedule", {}),
            }
        if self.estimator is not None:
            out["estimator"] = self.estimator.stats()
        return out

    def _run_summary(self, result: RunResult) -> dict:
        """The report's opt-in run-summary block: per-run cost totals
        in the spirit of the paper's Table 1 accounting.  Derived from
        the RunResult alone (deterministic, works with observability
        disabled); opt-in because it changes the report's bytes."""
        return {
            "urls": len(result.outcomes),
            "changed": len(result.changed),
            "errors": len(result.errors),
            "stale": len(result.stale),
            "quarantined": len(result.quarantined),
            "skipped": result.skipped,
            "checked_via_http": result.checked_via_http,
            "http_requests": result.http_requests,
            "resumed_from": result.resumed_from,
            "aborted": result.aborted or "",
        }

    def schedule(self, cron: CronScheduler, period: int = DAY):
        """Hang this tracker off the simulated crontab."""
        return cron.schedule(period, lambda now: self.run(), name="w3newer")

    # ------------------------------------------------------------------
    def mark_page_viewed(self, url: str) -> None:
        """The user visited a page directly (updates browser history).

        Note: viewing a page *through HtmlDiff* does not call this —
        Section 6 points out that "the browser records the URL that was
        used to invoke HtmlDiff", so the page keeps showing as modified
        until visited directly.  The integration tests rely on exactly
        that wart.
        """
        self.history.visit(url, self.clock.now)
