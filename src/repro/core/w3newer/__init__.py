"""w3newer: tracking modifications to hotlist pages (paper Section 3).

A scalable derivative of w3new: per-URL thresholds (Table 1), layered
modification-date sources (status cache → proxy cache → HEAD →
checksum), robot exclusion, error policy, and the Figure 1 report with
Remember/Diff/History links into the snapshot facility.
"""

from .checker import CheckerFlags, UrlChecker, content_checksum
from .errors import (
    CheckOutcome,
    CheckSource,
    RunAborted,
    SystemicFailureDetector,
    UrlState,
)
from .history import BrowserHistory
from .hotlist import Hotlist, HotlistEntry
from .localfs import FileStat, LocalFiles
from .report import (
    ReportOptions,
    render_all_dates_report,
    render_report,
    render_report_text,
)
from .runner import RunResult, W3Newer
from .statuscache import StatusCache, UrlRecord
from .thresholds import (
    TABLE1_CONFIG,
    ThresholdConfig,
    ThresholdRule,
    parse_threshold_config,
)

__all__ = [
    "CheckerFlags",
    "UrlChecker",
    "content_checksum",
    "CheckOutcome",
    "CheckSource",
    "RunAborted",
    "SystemicFailureDetector",
    "UrlState",
    "BrowserHistory",
    "Hotlist",
    "HotlistEntry",
    "FileStat",
    "LocalFiles",
    "ReportOptions",
    "render_all_dates_report",
    "render_report",
    "render_report_text",
    "RunResult",
    "W3Newer",
    "StatusCache",
    "UrlRecord",
    "TABLE1_CONFIG",
    "ThresholdConfig",
    "ThresholdRule",
    "parse_threshold_config",
]
