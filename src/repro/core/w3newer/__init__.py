"""w3newer: tracking modifications to hotlist pages (paper Section 3).

A scalable derivative of w3new: per-URL thresholds (Table 1), layered
modification-date sources (status cache → proxy cache → HEAD →
checksum), robot exclusion, error policy, and the Figure 1 report with
Remember/Diff/History links into the snapshot facility.
"""

from .checker import CheckerFlags, UrlChecker, content_checksum
from .crawl import (
    CrawlExecutor,
    CrawlOptions,
    CrawlResult,
    FetchSlot,
    HostGovernor,
)
from .errors import (
    CheckOutcome,
    CheckSource,
    RunAborted,
    SystemicFailureDetector,
    UrlState,
)
from .history import BrowserHistory
from .hotlist import Hotlist, HotlistEntry
from .localfs import FileStat, LocalFiles
from .report import (
    ReportOptions,
    render_all_dates_report,
    render_report,
    render_report_text,
)
from .estimator import ChangeRateEstimator, UrlEstimate
from .runner import CrawlCheckpoint, RunCheckpoint, RunResult, W3Newer
from .scheduler import (
    CrawlSchedule,
    PolicyDecision,
    ScheduledCheck,
    SchedulePolicy,
    build_schedule,
)
from .statuscache import StatusCache, UrlRecord
from .thresholds import (
    TABLE1_CONFIG,
    ThresholdConfig,
    ThresholdRule,
    parse_threshold_config,
)

__all__ = [
    "CheckerFlags",
    "UrlChecker",
    "content_checksum",
    "ChangeRateEstimator",
    "UrlEstimate",
    "CrawlExecutor",
    "CrawlOptions",
    "CrawlResult",
    "FetchSlot",
    "HostGovernor",
    "CrawlSchedule",
    "PolicyDecision",
    "ScheduledCheck",
    "SchedulePolicy",
    "build_schedule",
    "RunCheckpoint",
    "CrawlCheckpoint",
    "CheckOutcome",
    "CheckSource",
    "RunAborted",
    "SystemicFailureDetector",
    "UrlState",
    "BrowserHistory",
    "Hotlist",
    "HotlistEntry",
    "FileStat",
    "LocalFiles",
    "ReportOptions",
    "render_all_dates_report",
    "render_report",
    "render_report_text",
    "RunResult",
    "W3Newer",
    "StatusCache",
    "UrlRecord",
    "TABLE1_CONFIG",
    "ThresholdConfig",
    "ThresholdRule",
    "parse_threshold_config",
]
