"""Token matching: the weighted LCS of Section 5.1.

Two token kinds, two matching rules:

* **Sentence-breaking markups** match only identical (normalized)
  sentence-breaking markups, with weight 1.
* **Sentences** match fuzzily in two steps — a cheap length pre-filter,
  then a word-level LCS whose ``2W/L`` ratio must clear the threshold;
  a successful match has weight ``W`` (the number of words and
  content-defining markups in the common subsequence).

Per-pair weights are memoized on sentence keys: the Hirschberg driver
evaluates the same pair many times across recursion levels, and the
inner sentence LCS is the expensive part.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...diffcore.lcs import weighted_lcs_pairs
from .options import HtmlDiffOptions
from .tokens import BreakToken, SentenceToken, Token

__all__ = ["TokenMatcher", "match_tokens"]

#: Small enough that no realistic number of presentational-markup
#: matches (< 1e6 per sentence) outweighs one content match.
_PRESENTATION_EPSILON = 1e-6


def _item_weight(x, y) -> float:
    """Sentence-item weight: exact equality, content items dominant."""
    if x != y:
        return 0.0
    return 1.0 if x.counts_toward_length else _PRESENTATION_EPSILON


class TokenMatcher:
    """Weight function over tokens, with memoization."""

    def __init__(self, options: HtmlDiffOptions = None) -> None:
        self.options = options or HtmlDiffOptions()
        self.options.validate()
        self._cache: Dict[Tuple, float] = {}
        #: Instrumentation for the S4 ablation: how many sentence pairs
        #: were rejected by the length pre-filter alone (each one an
        #: inner LCS avoided).
        self.prefilter_rejections = 0
        self.inner_lcs_runs = 0

    # ------------------------------------------------------------------
    def weight(self, a: Token, b: Token) -> float:
        """Non-negative match weight; 0 means "do not match"."""
        a_is_break = isinstance(a, BreakToken)
        b_is_break = isinstance(b, BreakToken)
        if a_is_break != b_is_break:
            return 0.0  # sentences only match sentences, breaks breaks
        if a_is_break:
            return 1.0 if a.normalized == b.normalized else 0.0
        return self._sentence_weight(a, b)

    def _sentence_weight(self, a: SentenceToken, b: SentenceToken) -> float:
        key = (a.key, b.key)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        weight = self._compute_sentence_weight(a, b)
        self._cache[key] = weight
        self._cache[(b.key, a.key)] = weight  # symmetry
        return weight

    def _compute_sentence_weight(self, a: SentenceToken, b: SentenceToken) -> float:
        la, lb = a.length, b.length
        if la == 0 and lb == 0:
            # Content-free sentences (only <B>-class markups): match
            # only when literally identical; tiny weight so a sea of
            # them never outweighs real content.
            return 0.5 if a.key == b.key else 0.0
        # Step 1: the length pre-filter.
        if self.options.use_length_prefilter:
            if min(la, lb) < self.options.length_ratio * max(la, lb):
                self.prefilter_rejections += 1
                return 0.0
        # Step 2: LCS of the item sequences.  Content items (words and
        # content-defining markups) weigh 1; presentational markups get
        # an epsilon so they align when convenient but can never steal
        # an alignment from content.  (With uniform weights, "<B></B>
        # <IMG>" vs "<B><IMG></B>" could tie-break toward matching the
        # </B> pair instead of the IMG, making W direction-dependent.)
        self.inner_lcs_runs += 1
        common = weighted_lcs_pairs(a.items, b.items, _item_weight)
        w = sum(1 for _i, _j, weight in common if weight == 1.0)
        total = la + lb
        if total == 0 or 2.0 * w / total < self.options.match_threshold:
            return 0.0
        return float(w)


def match_tokens(
    old_tokens: Sequence[Token],
    new_tokens: Sequence[Token],
    options: HtmlDiffOptions = None,
    matcher: TokenMatcher = None,
) -> List[Tuple[int, int, float]]:
    """The heaviest common subsequence of two token streams.

    Returns (old_index, new_index, weight) triples in increasing order.
    """
    if matcher is None:
        matcher = TokenMatcher(options)
    return weighted_lcs_pairs(list(old_tokens), list(new_tokens), matcher.weight)
