"""Token matching: the weighted LCS of Section 5.1.

Two token kinds, two matching rules:

* **Sentence-breaking markups** match only identical (normalized)
  sentence-breaking markups, with weight 1.
* **Sentences** match fuzzily in two steps — a cheap length pre-filter,
  then a word-level LCS whose ``2W/L`` ratio must clear the threshold;
  a successful match has weight ``W`` (the number of words and
  content-defining markups in the common subsequence).

Per-pair weights are memoized on sentence keys: the Hirschberg driver
evaluates the same pair many times across recursion levels, and the
inner sentence LCS is the expensive part.

The paper says the LCS runs "with several speed optimizations"; beyond
the affix trimming in :mod:`repro.diffcore.lcs`, this module layers
three more (each toggleable via :class:`HtmlDiffOptions`, all
output-neutral — the differential tests prove it):

* **exact fast lane** — tokens are interned to small ids keyed on
  their normalized form, so the per-DP-cell weight callback is an
  integer compare (identical pair → precomputed exact weight; break
  tokens never reach the sentence machinery) plus an int-pair memo;
* **upper-bound pruning** — before the inner word-level LCS, the
  multiset intersection of the two sentences' content items bounds
  ``W`` from above; a pair that cannot clear ``match_threshold`` even
  at that bound is rejected without running the LCS;
* **anchor decomposition** — tokens unique in both streams pin the
  alignment and the quadratic core runs only between them
  (:func:`repro.diffcore.anchor.anchored_lcs_pairs`).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ...diffcore.anchor import anchored_lcs_pairs
from ...diffcore.lcs import canonicalize_pairs, weighted_lcs_pairs
from .options import HtmlDiffOptions
from .tokens import BreakToken, SentenceToken, Token, Word

__all__ = ["TokenMatcher", "match_tokens"]

#: Small enough that no realistic number of presentational-markup
#: matches (< 1e6 per sentence) outweighs one content match.
_PRESENTATION_EPSILON = 1e-6


def _item_weight(x, y) -> float:
    """Sentence-item weight: exact equality, content items dominant."""
    if x != y:
        return 0.0
    return 1.0 if x.counts_toward_length else _PRESENTATION_EPSILON


class TokenMatcher:
    """Weight function over tokens, with memoization."""

    def __init__(self, options: HtmlDiffOptions = None) -> None:
        self.options = options or HtmlDiffOptions()
        self.options.validate()
        self._cache: Dict[Tuple, float] = {}
        self._bags: Dict[Tuple, Counter] = {}
        #: Instrumentation for the S4 ablation: how many sentence pairs
        #: were rejected by the length pre-filter alone (each one an
        #: inner LCS avoided).
        self.prefilter_rejections = 0
        #: Pairs rejected by the bag-of-items bound (each also an inner
        #: LCS avoided, at the cost of two Counter intersections).
        self.upper_bound_rejections = 0
        self.inner_lcs_runs = 0
        #: Identical-key pairs resolved without any item comparison.
        self.exact_lane_hits = 0
        #: Weight-memo entries dropped to honor ``matcher_cache_size``.
        self.cache_evictions = 0

    # ------------------------------------------------------------------
    def weight(self, a: Token, b: Token) -> float:
        """Non-negative match weight; 0 means "do not match"."""
        a_is_break = isinstance(a, BreakToken)
        b_is_break = isinstance(b, BreakToken)
        if a_is_break != b_is_break:
            return 0.0  # sentences only match sentences, breaks breaks
        if a_is_break:
            return 1.0 if a.normalized == b.normalized else 0.0
        return self._sentence_weight(a, b)

    def stats(self) -> Dict[str, int]:
        """Instrumentation snapshot for the api layer."""
        return {
            "cache_size": len(self._cache),
            "cache_limit": self.options.matcher_cache_size,
            "cache_evictions": self.cache_evictions,
            "prefilter_rejections": self.prefilter_rejections,
            "upper_bound_rejections": self.upper_bound_rejections,
            "inner_lcs_runs": self.inner_lcs_runs,
            "exact_lane_hits": self.exact_lane_hits,
        }

    # ------------------------------------------------------------------
    def _sentence_weight(self, a: SentenceToken, b: SentenceToken) -> float:
        key = (a.key, b.key)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        weight = self._compute_sentence_weight(a, b)
        self._cache[key] = weight
        self._cache[(b.key, a.key)] = weight  # symmetry
        self._enforce_cache_bound()
        return weight

    def _enforce_cache_bound(self) -> None:
        """Drop oldest memo entries beyond the configured bound (a
        matcher reused across many page pairs would otherwise grow
        without limit)."""
        limit = self.options.matcher_cache_size
        if limit <= 0:
            return
        cache = self._cache
        while len(cache) > limit:
            cache.pop(next(iter(cache)))
            self.cache_evictions += 1
        bags = self._bags
        while len(bags) > limit:
            bags.pop(next(iter(bags)))

    def _content_bag(self, sentence: SentenceToken) -> Counter:
        """Multiset of the sentence's content-item identities."""
        key = sentence.key
        bag = self._bags.get(key)
        if bag is None:
            bag = Counter(
                item.text if isinstance(item, Word) else item.normalized
                for item in sentence.items
                if item.counts_toward_length
            )
            self._bags[key] = bag
        return bag

    def _compute_sentence_weight(self, a: SentenceToken, b: SentenceToken) -> float:
        la, lb = a.length, b.length
        if la == 0 and lb == 0:
            # Content-free sentences (only <B>-class markups): match
            # only when literally identical; tiny weight so a sea of
            # them never outweighs real content.
            return 0.5 if a.key == b.key else 0.0
        if a.key == b.key:
            # Identical items: the LCS is the whole sentence, W = la.
            self.exact_lane_hits += 1
            return float(la)
        # Step 1: the length pre-filter.
        if self.options.use_length_prefilter:
            if min(la, lb) < self.options.length_ratio * max(la, lb):
                self.prefilter_rejections += 1
                return 0.0
        total = la + lb
        # Step 1b: the bag-of-items bound.  The word-level LCS can never
        # contain more content items than the multiset intersection, so
        # W <= upper; if even 2*upper/total misses the threshold the
        # inner LCS cannot change the verdict.
        if self.options.use_upper_bound_prefilter:
            bag_a = self._content_bag(a)
            bag_b = self._content_bag(b)
            if len(bag_b) < len(bag_a):
                bag_a, bag_b = bag_b, bag_a
            upper = sum(
                count if count <= bag_b[item] else bag_b[item]
                for item, count in bag_a.items()
                if item in bag_b
            )
            if 2.0 * upper / total < self.options.match_threshold:
                self.upper_bound_rejections += 1
                return 0.0
        # Step 2: LCS of the item sequences.  Content items (words and
        # content-defining markups) weigh 1; presentational markups get
        # an epsilon so they align when convenient but can never steal
        # an alignment from content.  (With uniform weights, "<B></B>
        # <IMG>" vs "<B><IMG></B>" could tie-break toward matching the
        # </B> pair instead of the IMG, making W direction-dependent.)
        self.inner_lcs_runs += 1
        common = weighted_lcs_pairs(a.items, b.items, _item_weight)
        w = sum(1 for _i, _j, weight in common if weight == 1.0)
        if 2.0 * w / total < self.options.match_threshold:
            return 0.0
        return float(w)

    # ------------------------------------------------------------------
    # The stream-level drivers
    # ------------------------------------------------------------------
    def match(
        self, old_tokens: Sequence[Token], new_tokens: Sequence[Token]
    ) -> List[Tuple[int, int, float]]:
        """The heaviest common subsequence of two token streams.

        Whatever solver runs, the result is canonicalized — matches of
        repeated tokens slide to their earliest occurrences — so the
        alignment is a function of the inputs alone, not of which
        solver (or which speed optimization) produced it.
        """
        if self.options.use_exact_fast_lane:
            return self._match_interned(old_tokens, new_tokens)
        old_list, new_list = list(old_tokens), list(new_tokens)
        if self.options.use_anchors:
            pairs = anchored_lcs_pairs(
                old_list, new_list, self.weight, key=_token_identity,
                min_anchor_weight=1.0,
            )
        else:
            pairs = weighted_lcs_pairs(old_list, new_list, self.weight)
        return canonicalize_pairs(old_list, new_list, pairs, key=_token_identity)

    def _match_interned(
        self, old_tokens: Sequence[Token], new_tokens: Sequence[Token]
    ) -> List[Tuple[int, int, float]]:
        """Run the LCS over interned token ids.

        Weight depends only on a token's normalized form (the memo has
        always been keyed that way), so equal-key tokens are
        interchangeable: mapping each distinct key to a small int makes
        the DP's equality test an int compare, the exact-match weight an
        array lookup, and the fuzzy-pair memo an int-tuple dict.
        """
        index: Dict[Tuple, int] = {}
        reps: List[Token] = []
        is_break: List[bool] = []
        exact_w: List[float] = []

        def intern(token: Token) -> int:
            key = _token_identity(token)
            token_id = index.get(key)
            if token_id is None:
                token_id = len(reps)
                index[key] = token_id
                reps.append(token)
                if isinstance(token, BreakToken):
                    is_break.append(True)
                    exact_w.append(1.0)
                else:
                    is_break.append(False)
                    length = token.length
                    exact_w.append(float(length) if length else 0.5)
            return token_id

        a_ids = [intern(t) for t in old_tokens]
        b_ids = [intern(t) for t in new_tokens]

        pair_cache: Dict[Tuple[int, int], float] = {}

        def pair_weight(ia: int, ib: int) -> float:
            if ia == ib:
                return exact_w[ia]
            if is_break[ia] or is_break[ib]:
                return 0.0  # distinct breaks, or break vs sentence
            pair = (ia, ib) if ia < ib else (ib, ia)
            w = pair_cache.get(pair)
            if w is None:
                w = self._sentence_weight(reps[ia], reps[ib])
                pair_cache[pair] = w
            return w

        if self.options.use_anchors:
            pairs = anchored_lcs_pairs(a_ids, b_ids, pair_weight,
                                       min_anchor_weight=1.0)
        else:
            pairs = weighted_lcs_pairs(a_ids, b_ids, pair_weight)
        # Ids are their own keys, so canonicalization needs no key fn.
        return canonicalize_pairs(a_ids, b_ids, pairs)


def _token_identity(token: Token) -> Tuple:
    """The hashable identity weights are keyed on.  The leading kind
    flag keeps a break markup distinct from a one-item sentence whose
    decoded text happens to equal the break's normalized form."""
    return (isinstance(token, BreakToken), token.key)


def match_tokens(
    old_tokens: Sequence[Token],
    new_tokens: Sequence[Token],
    options: HtmlDiffOptions = None,
    matcher: TokenMatcher = None,
) -> List[Tuple[int, int, float]]:
    """The heaviest common subsequence of two token streams.

    Returns (old_index, new_index, weight) triples in increasing order.
    """
    if matcher is None:
        matcher = TokenMatcher(options)
    return matcher.match(old_tokens, new_tokens)
