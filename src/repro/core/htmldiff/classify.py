"""From token matching to common/old/new classification.

Paper Section 5.2: "The comparison algorithm outlined above yields a
mapping from the tokens of the old document to the tokens of the new
document.  Tokens that have a mapping are termed 'common'; tokens that
are in the old (new) document but have no counterpart in the new (old)
are 'old' ('new')."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from .matcher import TokenMatcher, match_tokens
from .options import HtmlDiffOptions
from .tokens import SentenceToken, Token

__all__ = ["EntryClass", "DiffEntry", "ClassifiedDiff", "classify_documents"]


class EntryClass(Enum):
    """The paper's three token fates: common, old-only, new-only."""

    COMMON = "common"
    OLD = "old"
    NEW = "new"


@dataclass
class DiffEntry:
    """One step of the interleaved walk over both documents.

    COMMON entries carry both tokens (they may differ in detail when the
    sentence match was fuzzy); OLD carries only ``old_token``; NEW only
    ``new_token``.
    """

    cls: EntryClass
    old_token: Optional[Token] = None
    new_token: Optional[Token] = None
    weight: float = 0.0

    @property
    def is_fuzzy_common(self) -> bool:
        """A matched sentence pair whose contents are not identical —
        the case where intra-sentence refinement highlights the edits."""
        if self.cls is not EntryClass.COMMON:
            return False
        if not isinstance(self.old_token, SentenceToken):
            return False
        return self.old_token.key != self.new_token.key


@dataclass
class ClassifiedDiff:
    """The complete classification plus summary statistics."""

    entries: List[DiffEntry]
    old_count: int
    new_count: int

    @property
    def common_entries(self) -> int:
        return sum(1 for e in self.entries if e.cls is EntryClass.COMMON)

    @property
    def old_entries(self) -> int:
        return sum(1 for e in self.entries if e.cls is EntryClass.OLD)

    @property
    def new_entries(self) -> int:
        return sum(1 for e in self.entries if e.cls is EntryClass.NEW)

    @property
    def changed_entries(self) -> int:
        return self.old_entries + self.new_entries

    @property
    def identical(self) -> bool:
        """No old/new tokens and no fuzzy matches: nothing changed."""
        return self.changed_entries == 0 and not any(
            e.is_fuzzy_common for e in self.entries
        )

    @property
    def change_density(self) -> float:
        """Fraction of entries carrying a change — old, new, or fuzzily
        matched (Section 5.3's "changes too numerous to display"
        metric)."""
        total = len(self.entries)
        if total == 0:
            return 0.0
        changed = self.changed_entries + sum(
            1 for e in self.entries if e.is_fuzzy_common
        )
        return changed / total

    @property
    def difference_count(self) -> int:
        """Number of contiguous changed regions (arrow count)."""
        count = 0
        in_change = False
        for entry in self.entries:
            changed = entry.cls is not EntryClass.COMMON or entry.is_fuzzy_common
            if changed and not in_change:
                count += 1
            in_change = changed
        return count


def classify_documents(
    old_tokens: Sequence[Token],
    new_tokens: Sequence[Token],
    options: HtmlDiffOptions = None,
    matcher: TokenMatcher = None,
) -> ClassifiedDiff:
    """Match the token streams and interleave them into diff entries."""
    matches = match_tokens(old_tokens, new_tokens, options=options, matcher=matcher)
    entries: List[DiffEntry] = []
    old_pos = new_pos = 0
    for i, j, weight in matches:
        while old_pos < i:
            entries.append(DiffEntry(EntryClass.OLD, old_token=old_tokens[old_pos]))
            old_pos += 1
        while new_pos < j:
            entries.append(DiffEntry(EntryClass.NEW, new_token=new_tokens[new_pos]))
            new_pos += 1
        entries.append(
            DiffEntry(
                EntryClass.COMMON,
                old_token=old_tokens[i],
                new_token=new_tokens[j],
                weight=weight,
            )
        )
        old_pos, new_pos = i + 1, j + 1
    while old_pos < len(old_tokens):
        entries.append(DiffEntry(EntryClass.OLD, old_token=old_tokens[old_pos]))
        old_pos += 1
    while new_pos < len(new_tokens):
        entries.append(DiffEntry(EntryClass.NEW, new_token=new_tokens[new_pos]))
        new_pos += 1
    return ClassifiedDiff(
        entries=entries,
        old_count=len(old_tokens),
        new_count=len(new_tokens),
    )
