"""HtmlDiff: automatic comparison of HTML pages (paper Section 5).

The pipeline: :func:`tokenize_document` turns HTML into sentences and
sentence-breaking markups; :class:`TokenMatcher` scores pairs (exact
for breaks, two-step fuzzy for sentences); the weighted Hirschberg LCS
finds the heaviest common subsequence; :func:`classify_documents` labels
tokens common/old/new; :class:`MergedPageRenderer` emits the marked-up
page.  :func:`html_diff` runs the whole thing.
"""

from .api import HtmlDiffResult, html_diff
from .classify import ClassifiedDiff, DiffEntry, EntryClass, classify_documents
from .markup import MergedPageRenderer, render_sentence_source
from .matcher import TokenMatcher, match_tokens
from .options import HtmlDiffOptions, PresentationMode
from .tokenizer import tokenize_document, tokens_from_nodes
from .tokens import BreakToken, InlineMarkup, SentenceToken, Token, Word
from .webaware import (
    EntityChange,
    EntityChecksumStore,
    WebAwareDiffer,
    WebAwareResult,
)

__all__ = [
    "HtmlDiffResult",
    "html_diff",
    "ClassifiedDiff",
    "DiffEntry",
    "EntryClass",
    "classify_documents",
    "MergedPageRenderer",
    "render_sentence_source",
    "TokenMatcher",
    "match_tokens",
    "HtmlDiffOptions",
    "PresentationMode",
    "tokenize_document",
    "tokens_from_nodes",
    "BreakToken",
    "InlineMarkup",
    "SentenceToken",
    "Token",
    "Word",
    "EntityChange",
    "EntityChecksumStore",
    "WebAwareDiffer",
    "WebAwareResult",
]
