"""Tunable knobs of HtmlDiff.

The paper leaves two thresholds symbolic ("sufficiently close" sentence
lengths, a "sufficiently large" ``2W/L`` percentage) and describes
several presentation variants; all of that is parameterized here so the
ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, replace
from enum import Enum

__all__ = ["PresentationMode", "HtmlDiffOptions"]


class PresentationMode(Enum):
    """The Section 5.2 presentation alternatives.

    Side-by-side is absent by design: "there is no good mechanism in
    place with current HTML and browser technology that allows such
    synchronization."
    """

    #: Default: one page with common, old (struck out) and new
    #: (emphasized) material, arrows chained through the differences.
    MERGED = "merged"
    #: "Show only differences (old and new) and eliminate the common
    #: part (as done in UNIX diff)."
    ONLY_DIFFERENCES = "only-differences"
    #: "By reversing the sense of 'old' and 'new' one can create a
    #: merged page with the old markups intact and the new deleted."
    MERGED_REVERSED = "merged-reversed"
    #: "A more Draconian option would be to leave out all old material
    #: ... the merged page is simply the most recent page plus some
    #: markups to point to the new material."
    NEW_ONLY = "new-only"


@dataclass
class HtmlDiffOptions:
    """Comparison and presentation parameters."""

    # ---- comparison (Section 5.1) ------------------------------------
    #: Step 1 of sentence matching: lengths are "sufficiently close"
    #: when min(l1, l2) >= length_ratio * max(l1, l2).
    length_ratio: float = 0.5
    #: Step 2: sentences match when 2W / L >= match_threshold.
    match_threshold: float = 0.5
    #: Disable the length pre-filter (ablation S4: it is purely a speed
    #: optimization and must not change who matches... except at the
    #: margin, which the bench quantifies).
    use_length_prefilter: bool = True

    # ---- fast path (the "several speed optimizations") ---------------
    #: Anchor decomposition: commit to sentence tokens unique in both
    #: streams and run the quadratic core only between anchors.
    use_anchors: bool = True
    #: Bag-of-items upper bound: reject a sentence pair when even the
    #: multiset intersection of its content items cannot clear
    #: ``match_threshold``, skipping the inner word-level LCS.
    use_upper_bound_prefilter: bool = True
    #: Intern tokens to small ids before the LCS so the per-DP-cell
    #: weight callback is an integer compare plus an int-pair memo
    #: (break tokens never pay the sentence-matching machinery).
    use_exact_fast_lane: bool = True
    #: Bound on the matcher's per-pair weight memo (entries; oldest
    #: evicted first).  0 means unbounded.
    matcher_cache_size: int = 65536

    # ---- presentation (Section 5.2) ----------------------------------
    mode: PresentationMode = PresentationMode.MERGED
    #: Highlight markup for additions; the paper settles on
    #: <STRONG><I> for lack of color support.
    new_open: str = "<STRONG><I>"
    new_close: str = "</I></STRONG>"
    #: Deletions in struck-out font, "rarely used in HTML found on the W3".
    old_open: str = "<STRIKE>"
    old_close: str = "</STRIKE>"
    #: Arrow images chained through the differences.
    old_arrow_src: str = "/aide-icons/old-arrow.gif"
    new_arrow_src: str = "/aide-icons/new-arrow.gif"
    #: Anchor-name prefix for the difference chain.
    anchor_prefix: str = "aidediff"
    #: Insert the banner with the link to the first difference.
    banner: bool = True

    # ---- density (Section 5.3) ---------------------------------------
    #: When the fraction of changed tokens exceeds this, the merged page
    #: would be unreadable ("if every other line were changed...").
    density_threshold: float = 0.75
    #: What to do above the threshold: "banner-only" (emit the new page
    #: with a banner saying changes were too pervasive) or "merge"
    #: (merge anyway).
    density_fallback: str = "banner-only"

    # ---- intra-sentence refinement -----------------------------------
    #: For fuzzily matched sentences, additionally highlight the words
    #: that changed within the sentence (word-level diff).  Changes to
    #: non-content-defining markups stay unhighlighted, per the paper.
    refine_matched_sentences: bool = True
    #: Section 5.3: "methods for varying the degree to which old and
    #: new text can be interspersed" — when word-level refinement would
    #: alternate between struck and emphasized runs more than this many
    #: times within one sentence, fall back to whole-sentence
    #: old-then-new rendering ("the mixture of unrelated struck-out and
    #: emphasized text would be muddled").  0 disables the limit.
    max_interleave: int = 6

    def validate(self) -> None:
        if not 0.0 <= self.length_ratio <= 1.0:
            raise ValueError("length_ratio must be within [0, 1]")
        if not 0.0 <= self.match_threshold <= 1.0:
            raise ValueError("match_threshold must be within [0, 1]")
        if not 0.0 <= self.density_threshold <= 1.0:
            raise ValueError("density_threshold must be within [0, 1]")
        if self.density_fallback not in ("banner-only", "merge"):
            raise ValueError("density_fallback must be banner-only or merge")
        if self.matcher_cache_size < 0:
            raise ValueError("matcher_cache_size must be >= 0")

    def reference(self) -> "HtmlDiffOptions":
        """A copy with every fast-path layer disabled — the unoptimized
        comparison the differential tests and benchmarks measure
        against."""
        return replace(
            self,
            use_anchors=False,
            use_upper_bound_prefilter=False,
            use_exact_fast_lane=False,
        )

    def cache_key(self) -> tuple:
        """Hashable identity for output caching: two option sets with
        equal keys produce byte-identical HtmlDiff output for the same
        inputs (fast-path toggles are included deliberately — they are
        *supposed* to be output-neutral, but a cache must not bake that
        assumption in)."""
        return astuple(self)
