"""HTML document → HtmlDiff token sequence.

The lexical pass of Section 5.1: the node stream from
:mod:`repro.html.lexer` is regrouped into sentences and
sentence-breaking markups.  Comments and declarations carry no content
and are dropped from the token stream (they reappear only via the
new document's rendering of unchanged regions).

Inside ``<PRE>`` each line becomes one single-word sentence so that
layout edits in preformatted blocks are detected (whitespace is content
there).
"""

from __future__ import annotations

import re
from typing import List

from ...html.entities import decode_entities
from ...html.lexer import Node, Tag, Text, tokenize_html
from ...html.model import (
    PRESERVED_WHITESPACE_TAGS,
    is_content_defining,
    is_sentence_breaking,
)
from ...html.repair import repair_nodes
from .tokens import BreakToken, InlineMarkup, SentenceItem, SentenceToken, Word

__all__ = ["tokenize_document", "tokens_from_nodes"]

# Sentence-final punctuation followed by whitespace ends a sentence.
_SENTENCE_END_RE = re.compile(r"((?<=[.!?])[\"')\]]*)(\s+)")
_WS_RE = re.compile(r"\s+")


class _Builder:
    """Accumulates sentence items and flushes completed tokens."""

    def __init__(self) -> None:
        self.tokens: List = []
        self._items: List[SentenceItem] = []
        self._preformatted = False

    def flush(self) -> None:
        if self._items:
            self.tokens.append(
                SentenceToken(items=tuple(self._items),
                              preformatted=self._preformatted)
            )
            self._items = []

    def add_word(self, text: str) -> None:
        self._items.append(Word(text))

    def add_markup(self, tag: Tag) -> None:
        self._items.append(
            InlineMarkup(
                normalized=tag.normalized,
                raw=tag.raw or tag.normalized,
                content_defining=is_content_defining(tag),
            )
        )

    def add_break(self, tag: Tag) -> None:
        self.flush()
        self.tokens.append(BreakToken(tag=tag, normalized=tag.normalized))

    def enter_preformatted(self) -> None:
        self.flush()
        self._preformatted = True

    def leave_preformatted(self) -> None:
        self.flush()
        self._preformatted = False

    def add_text(self, data: str) -> None:
        if self._preformatted:
            self._add_preformatted_text(data)
        else:
            self._add_flowing_text(data)

    def _add_preformatted_text(self, data: str) -> None:
        lines = decode_entities(data).split("\n")
        for index, line in enumerate(lines):
            if index > 0:
                self.flush()  # each PRE line is its own sentence
            if line.strip():
                self._items.append(Word(line))

    def _add_flowing_text(self, data: str) -> None:
        decoded = decode_entities(data)
        # Split while keeping track of which gaps end a sentence.
        pos = 0
        for match in _SENTENCE_END_RE.finditer(decoded):
            piece = decoded[pos:match.end(1)]
            for word in _WS_RE.split(piece):
                if word:
                    self.add_word(word)
            self.flush()
            pos = match.end()
        for word in _WS_RE.split(decoded[pos:]):
            if word:
                self.add_word(word)


def tokens_from_nodes(nodes: List[Node]) -> List:
    """Token sequence from an (already repaired) node stream."""
    builder = _Builder()
    pre_depth = 0
    for node in nodes:
        if isinstance(node, Tag):
            if node.name in PRESERVED_WHITESPACE_TAGS:
                if node.closing:
                    pre_depth = max(0, pre_depth - 1)
                    builder.add_break(node)
                    if pre_depth == 0:
                        builder.leave_preformatted()
                    continue
                builder.add_break(node)
                pre_depth += 1
                builder.enter_preformatted()
                continue
            if is_sentence_breaking(node):
                builder.add_break(node)
            else:
                builder.add_markup(node)
        elif isinstance(node, Text):
            builder.add_text(node.data)
        # Comments and declarations are invisible to comparison.
    builder.flush()
    return builder.tokens


def tokenize_document(source: str, budget=None) -> List:
    """Lex, repair, and tokenize an HTML document.

    ``budget`` (an ``HtmlBudget`` from ``repro.web.guards``) threads
    the hardening caps through the lex and repair passes; ``None``
    keeps the legacy unbounded behavior.
    """
    return tokens_from_nodes(
        repair_nodes(tokenize_html(source, budget=budget), budget=budget)
    )
