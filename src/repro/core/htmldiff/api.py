"""The public HtmlDiff entry point.

>>> from repro.core.htmldiff import html_diff
>>> result = html_diff("<P>old text.</P>", "<P>new text.</P>")
>>> result.identical
False
>>> "<STRIKE>" in result.html and "<STRONG><I>" in result.html
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...obs import NOOP as NOOP_OBS
from .classify import ClassifiedDiff, DiffEntry, EntryClass, classify_documents
from .markup import MergedPageRenderer
from .matcher import TokenMatcher
from .options import HtmlDiffOptions, PresentationMode
from .tokenizer import tokenize_document
from .tokens import Token

__all__ = ["HtmlDiffResult", "html_diff"]


@dataclass
class HtmlDiffResult:
    """Everything HtmlDiff produces for one comparison."""

    #: The marked-up page in the requested presentation mode.
    html: str
    #: The classification (entries + statistics) behind the page.
    diff: ClassifiedDiff
    #: True when the density fallback suppressed the merge (Section
    #: 5.3: "changes... so pervasive as to make the resulting merged
    #: HTML unreadable").
    density_suppressed: bool = False
    #: Matcher instrumentation at the time this result was produced:
    #: memo cache size/limit/evictions, prefilter and upper-bound
    #: rejections, inner LCS runs, exact-lane hits.
    matcher_stats: Dict[str, int] = field(default_factory=dict)
    #: True when a hardening work budget forced the coarse line-diff
    #: path instead of the quadratic sentence comparator.
    degraded: bool = False
    #: Human-readable reason for the degrade (empty when not degraded).
    degrade_reason: str = ""

    @property
    def identical(self) -> bool:
        return self.diff.identical

    @property
    def difference_count(self) -> int:
        return self.diff.difference_count

    @property
    def change_density(self) -> float:
        return self.diff.change_density


def html_diff(
    old_html: str,
    new_html: str,
    options: Optional[HtmlDiffOptions] = None,
    matcher: Optional[TokenMatcher] = None,
    obs=None,
    budget=None,
) -> HtmlDiffResult:
    """Compare two HTML documents and produce a marked-up page.

    ``options`` selects the presentation mode and the comparison
    thresholds; ``matcher`` may be supplied to share a memoization
    cache (and its instrumentation) across calls.  ``obs`` (an
    :class:`repro.obs.Observability`) gets one span per phase —
    tokenize, classify, render — plus invocation/token counters.

    ``budget`` (an ``HtmlBudget`` from ``repro.web.guards``) threads
    the hardening caps through tokenization — markup bombs raise their
    ``ContentGuardError`` — and bounds the comparator's work: when
    ``len(old) * len(new)`` tokens exceed the work cap, the quadratic
    sentence matcher is skipped in favor of a linear coarse line diff
    (``degraded=True`` on the result) instead of hanging.
    """
    options = options or HtmlDiffOptions()
    options.validate()
    if matcher is None:
        matcher = TokenMatcher(options)
    if obs is None:
        obs = NOOP_OBS

    if options.mode is PresentationMode.MERGED_REVERSED:
        # "By reversing the sense of 'old' and 'new' one can create a
        # merged page with the old markups intact and the new deleted."
        old_html, new_html = new_html, old_html

    obs.counter("htmldiff.invocations").inc()
    with obs.span("htmldiff.tokenize") as span:
        # Each document gets a fresh meter: the caps are per document,
        # not per comparison.
        old_tokens: List[Token] = tokenize_document(
            old_html, budget=budget.fork() if budget is not None else None)
        new_tokens: List[Token] = tokenize_document(
            new_html, budget=budget.fork() if budget is not None else None)
        span.set(old_tokens=len(old_tokens), new_tokens=len(new_tokens))
    obs.counter("htmldiff.tokens").inc(len(old_tokens) + len(new_tokens))

    if budget is not None and budget.over_work(len(old_tokens), len(new_tokens)):
        obs.counter("htmldiff.degraded").inc()
        reason = (
            f"diff work {len(old_tokens)}x{len(new_tokens)} tokens "
            f"exceeds the {budget.max_work}-unit budget"
        )
        return _coarse_line_diff(old_html, new_html, options, matcher, reason)
    with obs.span("htmldiff.classify") as span:
        diff = classify_documents(old_tokens, new_tokens, matcher=matcher)
        span.set(differences=diff.difference_count,
                 identical=diff.identical)
    renderer = MergedPageRenderer(options)

    density_suppressed = False
    note = ""
    if (
        not diff.identical
        and diff.change_density > options.density_threshold
        and options.density_fallback == "banner-only"
        and options.mode in (PresentationMode.MERGED, PresentationMode.MERGED_REVERSED)
    ):
        # Too pervasive to interleave meaningfully: show the new page
        # with a banner explaining why there are no inline markups.
        density_suppressed = True
        percent = int(round(diff.change_density * 100))
        note = (
            f"Changes are too pervasive to display inline "
            f"({percent}% of the page changed); showing the newer "
            "version unmarked."
        )
        from ...html.repair import repair_nodes
        from ...html.serializer import serialize_nodes
        from ...html.lexer import tokenize_html as _lex

        repaired_new = serialize_nodes(repair_nodes(_lex(new_html)))
        body = renderer._insert_banner(repaired_new, renderer._banner(diff, note))
        obs.counter("htmldiff.density_suppressed").inc()
        return HtmlDiffResult(html=body, diff=diff, density_suppressed=True,
                              matcher_stats=matcher.stats())

    with obs.span("htmldiff.render", mode=options.mode.value) as span:
        if options.mode in (PresentationMode.MERGED, PresentationMode.MERGED_REVERSED):
            html = renderer.render_merged(diff, note)
        elif options.mode is PresentationMode.ONLY_DIFFERENCES:
            html = renderer.render_only_differences(diff, note)
        elif options.mode is PresentationMode.NEW_ONLY:
            html = renderer.render_new_only(diff, note)
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown presentation mode: {options.mode}")
        span.set(bytes=len(html))
    return HtmlDiffResult(html=html, diff=diff,
                          density_suppressed=density_suppressed,
                          matcher_stats=matcher.stats())


def _coarse_line_diff(
    old_html: str,
    new_html: str,
    options: HtmlDiffOptions,
    matcher: TokenMatcher,
    reason: str,
) -> HtmlDiffResult:
    """Linear fallback when the sentence comparator would bust its
    work budget.

    A multiset comparison of source lines: each new-document line is
    either matched against an unconsumed identical old line (common) or
    shown as added; old lines never matched are shown as removed.  O(n)
    time and memory, deterministic, and honest about what changed — at
    line granularity rather than sentence granularity.
    """
    from ...html.entities import encode_entities

    old_lines = old_html.split("\n")
    new_lines = new_html.split("\n")

    from collections import Counter

    available = Counter(old_lines)
    consumed: Counter = Counter()
    entries: List[DiffEntry] = []
    shown: List[str] = []
    for line in new_lines:
        if consumed[line] < available[line]:
            consumed[line] += 1
            entries.append(DiffEntry(EntryClass.COMMON))
            shown.append("  " + encode_entities(line))
        else:
            entries.append(DiffEntry(EntryClass.NEW))
            shown.append("+ " + encode_entities(line))
    removed: List[str] = []
    seen: Counter = Counter()
    for line in old_lines:
        if seen[line] < consumed[line]:
            seen[line] += 1
        else:
            removed.append(line)
    for line in removed:
        entries.append(DiffEntry(EntryClass.OLD))

    diff = ClassifiedDiff(
        entries=entries, old_count=len(old_lines), new_count=len(new_lines)
    )
    renderer = MergedPageRenderer(options)
    note = f"Showing a coarse line diff: {reason}."
    parts = ["<PRE>", "\n".join(shown), "</PRE>"]
    if removed:
        parts.append("<P><STRIKE>Removed lines:</STRIKE></P>")
        parts.append("<PRE><STRIKE>")
        parts.append("\n".join("- " + encode_entities(line) for line in removed))
        parts.append("</STRIKE></PRE>")
    body = renderer._insert_banner(
        "\n".join(parts), renderer._banner(diff, note)
    )
    return HtmlDiffResult(
        html=body,
        diff=diff,
        matcher_stats=matcher.stats(),
        degraded=True,
        degrade_reason=reason,
    )
