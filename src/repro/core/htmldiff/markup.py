"""Merged-page rendering: Section 5.2's presentation machinery.

The merged page summarizes common, old, and new material in one
document:

* a banner at the top links to the first difference;
* each contiguous changed region gets a small arrow image that is an
  internal hypertext reference to the *next* difference, so the user
  can traverse the chain; the last arrow returns to the banner;
* old text appears struck out (``<STRIKE>``), new text in
  ``<STRONG><I>``;
* **old markups are eliminated** — "we currently deal with the
  syntactic/semantic problem of merging by eliminating all old markups
  from the merged page", so deleted hypertext references and images do
  not appear (their anchor text still does, struck out);
* fuzzily matched sentences are refined word-by-word, but changes to
  non-content-defining markups are *not* highlighted (the changed-URL
  example: the arrow points at the anchor, the text keeps its font).
"""

from __future__ import annotations

from typing import List, Optional

from ...html.entities import encode_entities
from .classify import ClassifiedDiff, DiffEntry, EntryClass
from .options import HtmlDiffOptions
from .tokens import BreakToken, SentenceToken, Word

__all__ = ["MergedPageRenderer", "render_sentence_source"]


def render_sentence_source(sentence: SentenceToken) -> str:
    """A sentence re-emitted as HTML: markups raw, words re-escaped."""
    if sentence.preformatted:
        return "\n".join(
            encode_entities(item.text) if isinstance(item, Word) else item.raw
            for item in sentence.items
        )
    return " ".join(
        encode_entities(item.text) if isinstance(item, Word) else item.raw
        for item in sentence.items
    )


def _render_words_only(sentence: SentenceToken) -> str:
    """A sentence with every markup stripped (how OLD text renders)."""
    joiner = "\n" if sentence.preformatted else " "
    return joiner.join(
        encode_entities(item.text)
        for item in sentence.items
        if isinstance(item, Word)
    )


class MergedPageRenderer:
    """Renders a classified diff in one of the merged-page flavours."""

    def __init__(self, options: Optional[HtmlDiffOptions] = None) -> None:
        self.options = options or HtmlDiffOptions()

    # ------------------------------------------------------------------
    # Region grouping
    # ------------------------------------------------------------------
    @staticmethod
    def _is_changed(entry: DiffEntry) -> bool:
        return entry.cls is not EntryClass.COMMON or entry.is_fuzzy_common

    def _count_regions(self, diff: ClassifiedDiff) -> int:
        return diff.difference_count

    # ------------------------------------------------------------------
    # Arrows / banner
    # ------------------------------------------------------------------
    def _anchor(self, index: int) -> str:
        return f"{self.options.anchor_prefix}{index}"

    def _arrow(self, index: int, total: int, old_side: bool) -> str:
        """One arrow anchor: names this difference, links to the next.

        ``index`` is 1-based; the arrow after the last difference links
        back to the banner (anchor 0).
        """
        next_anchor = self._anchor(index + 1 if index < total else 0)
        src = self.options.old_arrow_src if old_side else self.options.new_arrow_src
        alt = "[old]" if old_side else "[new]"
        return (
            f'<A NAME="{self._anchor(index)}"></A>'
            f'<A HREF="#{next_anchor}">'
            f'<IMG SRC="{src}" ALT="{alt}" BORDER=0></A>'
        )

    def _banner(self, diff: ClassifiedDiff, note: str = "") -> str:
        total = self._count_regions(diff)
        if total == 0:
            summary = "The two versions are identical under comparison."
            link = ""
        else:
            noun = "difference" if total == 1 else "differences"
            summary = f"HtmlDiff found {total} {noun}."
            link = f' <A HREF="#{self._anchor(1)}">[First difference]</A>'
        note_html = f" {note}" if note else ""
        return (
            f'<A NAME="{self._anchor(0)}"></A>'
            "<P><B>AT&amp;T Internet Difference Engine</B> &#183; "
            f"{summary}{link}{note_html}</P><HR>\n"
        )

    # ------------------------------------------------------------------
    # Sentence rendering per class
    # ------------------------------------------------------------------
    def _render_old_sentence(self, sentence: SentenceToken) -> str:
        text = _render_words_only(sentence)
        if not text:
            return ""  # a markup-only old sentence vanishes entirely
        return f"{self.options.old_open}{text}{self.options.old_close}"

    def _render_new_sentence(self, sentence: SentenceToken) -> str:
        # New markups stay live; new words are emphasized.  Emphasis
        # wraps maximal word runs so markup nesting stays legal.
        return self._wrap_word_runs(sentence, highlight=True)

    def _render_common_sentence(self, entry: DiffEntry) -> str:
        if not entry.is_fuzzy_common or not self.options.refine_matched_sentences:
            return render_sentence_source(entry.new_token)
        refined = self._render_refined(entry.old_token, entry.new_token)
        limit = self.options.max_interleave
        if limit and self._alternations(refined) > limit:
            # Too muddled to intersperse (Section 5.3): show the whole
            # old sentence struck, then the whole new one, unrefined.
            old_part = self._render_old_sentence(entry.old_token)
            new_part = self._render_new_sentence(entry.new_token)
            return f"{old_part} {new_part}".strip()
        return refined

    def _alternations(self, rendered: str) -> int:
        """How many times the rendering switches between old-style and
        new-style runs — the interspersion degree of Section 5.3."""
        events = []
        pos = 0
        while True:
            old_at = rendered.find(self.options.old_open, pos)
            new_at = rendered.find(self.options.new_open, pos)
            if old_at == -1 and new_at == -1:
                break
            if new_at == -1 or (old_at != -1 and old_at < new_at):
                events.append("old")
                pos = old_at + len(self.options.old_open)
            else:
                events.append("new")
                pos = new_at + len(self.options.new_open)
        switches = sum(1 for a, b in zip(events, events[1:]) if a != b)
        return len(events) + switches

    def _wrap_word_runs(self, sentence: SentenceToken, highlight: bool) -> str:
        joiner = "\n" if sentence.preformatted else " "
        pieces: List[str] = []
        run: List[str] = []

        def _flush_run() -> None:
            if run:
                text = joiner.join(run)
                if highlight:
                    text = f"{self.options.new_open}{text}{self.options.new_close}"
                pieces.append(text)
                run.clear()

        for item in sentence.items:
            if isinstance(item, Word):
                run.append(encode_entities(item.text))
            else:
                _flush_run()
                pieces.append(item.raw)
        _flush_run()
        return joiner.join(pieces)

    def _render_refined(
        self, old: SentenceToken, new: SentenceToken
    ) -> str:
        """Word-level refinement of a fuzzily matched sentence pair.

        Common items render from the new side; new-only words are
        emphasized; old-only words are struck; old-only markups are
        eliminated; new-only markups render raw (content-defining ones
        are what the pointing arrow is about; <B>-class changes are
        deliberately not highlighted).
        """
        from ...diffcore.lcs import weighted_lcs_pairs
        from .matcher import _item_weight

        # Same weighting as the matcher, so the rendered alignment is
        # the one the match weight was computed from.
        matches = weighted_lcs_pairs(old.items, new.items, _item_weight)
        joiner = "\n" if new.preformatted else " "
        pieces: List[str] = []
        old_pos = new_pos = 0

        def _old_words(upto: int) -> None:
            nonlocal old_pos
            struck: List[str] = []
            while old_pos < upto:
                item = old.items[old_pos]
                if isinstance(item, Word):
                    struck.append(encode_entities(item.text))
                old_pos += 1
            if struck:
                pieces.append(
                    f"{self.options.old_open}{joiner.join(struck)}"
                    f"{self.options.old_close}"
                )

        def _new_items(upto: int) -> None:
            nonlocal new_pos
            added: List[str] = []

            def _flush_added() -> None:
                if added:
                    pieces.append(
                        f"{self.options.new_open}{joiner.join(added)}"
                        f"{self.options.new_close}"
                    )
                    added.clear()

            while new_pos < upto:
                item = new.items[new_pos]
                if isinstance(item, Word):
                    added.append(encode_entities(item.text))
                else:
                    _flush_added()
                    pieces.append(item.raw)
                new_pos += 1
            _flush_added()

        for i, j, _w in matches:
            _old_words(i)
            _new_items(j)
            item = new.items[j]
            pieces.append(
                encode_entities(item.text) if isinstance(item, Word) else item.raw
            )
            old_pos, new_pos = i + 1, j + 1
        _old_words(len(old.items))
        _new_items(len(new.items))
        return joiner.join(piece for piece in pieces if piece)

    # ------------------------------------------------------------------
    # Whole-page rendering
    # ------------------------------------------------------------------
    def render_merged(self, diff: ClassifiedDiff, note: str = "") -> str:
        """The default merged page (Figure 2's format)."""
        total = self._count_regions(diff)
        out: List[str] = []
        region_index = 0
        in_change = False
        arrow_pending_side: Optional[bool] = None

        for entry in diff.entries:
            changed = self._is_changed(entry)
            if changed and not in_change:
                region_index += 1
                arrow_pending_side = entry.cls is EntryClass.OLD
            if not changed and arrow_pending_side is not None:
                # The whole region rendered to nothing (e.g. only old
                # markups); emit a bare arrow so the chain stays intact.
                out.append(self._arrow(region_index, total, arrow_pending_side))
                arrow_pending_side = None
            in_change = changed

            rendered = self._render_entry(entry)
            if rendered is None:
                continue
            if changed and arrow_pending_side is not None:
                arrow = self._arrow(
                    region_index, total, old_side=arrow_pending_side
                )
                rendered = f"{arrow} {rendered}" if rendered else arrow
                arrow_pending_side = None
            out.append(rendered)
        if arrow_pending_side is not None:
            out.append(self._arrow(region_index, total, arrow_pending_side))

        body = self._join(out)
        if self.options.banner:
            body = self._insert_banner(body, self._banner(diff, note))
        return body

    def render_new_only(self, diff: ClassifiedDiff, note: str = "") -> str:
        """The Draconian option: the new page plus pointers to new
        material; no old content at all, hence no syntactic risk."""
        regions = 0
        in_new = False
        for entry in diff.entries:
            is_new = entry.cls is EntryClass.NEW
            if is_new and not in_new:
                regions += 1
            in_new = is_new

        out: List[str] = []
        index = 0
        in_new = False
        for entry in diff.entries:
            if entry.cls is EntryClass.OLD:
                in_new = False
                continue
            is_new = entry.cls is EntryClass.NEW
            rendered = (
                render_sentence_source(entry.new_token)
                if isinstance(entry.new_token, SentenceToken)
                else entry.new_token.tag.raw or entry.new_token.normalized
            )
            if is_new and not in_new:
                index += 1
                arrow = self._arrow(index, regions, old_side=False)
                rendered = f"{arrow} {rendered}"
            in_new = is_new
            out.append(rendered)
        body = self._join(out)
        if self.options.banner:
            banner = self._banner_for_count(regions, note)
            body = self._insert_banner(body, banner)
        return body

    def render_only_differences(self, diff: ClassifiedDiff, note: str = "") -> str:
        """Differences without the common context (the UNIX-diff style).

        "especially useful for very large documents but can be
        confusing because of the loss of surrounding common context."
        """
        total = self._count_regions(diff)
        out: List[str] = []
        region_index = 0
        in_change = False
        arrow_side: Optional[bool] = None
        for entry in diff.entries:
            changed = self._is_changed(entry)
            if not changed:
                if arrow_side is not None:
                    # The region rendered to nothing (e.g. only old
                    # markups): still emit its anchor so the chain holds.
                    out.append(self._arrow(region_index, total, arrow_side))
                    arrow_side = None
                in_change = False
                continue
            if not in_change:
                region_index += 1
                arrow_side = entry.cls is EntryClass.OLD
                out.append("<HR>")
            in_change = True
            rendered = self._render_entry(entry)
            if rendered is None:
                continue
            if arrow_side is not None:
                arrow = self._arrow(region_index, total, old_side=arrow_side)
                rendered = f"{arrow} {rendered}" if rendered else arrow
                arrow_side = None
            out.append(rendered)
        if arrow_side is not None:
            out.append(self._arrow(region_index, total, arrow_side))
        body = self._join(out)
        banner = self._banner(diff, note)
        return (
            "<HTML><HEAD><TITLE>HtmlDiff: differences only</TITLE></HEAD>"
            f"<BODY>{banner}{body}</BODY></HTML>"
        )

    # ------------------------------------------------------------------
    def _render_entry(self, entry: DiffEntry) -> Optional[str]:
        if entry.cls is EntryClass.OLD:
            if isinstance(entry.old_token, BreakToken):
                return None  # old markups are eliminated
            rendered = self._render_old_sentence(entry.old_token)
            return rendered or None
        if entry.cls is EntryClass.NEW:
            if isinstance(entry.new_token, BreakToken):
                return entry.new_token.tag.raw or entry.new_token.normalized
            return self._render_new_sentence(entry.new_token)
        # COMMON
        if isinstance(entry.new_token, BreakToken):
            return entry.new_token.tag.raw or entry.new_token.normalized
        return self._render_common_sentence(entry)

    @staticmethod
    def _join(pieces: List[str]) -> str:
        return "\n".join(piece for piece in pieces if piece)

    def _banner_for_count(self, total: int, note: str = "") -> str:
        if total == 0:
            summary = "No new material."
            link = ""
        else:
            noun = "addition" if total == 1 else "additions"
            summary = f"HtmlDiff found {total} {noun}."
            link = f' <A HREF="#{self._anchor(1)}">[First]</A>'
        note_html = f" {note}" if note else ""
        return (
            f'<A NAME="{self._anchor(0)}"></A>'
            "<P><B>AT&amp;T Internet Difference Engine</B> &#183; "
            f"{summary}{link}{note_html}</P><HR>\n"
        )

    @staticmethod
    def _insert_banner(body: str, banner: str) -> str:
        """Splice the banner right after <BODY> when there is one."""
        lower = body.lower()
        idx = lower.find("<body")
        if idx != -1:
            end = body.find(">", idx)
            if end != -1:
                return body[: end + 1] + "\n" + banner + body[end + 1:]
        return banner + body
