"""Web-aware and version-aware comparison (paper Section 5.3).

"Currently, HtmlDiff is neither 'version-aware' nor 'web-aware'...  if
the contents of an image file are changed but the URL of the file does
not, then the URL in the page will not be flagged as changed.  To
support such comparison would require some sort of versioning of
referenced entities...  A cheaper alternative would be to store a
checksum of each entity and use the checksums to determine if something
has changed.  We are exploring how to efficiently perform such
'smarter' comparisons."  And from 8.3: "HtmlDiff could in turn be
invoked recursively".

This module implements the exploration:

* :class:`EntityChecksumStore` — the "cheaper alternative": one
  checksum per referenced entity, no full entity versioning;
* :class:`WebAwareDiffer` — runs ordinary HtmlDiff, then (a) checks
  every image whose markup did NOT change to see whether the bytes
  behind the unchanged URL did, and (b) recursively diffs referenced
  pages that live in a snapshot store, down to a depth limit.

The result extends the merged page with an addendum section listing
entity changes and nested page changes, each a link target.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ...html.entities import encode_entities
from ...html.lexer import Tag, tokenize_html
from ...web.client import UserAgent
from ...web.http import NetworkError
from ...web.url import join_url, parse_url
from .api import HtmlDiffResult, html_diff
from .options import HtmlDiffOptions

__all__ = ["EntityChecksumStore", "EntityChange", "WebAwareDiffer",
           "WebAwareResult"]


def _entity_checksum(body: str) -> str:
    return hashlib.md5(body.encode("utf-8", "replace")).hexdigest()


class EntityChecksumStore:
    """URL → checksum of the referenced entity's last-seen content.

    "Full versioning of all entities... would dramatically increase
    storage requirements" — this store keeps 32 bytes per entity.
    """

    def __init__(self) -> None:
        self._checksums: Dict[str, str] = {}

    def update(self, url: str, body: str) -> bool:
        """Record the entity's current content; True when it changed
        relative to the previously stored checksum."""
        key = str(parse_url(url).normalized())
        checksum = _entity_checksum(body)
        previous = self._checksums.get(key)
        self._checksums[key] = checksum
        return previous is not None and previous != checksum

    def known(self, url: str) -> bool:
        return str(parse_url(url).normalized()) in self._checksums

    def __len__(self) -> int:
        return len(self._checksums)


@dataclass
class EntityChange:
    """A referenced entity whose bytes changed behind a stable URL."""

    url: str
    kind: str  # "image" or "page"
    detail: str = ""


@dataclass
class WebAwareResult:
    """Ordinary HtmlDiff output plus the web-aware findings."""

    page: HtmlDiffResult
    entity_changes: List[EntityChange] = field(default_factory=list)
    nested: Dict[str, HtmlDiffResult] = field(default_factory=dict)
    html: str = ""

    @property
    def total_changes(self) -> int:
        nested_changed = sum(
            1 for result in self.nested.values() if not result.identical
        )
        return (self.page.difference_count + len(self.entity_changes)
                + nested_changed)


def _image_urls(html: str, base_url: str) -> List[str]:
    base = parse_url(base_url).normalized()
    seen: Set[str] = set()
    out: List[str] = []
    for node in tokenize_html(html):
        if isinstance(node, Tag) and node.name == "IMG" and not node.closing:
            src = node.attr("SRC")
            if not src:
                continue
            resolved = str(join_url(base, src).normalized())
            if resolved not in seen:
                seen.add(resolved)
                out.append(resolved)
    return out


def _link_urls(html: str, base_url: str) -> List[str]:
    base = parse_url(base_url).normalized()
    seen: Set[str] = set()
    out: List[str] = []
    for node in tokenize_html(html):
        if isinstance(node, Tag) and node.name == "A" and not node.closing:
            href = node.attr("HREF")
            if not href:
                continue
            resolved = join_url(base, href).normalized()
            if resolved.scheme != "http":
                continue
            text = str(resolved)
            if text not in seen:
                seen.add(text)
                out.append(text)
    return out


class WebAwareDiffer:
    """HtmlDiff plus entity checksums plus recursive page diffs."""

    def __init__(
        self,
        agent: UserAgent,
        snapshot_store=None,
        options: Optional[HtmlDiffOptions] = None,
        max_depth: int = 1,
        entity_store: Optional[EntityChecksumStore] = None,
    ) -> None:
        self.agent = agent
        self.snapshot_store = snapshot_store
        self.options = options
        self.max_depth = max_depth
        self.entities = entity_store or EntityChecksumStore()
        self.entity_fetches = 0

    # ------------------------------------------------------------------
    def prime_entities(self, html: str, base_url: str) -> int:
        """Record checksums for every entity a page references.

        Call when a page is first snapshotted, so later diffs have a
        baseline.  Returns the number of entities recorded.
        """
        recorded = 0
        for url in _image_urls(html, base_url):
            body = self._fetch_quiet(url)
            if body is not None:
                self.entities.update(url, body)
                recorded += 1
        return recorded

    def _fetch_quiet(self, url: str) -> Optional[str]:
        try:
            result = self.agent.get(url)
        except NetworkError:
            return None
        if not result.response.ok:
            return None
        self.entity_fetches += 1
        return result.response.body

    # ------------------------------------------------------------------
    def diff(
        self,
        old_html: str,
        new_html: str,
        base_url: str,
        _depth: int = 0,
    ) -> WebAwareResult:
        """Compare two page versions, then look *through* the page."""
        page_result = html_diff(old_html, new_html, options=self.options)
        result = WebAwareResult(page=page_result)

        # (a) entity checksums: images referenced by BOTH versions under
        # the same URL — the case plain HtmlDiff cannot see.
        old_images = set(_image_urls(old_html, base_url))
        for url in _image_urls(new_html, base_url):
            if url not in old_images:
                continue  # markup changed; plain HtmlDiff already flags it
            body = self._fetch_quiet(url)
            if body is None:
                continue
            if self.entities.update(url, body):
                result.entity_changes.append(
                    EntityChange(url=url, kind="image",
                                 detail="content changed, URL unchanged")
                )

        # (b) recursion: referenced pages with history in the snapshot
        # store get their own HtmlDiff, one level down by default.
        if self.snapshot_store is not None and _depth < self.max_depth:
            old_links = set(_link_urls(old_html, base_url))
            for url in _link_urls(new_html, base_url):
                if url not in old_links:
                    continue
                archive = self.snapshot_store.archives.get(url)
                if archive is None or archive.revision_count < 2:
                    continue
                revisions = archive.revisions()
                sub_old = archive.checkout(revisions[-2].number)
                sub_new = archive.checkout(revisions[-1].number)
                result.nested[url] = html_diff(
                    sub_old, sub_new, options=self.options
                )

        result.html = self._render(result, base_url)
        return result

    # ------------------------------------------------------------------
    def _render(self, result: WebAwareResult, base_url: str) -> str:
        """The merged page plus the web-aware addendum."""
        addendum_rows: List[str] = []
        for change in result.entity_changes:
            addendum_rows.append(
                f'<LI><IMG SRC="{change.url}" ALT="[image]" HEIGHT=24> '
                f'<A HREF="{change.url}">{encode_entities(change.url)}</A> '
                f"&#183; {encode_entities(change.detail)}"
            )
        for url, nested in result.nested.items():
            if nested.identical:
                continue
            noun = ("difference" if nested.difference_count == 1
                    else "differences")
            addendum_rows.append(
                f'<LI><A HREF="{url}">{encode_entities(url)}</A> &#183; '
                f"referenced page changed "
                f"({nested.difference_count} {noun})"
            )
        if not addendum_rows:
            return result.page.html
        addendum = (
            "\n<HR><H2>Changes beyond this page</H2>"
            f"<UL>{''.join(addendum_rows)}</UL>"
        )
        return result.page.html + addendum
