"""HtmlDiff's token model.

Paper Section 5.1: "In HtmlDiff, a token is either a sentence-breaking
markup or a sentence, which consists of a sequence of words and
non-sentence-breaking markups."  Sentences are *not* recursive; their
elements are words (compared exactly) and inline markups (compared by
normalized form).  Sentence *length* counts only words and
content-defining markups — ``<B>`` and ``<I>`` are invisible to the
length metric and to the match weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from ...html.lexer import Tag

__all__ = ["Word", "InlineMarkup", "SentenceItem", "SentenceToken",
           "BreakToken", "Token"]


@dataclass(frozen=True)
class Word:
    """One word of raw text (entities decoded, whitespace-delimited)."""

    text: str

    @property
    def counts_toward_length(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class InlineMarkup:
    """A non-sentence-breaking markup inside a sentence.

    ``normalized`` is the comparison key (case/order/whitespace
    canonical); ``raw`` is what rendering emits; ``content_defining``
    decides whether it counts toward sentence length and whether a
    change to it is highlighted.
    """

    normalized: str
    raw: str
    content_defining: bool

    @property
    def counts_toward_length(self) -> bool:
        return self.content_defining

    def __eq__(self, other: object) -> bool:
        if isinstance(other, InlineMarkup):
            return self.normalized == other.normalized
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.normalized)

    def __str__(self) -> str:
        return self.raw


SentenceItem = Union[Word, InlineMarkup]


@dataclass(frozen=True)
class SentenceToken:
    """A sentence: the fuzzy-matchable unit of comparison."""

    items: Tuple[SentenceItem, ...]
    #: True when the sentence came from inside <PRE>: whitespace is
    #: content there and rendering must not re-flow it.
    preformatted: bool = False

    @property
    def length(self) -> int:
        """Paper: "the number of words and 'content-defining' markups
        such as <IMG> or <A> in a sentence.  Markups such as <B> or <I>
        are not counted."""
        return sum(1 for item in self.items if item.counts_toward_length)

    @property
    def key(self) -> Tuple:
        """Hashable identity used for weight memoization."""
        return tuple(
            item.text if isinstance(item, Word) else item.normalized
            for item in self.items
        )

    @property
    def words(self) -> Tuple[str, ...]:
        return tuple(item.text for item in self.items if isinstance(item, Word))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return " ".join(str(item) for item in self.items)


@dataclass(frozen=True)
class BreakToken:
    """A sentence-breaking markup: matches only identical break markups
    (modulo whitespace, case, and attribute reordering), weight 1."""

    tag: Tag = field(compare=False)
    normalized: str = ""

    @property
    def key(self) -> Tuple:
        return (self.normalized,)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.normalized


Token = Union[SentenceToken, BreakToken]
