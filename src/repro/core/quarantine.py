"""The poison-document dead-letter journal.

When a fetch trips a content guard the pipeline refuses the bytes —
the snapshot store rolls the check-in back, w3newer records a
QUARANTINED verdict — but throwing the evidence away would leave the
operator blind.  The :class:`QuarantineJournal` keeps the offending
bytes and the guard verdict per URL, so ``aide quarantine list`` can
show what tripped, ``aide quarantine retry`` can re-validate the
stored bytes against (possibly loosened) limits and release the
survivors, and ``aide quarantine purge`` can drop entries for good.

Persistence is an append-only JSONL file: :meth:`record` appends one
line per trip (cheap, crash-friendly — a torn tail line is skipped on
load), while ``retry``/``purge`` compact the file.  Everything is
deterministic: timestamps come from the caller's sim clock, entries
list in sorted-URL order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["QuarantineEntry", "QuarantineJournal"]


@dataclass
class QuarantineEntry:
    """One quarantined document: the verdict plus the evidence."""

    url: str
    guard: str
    detail: str
    body: str
    #: Sim-clock instant of the most recent trip.
    at: int = 0
    #: How many times this URL has tripped a guard.
    attempts: int = 1
    content_type: str = "text/html"

    def to_json(self) -> str:
        return json.dumps(
            {
                "url": self.url,
                "guard": self.guard,
                "detail": self.detail,
                "body": self.body,
                "at": self.at,
                "attempts": self.attempts,
                "content_type": self.content_type,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "QuarantineEntry":
        data = json.loads(line)
        return cls(
            url=data["url"],
            guard=data.get("guard", "content"),
            detail=data.get("detail", ""),
            body=data.get("body", ""),
            at=int(data.get("at", 0)),
            attempts=int(data.get("attempts", 1)),
            content_type=data.get("content_type", "text/html"),
        )


class QuarantineJournal:
    """URL-keyed dead letters, optionally persisted as JSONL."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._entries: Dict[str, QuarantineEntry] = {}
        if path is not None and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------------
    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = QuarantineEntry.from_json(line)
                except (ValueError, KeyError):
                    # A torn tail from a crash mid-append; later lines
                    # for the same URL supersede earlier ones anyway.
                    continue
                self._entries[entry.url] = entry

    def _append(self, entry: QuarantineEntry) -> None:
        if self.path is None:
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(entry.to_json() + "\n")

    def _rewrite(self) -> None:
        if self.path is None:
            return
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for url in sorted(self._entries):
                fh.write(self._entries[url].to_json() + "\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    def record(
        self,
        url: str,
        guard: str,
        detail: str,
        body: str,
        at: int = 0,
        content_type: str = "text/html",
    ) -> QuarantineEntry:
        """Note one guard trip; repeated trips accumulate ``attempts``."""
        existing = self._entries.get(url)
        if existing is not None:
            entry = QuarantineEntry(
                url=url, guard=guard, detail=detail, body=body, at=at,
                attempts=existing.attempts + 1, content_type=content_type,
            )
        else:
            entry = QuarantineEntry(
                url=url, guard=guard, detail=detail, body=body, at=at,
                content_type=content_type,
            )
        self._entries[url] = entry
        self._append(entry)
        return entry

    def get(self, url: str) -> Optional[QuarantineEntry]:
        return self._entries.get(url)

    def entries(self) -> List[QuarantineEntry]:
        return [self._entries[url] for url in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    # ------------------------------------------------------------------
    def purge(self, url: Optional[str] = None) -> int:
        """Drop one entry (or all of them); returns how many went."""
        if url is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            dropped = 1 if self._entries.pop(url, None) is not None else 0
        if dropped:
            self._rewrite()
        return dropped

    def retry(
        self, url: Optional[str] = None, limits=None
    ) -> Tuple[List[QuarantineEntry], List[Tuple[QuarantineEntry, str]]]:
        """Re-validate stored bytes; release entries that now pass.

        ``limits`` (a ``GuardLimits``) lets the operator loosen caps
        before retrying.  Returns ``(released, still_bad)`` where each
        still-bad item carries the fresh verdict text.  Released URLs
        leave the journal — their next crawl proceeds normally (the
        checker clears the backoff once a fetch is admitted).
        """
        from ..web.guards import ContentGuard, ContentGuardError, GuardLimits

        guard = ContentGuard(limits or GuardLimits())
        candidates = (
            self.entries() if url is None
            else [e for e in (self.get(url),) if e is not None]
        )
        released: List[QuarantineEntry] = []
        still_bad: List[Tuple[QuarantineEntry, str]] = []
        for entry in candidates:
            try:
                guard.admit_body(entry.url, entry.body, entry.content_type)
            except ContentGuardError as exc:
                still_bad.append((entry, str(exc)))
            else:
                released.append(entry)
                self._entries.pop(entry.url, None)
        if released:
            self._rewrite()
        return released, still_bad

    def stats(self) -> Dict[str, object]:
        by_guard: Dict[str, int] = {}
        for entry in self._entries.values():
            by_guard[entry.guard] = by_guard.get(entry.guard, 0) + 1
        return {
            "entries": len(self._entries),
            "by_guard": dict(sorted(by_guard.items())),
            "attempts": sum(e.attempts for e in self._entries.values()),
        }
