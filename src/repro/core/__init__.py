"""The paper's primary contribution: HtmlDiff, snapshot, and w3newer.

Each subpackage is one of the three AIDE tools (paper Sections 3-5);
the substrates they stand on live under ``repro.web``, ``repro.rcs``,
``repro.html``, and ``repro.diffcore``.
"""
