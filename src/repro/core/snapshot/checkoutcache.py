"""A shared LRU cache of checked-out revision texts.

The :class:`~repro.core.snapshot.diffcache.DiffCache` shares finished
HtmlDiff output; this cache sits one layer below it and shares the raw
RCS checkouts that *feed* HtmlDiff and the view/time-travel pages.  A
Diff link checks out two endpoints, a History page's view links and
``view_at`` requests re-read the same revisions — and a stored
revision's text is immutable, so one reconstruction can serve them all.

Entries are keyed ``(url, revision number)``.  Nothing ever needs
invalidation: a new check-in only appends a new head revision (a new
key), it never changes an existing one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["CheckoutCache"]


class CheckoutCache:
    """LRU cache of ``(url, revision) -> text``.

    ``capacity`` bounds the entry count; 0 disables caching entirely
    (every ``get`` misses, ``put`` is a no-op), keeping the store's
    call sites branch-free — the same contract as ``DiffCache``.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, url: str, revision: str) -> Optional[str]:
        entry = self._entries.get((url, revision))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((url, revision))
        self.hits += 1
        return entry

    def put(self, url: str, revision: str, text: str) -> None:
        if self.capacity == 0:
            return
        key = (url, revision)
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = text
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate_revision(self, url: str, revision: str) -> None:
        """Drop one entry.  The "nothing ever needs invalidation" rule
        has exactly one exception: a transaction rollback drops the head
        revision, and a later check-in may reuse its number with
        different text."""
        self._entries.pop((url, revision), None)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
