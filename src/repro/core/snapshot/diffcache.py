"""A shared LRU cache for HtmlDiff output.

Section 8.3's economy-of-scale argument: "many users who have seen
versions N and N+1 of a page could retrieve HtmlDiff(pageN, pageN+1)
with a single invocation".  The :class:`RequestCoalescer` already
merges *simultaneous* requests; this cache extends the sharing across
time — the diff of a stored version pair is immutable (RCS revisions
never change once checked in), so once computed it can be replayed for
every later requester until evicted.

Keys include the diff options: two users asking for different
presentation modes (or one benchmark comparing the fast path against
the reference path) must not share entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from ..htmldiff.api import HtmlDiffResult
from ..htmldiff.options import HtmlDiffOptions

__all__ = ["DiffCache"]


class DiffCache:
    """LRU cache of ``(url, rev_old, rev_new, options) -> HtmlDiffResult``.

    ``capacity`` bounds the entry count; 0 disables caching entirely
    (every ``get`` misses, ``put`` is a no-op), which keeps the store's
    call sites branch-free.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, HtmlDiffResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def make_key(
        url: str,
        rev_old: str,
        rev_new: str,
        options: Optional[HtmlDiffOptions],
    ) -> Hashable:
        """The identity of one diff request.

        Revisions are stringified (the store resolves them from several
        sources) and the options dataclass is flattened to a tuple so
        equal configurations hit regardless of object identity.
        """
        options_key: Tuple = options.cache_key() if options is not None else ()
        return (url, str(rev_old), str(rev_new), options_key)

    # ------------------------------------------------------------------
    def peek(self, key: Hashable) -> bool:
        """Non-mutating membership probe: would :meth:`get` hit?  (No
        LRU touch, no hit/miss accounting — the diff server's cost
        model asks without disturbing the cache's statistics.)"""
        return key in self._entries

    def get(self, key: Hashable) -> Optional[HtmlDiffResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, result: HtmlDiffResult) -> None:
        if self.capacity == 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = result
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate_url(self, url: str) -> int:
        """Drop every entry for ``url``; returns how many were dropped.

        Stored revision pairs are immutable, so ordinary operation
        never needs this — it exists for administrative deletion of a
        URL's archive.
        """
        doomed = [key for key in self._entries if key[0] == url]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
