"""Append-only check-in journal for the snapshot repository.

``save_store`` rewrites every ``,v`` file — O(total archive) per save,
which is what caps a transactional archive's write throughput under
load (the SiteStory finding).  The journal makes routine persistence
O(new data): each *new* revision since the last sync is appended as one
self-contained record, and a loader replays the records (in order,
through the ordinary ``checkin`` path, which is deterministic) on top
of the last compacted ``,v`` base to rebuild a byte-identical store.

Record shape, plain text like the rest of the repository::

    rev\t<quoted url>\t<revision>\t<date>\t<quoted author>
    <quoted log>
    <quoted text>

``@``-quoting is RCS's (payload wrapped in ``@...@``, literal ``@``
doubled), so a journal is browsable with ``cat`` exactly like a ``,v``
file.  Compaction = a full ``save_store`` rewrite followed by
truncating the journal.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["JournalRecord", "JournalError", "append_records",
           "read_journal", "clear_journal", "JOURNAL_NAME"]

JOURNAL_NAME = "journal.log"


class JournalError(ValueError):
    """The journal text is not a valid record stream."""


@dataclass(frozen=True)
class JournalRecord:
    """One checked-in revision, self-contained for replay."""

    url: str
    revision: str
    date: int
    author: str
    log: str
    text: str


def _quote(text: str) -> str:
    return "@" + text.replace("@", "@@") + "@"


def _serialize(record: JournalRecord) -> str:
    return "\n".join([
        "rev\t%s\t%s\t%d\t%s" % (
            _quote(record.url), record.revision, record.date,
            _quote(record.author),
        ),
        _quote(record.log),
        _quote(record.text),
    ]) + "\n"


def append_records(directory: str, records: Iterable[JournalRecord]) -> int:
    """Append records to ``directory``'s journal; returns how many."""
    path = os.path.join(directory, JOURNAL_NAME)
    count = 0
    chunks: List[str] = []
    for record in records:
        chunks.append(_serialize(record))
        count += 1
    if not chunks:
        return 0
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("".join(chunks))
    return count


class _Scanner:
    """Cursor over journal text, reading @strings and plain fields."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        return self.pos >= len(self.text)

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise JournalError(
                f"expected {literal!r} at offset {self.pos}"
            )
        self.pos += len(literal)

    def read_string(self) -> str:
        if self.pos >= len(self.text) or self.text[self.pos] != "@":
            raise JournalError(f"expected @string at offset {self.pos}")
        self.pos += 1
        out: List[str] = []
        while True:
            next_at = self.text.find("@", self.pos)
            if next_at == -1:
                raise JournalError("unterminated @string")
            out.append(self.text[self.pos:next_at])
            if self.text[next_at + 1:next_at + 2] == "@":
                out.append("@")
                self.pos = next_at + 2
                continue
            self.pos = next_at + 1
            return "".join(out)

    def read_field(self) -> str:
        """Read up to the next tab or newline (plain metadata field)."""
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "\t\n":
            self.pos += 1
        return self.text[start:self.pos]

    def skip(self, chars: str) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in chars:
            self.pos += 1


def read_journal(directory: str) -> List[JournalRecord]:
    """All records in ``directory``'s journal, oldest first."""
    path = os.path.join(directory, JOURNAL_NAME)
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    scanner = _Scanner(text)
    records: List[JournalRecord] = []
    while not scanner.at_end():
        scanner.expect("rev")
        scanner.skip("\t")
        url = scanner.read_string()
        scanner.skip("\t")
        revision = scanner.read_field()
        scanner.skip("\t")
        date_text = scanner.read_field()
        scanner.skip("\t")
        author = scanner.read_string()
        scanner.skip("\n")
        log = scanner.read_string()
        scanner.skip("\n")
        body = scanner.read_string()
        try:
            date = int(date_text)
        except ValueError:
            raise JournalError(f"bad date field {date_text!r}")
        records.append(JournalRecord(
            url=url, revision=revision, date=date,
            author=author, log=log, text=body,
        ))
    return records


def clear_journal(directory: str) -> bool:
    """Remove the journal (after compaction); True if one existed."""
    path = os.path.join(directory, JOURNAL_NAME)
    if os.path.exists(path):
        os.remove(path)
        return True
    return False
