"""Append-only check-in journal for the snapshot repository.

``save_store`` rewrites every ``,v`` file — O(total archive) per save,
which is what caps a transactional archive's write throughput under
load (the SiteStory finding).  The journal makes routine persistence
O(new data): each *new* revision since the last sync is appended as one
self-contained record, and a loader replays the records (in order,
through the ordinary ``checkin`` path, which is deterministic) on top
of the last compacted ``,v`` base to rebuild a byte-identical store.

Record shape: each record is wrapped in a length+checksum **frame** so
a reader can tell a record that was *committed* from one that was torn
mid-write by a crash::

    frame <payload-bytes> <crc32-hex>\\n
    rev\t<quoted url>\t<revision>\t<date>\t<quoted author>[\ttxn=<id>]
    <quoted log>
    <quoted text>

The payload is plain text like the rest of the repository —
``@``-quoting is RCS's (payload wrapped in ``@...@``, literal ``@``
doubled) — so a journal is still browsable with ``cat``.  Compaction =
a full ``save_store`` rewrite followed by truncating the journal.

The journal doubles as the snapshot service's **write-ahead intent
log** (paper §4.2's cross-file consistency problem: "the RCS
repository, the locally cached copy of the HTML document, and the
control files" must move together).  Four more framed record types
carry a transaction through the log::

    txn\t<id>\t<op>\t<quoted url>\t<date>\t<quoted author>
    <quoted newline-joined users>          -- the write-ahead intent

    seen\t<id>\t<quoted user>\t<quoted url>\t<revision>\t<when>
                                            -- one control-file stamp

    commit\t<id>                            -- the commit marker
    abort\t<id>                             -- a clean rollback marker

A ``rev`` or ``seen`` record tagged with a transaction id only takes
effect if that id's ``commit`` marker made it to disk;
:func:`resolve_entries` computes the surviving effect set, and
everything belonging to an uncommitted transaction is rolled back on
replay.  Untagged ``rev`` records (every journal written before
transactions existed) are unconditionally applied, so old journals
read exactly as before.

Reading comes in two flavors.  :func:`read_journal` is strict: any
damage raises :class:`JournalError`.  :func:`scan_journal` never raises
on content: it walks the file byte-by-byte, keeps every record whose
frame checks out, and reports where (and how) the stream stops making
sense — including whether valid frames exist *beyond* the damage (a
mid-file corruption, which truncation would lose data to) or not (a
torn tail, safely recoverable by truncating).  Journals written before
framing existed (bare ``rev`` records) are still readable; both readers
dispatch per record, so mixed files work too.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = ["JournalRecord", "JournalError", "JournalScan", "TxnIntent",
           "SeenRecord", "TxnCommit", "TxnAbort", "ResolvedJournal",
           "FrameScan", "frame_payload", "scan_frames",
           "append_records", "append_entries", "resolve_entries",
           "read_journal", "scan_journal", "clear_journal", "JOURNAL_NAME"]

JOURNAL_NAME = "journal.log"


class JournalError(ValueError):
    """The journal text is not a valid record stream."""


@dataclass(frozen=True)
class JournalRecord:
    """One checked-in revision, self-contained for replay.

    ``txn`` is empty for standalone (pre-transaction) records; when
    set, the record only takes effect if its transaction committed.
    """

    url: str
    revision: str
    date: int
    author: str
    log: str
    text: str
    txn: str = ""


@dataclass(frozen=True)
class TxnIntent:
    """Write-ahead declaration: operation ``op`` on ``url`` for
    ``users`` is about to mutate the repository under id ``txn``."""

    txn: str
    op: str
    url: str
    date: int
    author: str
    users: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SeenRecord:
    """One per-user control-file stamp (user saw revision at when)."""

    txn: str
    user: str
    url: str
    revision: str
    when: int


@dataclass(frozen=True)
class TxnCommit:
    """Transaction ``txn``'s effects are complete and durable."""

    txn: str


@dataclass(frozen=True)
class TxnAbort:
    """Transaction ``txn`` was rolled back cleanly (CGI timeout or an
    application error); its effect records must be skipped."""

    txn: str


@dataclass
class JournalScan:
    """What a tolerant read of the journal found.

    ``entries`` holds every record up to the first damage (all of them
    when ``damage`` is empty) — revision records, transaction intents,
    seen stamps, and commit/abort markers alike; ``records`` filters
    the revision records for callers that only replay check-ins.
    ``valid_bytes`` is the byte offset of the end of the last intact
    record — truncating the file there drops exactly the damaged
    suffix.  ``recoverable`` is False when intact frames exist *after*
    the damage: that is mid-file corruption, and truncating would
    silently discard committed revisions.
    """

    entries: List[object] = field(default_factory=list)
    total_bytes: int = 0
    valid_bytes: int = 0
    damage: str = ""
    damage_offset: Optional[int] = None
    recoverable: bool = True

    @property
    def records(self) -> List[JournalRecord]:
        return [e for e in self.entries if isinstance(e, JournalRecord)]

    @property
    def clean(self) -> bool:
        return not self.damage


def _quote(text: str) -> str:
    return "@" + text.replace("@", "@@") + "@"


def _serialize(record: JournalRecord) -> str:
    header = "rev\t%s\t%s\t%d\t%s" % (
        _quote(record.url), record.revision, record.date,
        _quote(record.author),
    )
    if record.txn:
        header += "\ttxn=%s" % record.txn
    return "\n".join([header, _quote(record.log), _quote(record.text)]) + "\n"


def _serialize_entry(entry: object) -> str:
    if isinstance(entry, JournalRecord):
        return _serialize(entry)
    if isinstance(entry, TxnIntent):
        return (
            "txn\t%s\t%s\t%s\t%d\t%s\n%s\n" % (
                entry.txn, entry.op, _quote(entry.url), entry.date,
                _quote(entry.author), _quote("\n".join(entry.users)),
            )
        )
    if isinstance(entry, SeenRecord):
        return "seen\t%s\t%s\t%s\t%s\t%d\n" % (
            entry.txn, _quote(entry.user), _quote(entry.url),
            entry.revision, entry.when,
        )
    if isinstance(entry, TxnCommit):
        return "commit\t%s\n" % entry.txn
    if isinstance(entry, TxnAbort):
        return "abort\t%s\n" % entry.txn
    raise TypeError(f"unknown journal entry type {type(entry).__name__}")


def frame_payload(payload: bytes) -> bytes:
    """Wrap arbitrary payload bytes in the journal's length+CRC frame.

    This is the same wire format every journal record uses, exposed so
    sibling logs (the replication layer's hinted-handoff journals) get
    the identical committed-vs-torn distinction without reinventing the
    framing — and stay ``cat``-browsable next to ``journal.log``.
    """
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"frame %d %08x\n" % (len(payload), crc) + payload


def _frame(entry: object) -> bytes:
    return frame_payload(_serialize_entry(entry).encode("utf-8"))


def append_entries(directory: str, entries: Iterable[object]) -> int:
    """Append framed entries (any record type) to ``directory``'s
    journal; returns how many.  The write is flushed and fsynced — an
    entry is either fully on disk or detectably torn, never silently
    half-applied."""
    path = os.path.join(directory, JOURNAL_NAME)
    count = 0
    chunks: List[bytes] = []
    for entry in entries:
        chunks.append(_frame(entry))
        count += 1
    if not chunks:
        return 0
    os.makedirs(directory, exist_ok=True)
    with open(path, "ab") as handle:
        handle.write(b"".join(chunks))
        handle.flush()
        os.fsync(handle.fileno())
    return count


def append_records(directory: str, records: Iterable[JournalRecord]) -> int:
    """Append framed revision records (see :func:`append_entries`)."""
    return append_entries(directory, records)


class _Scanner:
    """Cursor over journal text, reading @strings and plain fields."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        return self.pos >= len(self.text)

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise JournalError(
                f"expected {literal!r} at offset {self.pos}"
            )
        self.pos += len(literal)

    def read_string(self) -> str:
        if self.pos >= len(self.text) or self.text[self.pos] != "@":
            raise JournalError(f"expected @string at offset {self.pos}")
        self.pos += 1
        out: List[str] = []
        while True:
            next_at = self.text.find("@", self.pos)
            if next_at == -1:
                raise JournalError("unterminated @string")
            out.append(self.text[self.pos:next_at])
            if self.text[next_at + 1:next_at + 2] == "@":
                out.append("@")
                self.pos = next_at + 2
                continue
            self.pos = next_at + 1
            return "".join(out)

    def read_field(self) -> str:
        """Read up to the next tab or newline (plain metadata field)."""
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "\t\n":
            self.pos += 1
        return self.text[start:self.pos]

    def skip(self, chars: str) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in chars:
            self.pos += 1


def _int_field(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise JournalError(f"bad {what} field {text!r}")


def _read_one(scanner: _Scanner) -> JournalRecord:
    """One ``rev`` record at the scanner's cursor (raises JournalError)."""
    scanner.expect("rev")
    scanner.skip("\t")
    url = scanner.read_string()
    scanner.skip("\t")
    revision = scanner.read_field()
    scanner.skip("\t")
    date_text = scanner.read_field()
    scanner.skip("\t")
    author = scanner.read_string()
    txn = ""
    if scanner.text.startswith("\ttxn=", scanner.pos):
        scanner.pos += len("\ttxn=")
        txn = scanner.read_field()
    scanner.skip("\n")
    log = scanner.read_string()
    scanner.skip("\n")
    body = scanner.read_string()
    return JournalRecord(url=url, revision=revision,
                         date=_int_field(date_text, "date"),
                         author=author, log=log, text=body, txn=txn)


def _read_intent(scanner: _Scanner) -> TxnIntent:
    scanner.expect("txn")
    scanner.skip("\t")
    txn = scanner.read_field()
    scanner.skip("\t")
    op = scanner.read_field()
    scanner.skip("\t")
    url = scanner.read_string()
    scanner.skip("\t")
    date_text = scanner.read_field()
    scanner.skip("\t")
    author = scanner.read_string()
    scanner.skip("\n")
    users_blob = scanner.read_string()
    users = tuple(users_blob.split("\n")) if users_blob else ()
    return TxnIntent(txn=txn, op=op, url=url,
                     date=_int_field(date_text, "date"),
                     author=author, users=users)


def _read_seen(scanner: _Scanner) -> SeenRecord:
    scanner.expect("seen")
    scanner.skip("\t")
    txn = scanner.read_field()
    scanner.skip("\t")
    user = scanner.read_string()
    scanner.skip("\t")
    url = scanner.read_string()
    scanner.skip("\t")
    revision = scanner.read_field()
    scanner.skip("\t")
    when_text = scanner.read_field()
    return SeenRecord(txn=txn, user=user, url=url, revision=revision,
                      when=_int_field(when_text, "when"))


def _read_marker(scanner: _Scanner) -> object:
    keyword = scanner.read_field()
    scanner.skip("\t")
    txn = scanner.read_field()
    if not txn:
        raise JournalError(f"{keyword} marker without a transaction id")
    return TxnCommit(txn=txn) if keyword == "commit" else TxnAbort(txn=txn)


def _read_entry(scanner: _Scanner) -> object:
    """One record of any type at the scanner's cursor."""
    text, pos = scanner.text, scanner.pos
    if text.startswith("rev", pos):
        return _read_one(scanner)
    if text.startswith("txn", pos):
        return _read_intent(scanner)
    if text.startswith("seen", pos):
        return _read_seen(scanner)
    if text.startswith("commit", pos) or text.startswith("abort", pos):
        return _read_marker(scanner)
    raise JournalError(f"unrecognized record keyword at offset {pos}")


_ParseResult = Tuple[bool, int, Optional[object], str]


def _parse_raw_frame(data: bytes, pos: int) -> Tuple[bool, int,
                                                     Optional[bytes], str]:
    """(ok, end-offset, payload, why-not) for a frame starting at pos,
    validating the length+CRC envelope only — no record parsing."""
    newline = data.find(b"\n", pos)
    if newline == -1:
        return False, pos, None, "torn frame header (no terminating newline)"
    parts = data[pos:newline].split()
    if len(parts) != 3:
        return False, pos, None, f"malformed frame header {data[pos:newline]!r}"
    try:
        nbytes = int(parts[1])
    except ValueError:
        nbytes = -1
    if nbytes < 0:
        return False, pos, None, f"malformed frame length {parts[1]!r}"
    payload = data[newline + 1:newline + 1 + nbytes]
    if len(payload) < nbytes:
        return False, pos, None, (
            f"torn frame payload ({len(payload)} of {nbytes} bytes present)"
        )
    crc = b"%08x" % (zlib.crc32(payload) & 0xFFFFFFFF)
    if crc != parts[2].lower():
        return False, pos, None, (
            f"frame checksum mismatch (recorded {parts[2].decode('ascii', 'replace')}, "
            f"computed {crc.decode('ascii')})"
        )
    return True, newline + 1 + nbytes, payload, ""


def _parse_frame(data: bytes, pos: int) -> _ParseResult:
    """(ok, end-offset, record, why-not) for a frame starting at pos."""
    ok, end, payload, why = _parse_raw_frame(data, pos)
    if not ok:
        return False, pos, None, why
    # The checksum vouches for the bytes; decode defensively anyway.
    scanner = _Scanner(payload.decode("utf-8", errors="replace"))
    try:
        record = _read_entry(scanner)
    except JournalError as exc:
        return False, pos, None, f"framed record does not parse: {exc}"
    if not scanner.at_end():
        return False, pos, None, "trailing bytes inside frame"
    return True, end, record, ""


@dataclass
class FrameScan:
    """What a tolerant scan of a generic framed stream found: every
    intact payload up to the first damage, the byte offset a truncation
    should cut at, and why the stream stopped parsing (empty when it
    didn't)."""

    payloads: List[bytes] = field(default_factory=list)
    total_bytes: int = 0
    valid_bytes: int = 0
    damage: str = ""

    @property
    def clean(self) -> bool:
        return not self.damage


def scan_frames(data: bytes) -> FrameScan:
    """Tolerant scan of a stream of :func:`frame_payload` frames.

    The generic sibling of :func:`scan_journal` for logs that carry
    their own payload format (hinted-handoff journals): frames are
    validated envelope-only, damage is reported instead of raised, and
    ``valid_bytes`` marks the safe truncation point for a torn tail.
    """
    scan = FrameScan(total_bytes=len(data))
    pos = 0
    while True:
        while pos < len(data) and data[pos] in _WHITESPACE:
            pos += 1
        if pos >= len(data):
            scan.valid_bytes = len(data)
            return scan
        ok, end, payload, why = _parse_raw_frame(data, pos)
        if not ok:
            scan.valid_bytes = pos
            scan.damage = f"{why} (at byte {pos})"
            return scan
        scan.payloads.append(payload)
        pos = end


def _parse_legacy(data: bytes, pos: int) -> _ParseResult:
    """One pre-framing bare ``rev`` record starting at byte pos.

    Decodes strictly up to the first invalid byte (if any), so the
    consumed-byte arithmetic below stays exact; a record that needs
    bytes past an encoding error simply fails to parse there.
    """
    tail = data[pos:]
    try:
        text = tail.decode("utf-8")
    except UnicodeDecodeError as exc:
        text = tail[:exc.start].decode("utf-8")
    scanner = _Scanner(text)
    try:
        record = _read_one(scanner)
    except JournalError as exc:
        return False, pos, None, f"unframed record does not parse: {exc}"
    consumed = len(text[:scanner.pos].encode("utf-8"))
    return True, pos + consumed, record, ""


def _valid_frame_after(data: bytes, pos: int) -> bool:
    """Is there any intact frame at a line start beyond ``pos``?"""
    search = pos
    while True:
        candidate = data.find(b"\nframe ", search)
        if candidate == -1:
            return False
        ok, _end, _record, _why = _parse_frame(data, candidate + 1)
        if ok:
            return True
        search = candidate + 1


_WHITESPACE = b" \t\r\n"


def _scan_bytes(data: bytes) -> JournalScan:
    scan = JournalScan(total_bytes=len(data))
    pos = 0
    while True:
        while pos < len(data) and data[pos] in _WHITESPACE:
            pos += 1
        if pos >= len(data):
            scan.valid_bytes = len(data)
            return scan
        if data.startswith(b"frame ", pos):
            ok, end, record, why = _parse_frame(data, pos)
        elif data.startswith(b"rev", pos):
            ok, end, record, why = _parse_legacy(data, pos)
        else:
            ok, end, record, why = (
                False, pos, None,
                f"unrecognized record start {data[pos:pos + 8]!r}",
            )
        if not ok:
            scan.valid_bytes = pos
            scan.damage = f"{why} (at byte {pos})"
            scan.damage_offset = pos
            scan.recoverable = not _valid_frame_after(data, pos)
            return scan
        scan.entries.append(record)
        pos = end


def scan_journal(directory: str) -> JournalScan:
    """Tolerant read of ``directory``'s journal (see :class:`JournalScan`).

    Never raises on content: damage is *reported*, with enough
    positional detail for the caller to truncate (torn tail) or refuse
    to (mid-file corruption with committed records beyond it).
    """
    path = os.path.join(directory, JOURNAL_NAME)
    if not os.path.exists(path):
        return JournalScan()
    with open(path, "rb") as handle:
        data = handle.read()
    return _scan_bytes(data)


def read_journal(directory: str) -> List[JournalRecord]:
    """All records in ``directory``'s journal, oldest first.

    Strict: any damage anywhere raises :class:`JournalError`.  Use
    :func:`scan_journal` when a partial read is acceptable.
    """
    scan = scan_journal(directory)
    if scan.damage:
        raise JournalError(scan.damage)
    return scan.records


@dataclass
class ResolvedJournal:
    """The effect set that survives transaction resolution.

    ``revisions`` and ``seens`` hold, in journal order, every effect
    record that should be replayed: untagged (legacy) revision records
    plus records whose transaction committed.  ``rolled_back`` lists
    transaction ids whose effects were discarded — ``aborted`` ones by
    a clean abort marker, ``interrupted`` ones by a crash that beat
    the commit marker to disk.
    """

    revisions: List[JournalRecord] = field(default_factory=list)
    seens: List[SeenRecord] = field(default_factory=list)
    intents: "dict[str, TxnIntent]" = field(default_factory=dict)
    committed: List[str] = field(default_factory=list)
    aborted: List[str] = field(default_factory=list)
    interrupted: List[str] = field(default_factory=list)

    @property
    def rolled_back(self) -> List[str]:
        return self.aborted + self.interrupted

    def describe(self, txn: str) -> str:
        intent = self.intents.get(txn)
        if intent is None:
            return txn
        who = ",".join(intent.users) or intent.author
        return f"{txn} ({intent.op} {intent.url} for {who})"


def resolve_entries(entries: Iterable[object]) -> ResolvedJournal:
    """Split a journal's entries into applied effects and rollbacks.

    The commit protocol: effect records (``rev``/``seen``) tagged with
    a transaction id are provisional until that id's ``commit`` marker
    appears; an ``abort`` marker (or no marker at all — the crash
    case) rolls them back.  Untagged revision records predate
    transactions and are applied unconditionally.
    """
    entries = list(entries)
    committed = {e.txn for e in entries if isinstance(e, TxnCommit)}
    aborted = {e.txn for e in entries if isinstance(e, TxnAbort)}
    resolved = ResolvedJournal()
    seen_ids: List[str] = []
    for entry in entries:
        if isinstance(entry, TxnIntent):
            resolved.intents[entry.txn] = entry
            if entry.txn not in seen_ids:
                seen_ids.append(entry.txn)
        elif isinstance(entry, JournalRecord):
            if entry.txn and entry.txn not in seen_ids:
                seen_ids.append(entry.txn)
            if not entry.txn or entry.txn in committed:
                resolved.revisions.append(entry)
        elif isinstance(entry, SeenRecord):
            if entry.txn not in seen_ids:
                seen_ids.append(entry.txn)
            if entry.txn in committed:
                resolved.seens.append(entry)
    for txn in seen_ids:
        if txn in committed:
            resolved.committed.append(txn)
        elif txn in aborted:
            resolved.aborted.append(txn)
        else:
            resolved.interrupted.append(txn)
    return resolved


def clear_journal(directory: str) -> bool:
    """Remove the journal (after compaction); True if one existed."""
    path = os.path.join(directory, JOURNAL_NAME)
    if os.path.exists(path):
        os.remove(path)
        return True
    return False
