"""Append-only check-in journal for the snapshot repository.

``save_store`` rewrites every ``,v`` file — O(total archive) per save,
which is what caps a transactional archive's write throughput under
load (the SiteStory finding).  The journal makes routine persistence
O(new data): each *new* revision since the last sync is appended as one
self-contained record, and a loader replays the records (in order,
through the ordinary ``checkin`` path, which is deterministic) on top
of the last compacted ``,v`` base to rebuild a byte-identical store.

Record shape: each record is wrapped in a length+checksum **frame** so
a reader can tell a record that was *committed* from one that was torn
mid-write by a crash::

    frame <payload-bytes> <crc32-hex>\\n
    rev\t<quoted url>\t<revision>\t<date>\t<quoted author>
    <quoted log>
    <quoted text>

The payload is plain text like the rest of the repository —
``@``-quoting is RCS's (payload wrapped in ``@...@``, literal ``@``
doubled) — so a journal is still browsable with ``cat``.  Compaction =
a full ``save_store`` rewrite followed by truncating the journal.

Reading comes in two flavors.  :func:`read_journal` is strict: any
damage raises :class:`JournalError`.  :func:`scan_journal` never raises
on content: it walks the file byte-by-byte, keeps every record whose
frame checks out, and reports where (and how) the stream stops making
sense — including whether valid frames exist *beyond* the damage (a
mid-file corruption, which truncation would lose data to) or not (a
torn tail, safely recoverable by truncating).  Journals written before
framing existed (bare ``rev`` records) are still readable; both readers
dispatch per record, so mixed files work too.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = ["JournalRecord", "JournalError", "JournalScan", "append_records",
           "read_journal", "scan_journal", "clear_journal", "JOURNAL_NAME"]

JOURNAL_NAME = "journal.log"


class JournalError(ValueError):
    """The journal text is not a valid record stream."""


@dataclass(frozen=True)
class JournalRecord:
    """One checked-in revision, self-contained for replay."""

    url: str
    revision: str
    date: int
    author: str
    log: str
    text: str


@dataclass
class JournalScan:
    """What a tolerant read of the journal found.

    ``records`` holds every record up to the first damage (all of them
    when ``damage`` is empty).  ``valid_bytes`` is the byte offset of
    the end of the last intact record — truncating the file there drops
    exactly the damaged suffix.  ``recoverable`` is False when intact
    frames exist *after* the damage: that is mid-file corruption, and
    truncating would silently discard committed revisions.
    """

    records: List[JournalRecord] = field(default_factory=list)
    total_bytes: int = 0
    valid_bytes: int = 0
    damage: str = ""
    damage_offset: Optional[int] = None
    recoverable: bool = True

    @property
    def clean(self) -> bool:
        return not self.damage


def _quote(text: str) -> str:
    return "@" + text.replace("@", "@@") + "@"


def _serialize(record: JournalRecord) -> str:
    return "\n".join([
        "rev\t%s\t%s\t%d\t%s" % (
            _quote(record.url), record.revision, record.date,
            _quote(record.author),
        ),
        _quote(record.log),
        _quote(record.text),
    ]) + "\n"


def _frame(record: JournalRecord) -> bytes:
    payload = _serialize(record).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"frame %d %08x\n" % (len(payload), crc) + payload


def append_records(directory: str, records: Iterable[JournalRecord]) -> int:
    """Append framed records to ``directory``'s journal; returns how
    many.  The write is flushed and fsynced — a record is either fully
    on disk or detectably torn, never silently half-applied."""
    path = os.path.join(directory, JOURNAL_NAME)
    count = 0
    chunks: List[bytes] = []
    for record in records:
        chunks.append(_frame(record))
        count += 1
    if not chunks:
        return 0
    os.makedirs(directory, exist_ok=True)
    with open(path, "ab") as handle:
        handle.write(b"".join(chunks))
        handle.flush()
        os.fsync(handle.fileno())
    return count


class _Scanner:
    """Cursor over journal text, reading @strings and plain fields."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        return self.pos >= len(self.text)

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise JournalError(
                f"expected {literal!r} at offset {self.pos}"
            )
        self.pos += len(literal)

    def read_string(self) -> str:
        if self.pos >= len(self.text) or self.text[self.pos] != "@":
            raise JournalError(f"expected @string at offset {self.pos}")
        self.pos += 1
        out: List[str] = []
        while True:
            next_at = self.text.find("@", self.pos)
            if next_at == -1:
                raise JournalError("unterminated @string")
            out.append(self.text[self.pos:next_at])
            if self.text[next_at + 1:next_at + 2] == "@":
                out.append("@")
                self.pos = next_at + 2
                continue
            self.pos = next_at + 1
            return "".join(out)

    def read_field(self) -> str:
        """Read up to the next tab or newline (plain metadata field)."""
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "\t\n":
            self.pos += 1
        return self.text[start:self.pos]

    def skip(self, chars: str) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in chars:
            self.pos += 1


def _read_one(scanner: _Scanner) -> JournalRecord:
    """One ``rev`` record at the scanner's cursor (raises JournalError)."""
    scanner.expect("rev")
    scanner.skip("\t")
    url = scanner.read_string()
    scanner.skip("\t")
    revision = scanner.read_field()
    scanner.skip("\t")
    date_text = scanner.read_field()
    scanner.skip("\t")
    author = scanner.read_string()
    scanner.skip("\n")
    log = scanner.read_string()
    scanner.skip("\n")
    body = scanner.read_string()
    try:
        date = int(date_text)
    except ValueError:
        raise JournalError(f"bad date field {date_text!r}")
    return JournalRecord(url=url, revision=revision, date=date,
                         author=author, log=log, text=body)


_ParseResult = Tuple[bool, int, Optional[JournalRecord], str]


def _parse_frame(data: bytes, pos: int) -> _ParseResult:
    """(ok, end-offset, record, why-not) for a frame starting at pos."""
    newline = data.find(b"\n", pos)
    if newline == -1:
        return False, pos, None, "torn frame header (no terminating newline)"
    parts = data[pos:newline].split()
    if len(parts) != 3:
        return False, pos, None, f"malformed frame header {data[pos:newline]!r}"
    try:
        nbytes = int(parts[1])
    except ValueError:
        nbytes = -1
    if nbytes < 0:
        return False, pos, None, f"malformed frame length {parts[1]!r}"
    payload = data[newline + 1:newline + 1 + nbytes]
    if len(payload) < nbytes:
        return False, pos, None, (
            f"torn frame payload ({len(payload)} of {nbytes} bytes present)"
        )
    crc = b"%08x" % (zlib.crc32(payload) & 0xFFFFFFFF)
    if crc != parts[2].lower():
        return False, pos, None, (
            f"frame checksum mismatch (recorded {parts[2].decode('ascii', 'replace')}, "
            f"computed {crc.decode('ascii')})"
        )
    # The checksum vouches for the bytes; decode defensively anyway.
    scanner = _Scanner(payload.decode("utf-8", errors="replace"))
    try:
        record = _read_one(scanner)
    except JournalError as exc:
        return False, pos, None, f"framed record does not parse: {exc}"
    if not scanner.at_end():
        return False, pos, None, "trailing bytes inside frame"
    return True, newline + 1 + nbytes, record, ""


def _parse_legacy(data: bytes, pos: int) -> _ParseResult:
    """One pre-framing bare ``rev`` record starting at byte pos.

    Decodes strictly up to the first invalid byte (if any), so the
    consumed-byte arithmetic below stays exact; a record that needs
    bytes past an encoding error simply fails to parse there.
    """
    tail = data[pos:]
    try:
        text = tail.decode("utf-8")
    except UnicodeDecodeError as exc:
        text = tail[:exc.start].decode("utf-8")
    scanner = _Scanner(text)
    try:
        record = _read_one(scanner)
    except JournalError as exc:
        return False, pos, None, f"unframed record does not parse: {exc}"
    consumed = len(text[:scanner.pos].encode("utf-8"))
    return True, pos + consumed, record, ""


def _valid_frame_after(data: bytes, pos: int) -> bool:
    """Is there any intact frame at a line start beyond ``pos``?"""
    search = pos
    while True:
        candidate = data.find(b"\nframe ", search)
        if candidate == -1:
            return False
        ok, _end, _record, _why = _parse_frame(data, candidate + 1)
        if ok:
            return True
        search = candidate + 1


_WHITESPACE = b" \t\r\n"


def _scan_bytes(data: bytes) -> JournalScan:
    scan = JournalScan(total_bytes=len(data))
    pos = 0
    while True:
        while pos < len(data) and data[pos] in _WHITESPACE:
            pos += 1
        if pos >= len(data):
            scan.valid_bytes = len(data)
            return scan
        if data.startswith(b"frame ", pos):
            ok, end, record, why = _parse_frame(data, pos)
        elif data.startswith(b"rev", pos):
            ok, end, record, why = _parse_legacy(data, pos)
        else:
            ok, end, record, why = (
                False, pos, None,
                f"unrecognized record start {data[pos:pos + 8]!r}",
            )
        if not ok:
            scan.valid_bytes = pos
            scan.damage = f"{why} (at byte {pos})"
            scan.damage_offset = pos
            scan.recoverable = not _valid_frame_after(data, pos)
            return scan
        scan.records.append(record)
        pos = end


def scan_journal(directory: str) -> JournalScan:
    """Tolerant read of ``directory``'s journal (see :class:`JournalScan`).

    Never raises on content: damage is *reported*, with enough
    positional detail for the caller to truncate (torn tail) or refuse
    to (mid-file corruption with committed records beyond it).
    """
    path = os.path.join(directory, JOURNAL_NAME)
    if not os.path.exists(path):
        return JournalScan()
    with open(path, "rb") as handle:
        data = handle.read()
    return _scan_bytes(data)


def read_journal(directory: str) -> List[JournalRecord]:
    """All records in ``directory``'s journal, oldest first.

    Strict: any damage anywhere raises :class:`JournalError`.  Use
    :func:`scan_journal` when a partial read is acceptable.
    """
    scan = scan_journal(directory)
    if scan.damage:
        raise JournalError(scan.damage)
    return scan.records


def clear_journal(directory: str) -> bool:
    """Remove the journal (after compaction); True if one existed."""
    path = os.path.join(directory, JOURNAL_NAME)
    if os.path.exists(path):
        os.remove(path)
        return True
    return False
