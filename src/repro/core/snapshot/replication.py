"""Service replication and admission control (paper Section 4.2).

"The need to execute HtmlDiff on the server can result in high
processor loads if the facility is heavily used.  These loads can be
alleviated by caching the output of HtmlDiff for a while...  The
facility could also impose a limit on the number of simultaneous
users, or replicate itself among multiple computers, as many W3
services do."

Two mechanisms, composable:

* :class:`AdmissionControl` — a concurrent-request limiter per
  simulated instant; excess requests get 503 Service Unavailable
  (clients retry later, as 1995 browsers told users to);
* :class:`ReplicatedSnapshotService` — N service replicas behind a
  URL-hash router, so each page's archive lives on exactly one replica
  (no replication of state, which is what AIDE's shared-RCS design
  wants) while load spreads across machines.
"""

from __future__ import annotations

import hashlib
from typing import List

from ...simclock import SimClock
from ...web.cgi import parse_query_string
from ...web.http import Request, Response, make_response
from ...web.url import parse_url
from .service import SnapshotService

__all__ = ["AdmissionControl", "ReplicatedSnapshotService"]


class AdmissionControl:
    """503 everything past N requests in one simulated instant."""

    def __init__(self, service, clock: SimClock, limit: int,
                 retry_after: int = 1) -> None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        if retry_after < 1:
            raise ValueError("retry_after must be at least 1")
        self.service = service
        self.clock = clock
        self.limit = limit
        #: The window resets every simulated instant, so one second is
        #: always enough — advertised so clients back off exactly that
        #: long instead of guessing with blind exponential delays.
        self.retry_after = retry_after
        self._instant = -1
        self._count = 0
        self.admitted = 0
        self.rejected = 0

    def __call__(self, request: Request, now: int) -> Response:
        """CGI entry point with the limiter in front."""
        if self.clock.now != self._instant:
            self._instant = self.clock.now
            self._count = 0
        self._count += 1
        if self._count > self.limit:
            self.rejected += 1
            response = make_response(
                503,
                "<P>The snapshot facility is at its simultaneous-user "
                "limit; please retry shortly.</P>",
            )
            response.headers.set("Retry-After", str(self.retry_after))
            return response
        self.admitted += 1
        return self.service(request, now)


class ReplicatedSnapshotService:
    """N snapshot replicas, pages partitioned by URL hash.

    Partitioning (rather than mirroring) keeps the design's core
    economy — one stored copy per page version — while dividing fetch
    and HtmlDiff load by the replica count.
    """

    def __init__(self, replicas: List[SnapshotService]) -> None:
        if not replicas:
            raise ValueError("at least one replica is required")
        self.replicas = replicas
        self.routed = [0] * len(replicas)

    # ------------------------------------------------------------------
    def replica_for(self, url: str) -> int:
        """Stable URL → replica index (hash partitioning)."""
        key = str(parse_url(url).normalized())
        digest = hashlib.md5(key.encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % len(self.replicas)

    def __call__(self, request: Request, now: int) -> Response:
        """Route by the ``url`` parameter; no-url requests (the blank
        registration form) go to replica 0."""
        if request.method == "POST":
            params = parse_query_string(request.body)
        else:
            params = parse_query_string(request.url.query)
        url = params.get("url", "")
        index = self.replica_for(url) if url else 0
        self.routed[index] += 1
        return self.replicas[index](request, now)

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(r.store.total_bytes() for r in self.replicas)

    @property
    def url_count(self) -> int:
        return sum(r.store.url_count() for r in self.replicas)

    def htmldiff_invocations(self) -> int:
        return sum(r.store.htmldiff_invocations for r in self.replicas)
