"""Store-level fast-path configuration.

The snapshot store layers four accelerations over the paper's exact
cost model (Section 4.1 / Section 7): keyframe checkpoints in the RCS
archives, an LRU cache of checked-out revision texts, coalescing of
concurrent check-ins of the same URL, and append-only journal
persistence.  Every layer is independently toggleable, and — the same
differential-test discipline as ``HtmlDiffOptions`` — all of them are
required to be **output-neutral**: :meth:`StoreOptions.reference`
switches everything off and the tests assert byte-identical checkouts,
diffs, views, and reloads either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["StoreOptions"]


@dataclass(frozen=True)
class StoreOptions:
    """Fast-path switches for :class:`~repro.core.snapshot.store.SnapshotStore`.

    * ``keyframe_interval`` — every K-th revision of each archive keeps
      a full-text checkpoint so deep checkouts walk at most K-1 reverse
      deltas; 0 restores the paper's walk-the-whole-chain cost model.
    * ``checkout_cache_size`` — LRU entry bound for the shared
      ``(url, revision) -> text`` cache under ``diff``/``view``/
      ``view_at``; 0 disables it.
    * ``coalesce_checkins`` — concurrent remembers of the same URL at
      the same instant share one fetch + one RCS check-in, fanned out
      to every requesting user's control file under a single URL-lock
      acquisition.
    * ``journal_persistence`` — ``append_store`` appends new revisions
      to a journal instead of rewriting every ``,v`` file; off, it
      degrades to a full rewrite.
    """

    keyframe_interval: int = 16
    checkout_cache_size: int = 64
    coalesce_checkins: bool = True
    journal_persistence: bool = True

    def __post_init__(self) -> None:
        if self.keyframe_interval < 0:
            raise ValueError(
                f"keyframe_interval must be >= 0, got {self.keyframe_interval}"
            )
        if self.checkout_cache_size < 0:
            raise ValueError(
                f"checkout_cache_size must be >= 0, got {self.checkout_cache_size}"
            )

    def reference(self) -> "StoreOptions":
        """The paper's exact cost model: every fast-path layer off."""
        return replace(
            self,
            keyframe_interval=0,
            checkout_cache_size=0,
            coalesce_checkins=False,
            journal_persistence=False,
        )
