"""Authenticated snapshot accounts (paper Section 4.2).

"By moving to an authenticated system on a secure machine, one could
break some of these connections and obscure individuals' activities
while providing better security.  The repository would associate
impersonal account identifiers with a set of URLs and version numbers,
and passwords would be needed to access one of these accounts.
Whoever administers this facility, however, will still have information
about which user accesses which pages, unless the account creation can
be done anonymously."

:class:`AccountRegistry` issues impersonal account identifiers
(``acct-xxxx``), stores salted password hashes, and hands out session
tokens; :class:`AuthenticatedSnapshotService` wraps a
:class:`~repro.core.snapshot.store.SnapshotStore` so that every
operation runs under the opaque account id instead of an email address.
The administrator's residual visibility is deliberate and surfaced via
:meth:`AccountRegistry.admin_audit` — the paper's caveat, reproduced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .store import RememberResult, SnapshotStore

__all__ = ["AuthError", "AccountRegistry", "AuthenticatedSnapshotService"]


class AuthError(Exception):
    """Bad credentials or an invalid/expired session token."""


def _hash_password(password: str, salt: str) -> str:
    return hashlib.md5(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class _Account:
    account_id: str
    salt: str
    password_hash: str
    created_at: int


class AccountRegistry:
    """Impersonal account identifiers with password authentication.

    Account creation is anonymous by default (no email requested),
    taking the paper's closing "unless the account creation can be done
    anonymously" seriously.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._accounts: Dict[str, _Account] = {}
        self._tokens: Dict[str, str] = {}  # token -> account id
        self._counter = 0

    # ------------------------------------------------------------------
    def create_account(self, password: str) -> str:
        """Anonymous account creation; returns the opaque account id."""
        if not password:
            raise AuthError("a password is required")
        self._counter += 1
        account_id = f"acct-{self._counter:04d}"
        salt = hashlib.md5(
            f"{account_id}:{self.clock.now}".encode("utf-8")
        ).hexdigest()[:8]
        self._accounts[account_id] = _Account(
            account_id=account_id,
            salt=salt,
            password_hash=_hash_password(password, salt),
            created_at=self.clock.now,
        )
        return account_id

    def login(self, account_id: str, password: str) -> str:
        """Authenticate; returns a session token for subsequent calls."""
        account = self._accounts.get(account_id)
        if account is None:
            raise AuthError("no such account")
        if _hash_password(password, account.salt) != account.password_hash:
            raise AuthError("wrong password")
        token = hashlib.md5(
            f"{account_id}:{self.clock.now}:{len(self._tokens)}".encode()
        ).hexdigest()
        self._tokens[token] = account_id
        return token

    def logout(self, token: str) -> None:
        self._tokens.pop(token, None)

    def resolve(self, token: str) -> str:
        """Account id behind a session token (raises on bad tokens)."""
        account_id = self._tokens.get(token)
        if account_id is None:
            raise AuthError("invalid or expired session token")
        return account_id

    def change_password(self, account_id: str, old: str, new: str) -> None:
        account = self._accounts.get(account_id)
        if account is None:
            raise AuthError("no such account")
        if _hash_password(old, account.salt) != account.password_hash:
            raise AuthError("wrong password")
        if not new:
            raise AuthError("a password is required")
        account.password_hash = _hash_password(new, account.salt)
        # All existing sessions for the account are revoked.
        for token in [t for t, a in self._tokens.items() if a == account_id]:
            del self._tokens[token]

    # ------------------------------------------------------------------
    def admin_audit(self) -> List[Tuple[str, int]]:
        """What the administrator can still see: which accounts exist
        and when they were created.  Account→person linkage is gone
        (anonymous creation), but account→URL activity remains visible
        in the store — the paper's honest caveat."""
        return [
            (account.account_id, account.created_at)
            for account in self._accounts.values()
        ]


class AuthenticatedSnapshotService:
    """A session-token gate in front of a snapshot store."""

    def __init__(self, store: SnapshotStore, registry: AccountRegistry) -> None:
        self.store = store
        self.registry = registry

    # Every operation takes the session token, never an identity string.
    def remember(self, token: str, url: str) -> RememberResult:
        return self.store.remember(self.registry.resolve(token), url)

    def diff(self, token: str, url: str,
             rev_old: Optional[str] = None, rev_new: Optional[str] = None):
        return self.store.diff(self.registry.resolve(token), url,
                               rev_old=rev_old, rev_new=rev_new)

    def history(self, token: str, url: str):
        return self.store.history(self.registry.resolve(token), url)

    def my_urls(self, token: str) -> List[str]:
        return self.store.users.urls_for(self.registry.resolve(token))

    def who_tracks(self, token: str, url: str) -> List[str]:
        """Even authenticated users only learn *opaque ids*, not email
        addresses — the linkage the redesign set out to break."""
        self.registry.resolve(token)  # must be logged in to ask at all
        return self.store.users.users_tracking(
            str(self.store._canonical(url))
        )
