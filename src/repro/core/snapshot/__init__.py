"""snapshot: page versioning as an external service (paper Section 4).

RCS archives per URL, per-user seen-version control files, advisory
locking with simultaneous-request coalescing, HtmlDiff output caching,
BASE rewriting for relative links, and the CGI face with its keep-alive
trick against httpd timeouts.
"""

from .auth import AccountRegistry, AuthenticatedSnapshotService, AuthError
from .checkoutcache import CheckoutCache
from .diffcache import DiffCache
from .journal import (
    JournalError,
    JournalRecord,
    JournalScan,
    ResolvedJournal,
    SeenRecord,
    TxnAbort,
    TxnCommit,
    TxnIntent,
    resolve_entries,
    scan_journal,
)
from .keepalive import CgiTimeout, KeepAlive, KeepAliveResult
from .locking import LockError, LockManager, RequestCoalescer
from .options import StoreOptions
from .replication import AdmissionControl, ReplicatedSnapshotService
from .persistence import (
    JournalRecoveryWarning,
    StoreVerification,
    load_store,
    save_store,
    verify_store,
)
from .sched import (
    CRASH_POINTS,
    CrashPlan,
    DeadlockError,
    Failpoints,
    SimScheduler,
    SimulatedCrash,
)
from .service import OperationCosts, SnapshotService
from .wal import Transaction, WalError, WriteAheadLog
from .store import (
    RememberResult,
    ContentQuarantined,
    SnapshotError,
    SnapshotStore,
    add_base_directive,
)
from .usercontrol import SeenVersion, UserControl

__all__ = [
    "AccountRegistry",
    "AuthenticatedSnapshotService",
    "AuthError",
    "CgiTimeout",
    "CheckoutCache",
    "CRASH_POINTS",
    "CrashPlan",
    "DeadlockError",
    "DiffCache",
    "Failpoints",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "LockError",
    "ResolvedJournal",
    "SeenRecord",
    "SimScheduler",
    "SimulatedCrash",
    "Transaction",
    "TxnAbort",
    "TxnCommit",
    "TxnIntent",
    "WalError",
    "WriteAheadLog",
    "resolve_entries",
    "scan_journal",
    "JournalRecoveryWarning",
    "StoreVerification",
    "load_store",
    "save_store",
    "verify_store",
    "KeepAlive",
    "KeepAliveResult",
    "LockManager",
    "RequestCoalescer",
    "AdmissionControl",
    "ReplicatedSnapshotService",
    "OperationCosts",
    "SnapshotService",
    "RememberResult",
    "ContentQuarantined",
    "SnapshotError",
    "SnapshotStore",
    "StoreOptions",
    "add_base_directive",
    "SeenVersion",
    "UserControl",
]
