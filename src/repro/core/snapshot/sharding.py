"""URL-hash sharding of the snapshot store (paper Section 4.2).

"The facility could also impose a limit on the number of simultaneous
users, or replicate itself among multiple computers, as many W3
services do."  :class:`~.replication.ReplicatedSnapshotService` already
partitions whole *service replicas* by a modulo hash; this module is
the storage-layer generalization the diff server builds on:

* :class:`ShardRouter` — **rendezvous (highest-random-weight) hashing**
  from normalized URL to shard index.  Unlike ``hash mod N``, growing
  the fleet from N to N+1 shards moves only the ~1/(N+1) of URLs that
  now route to the *new* shard; every other archive stays where it is.
  That stability is what makes re-sharding an operational event rather
  than a full data migration, and it is pinned by a property test.
* :class:`ShardedSnapshotStore` — N independent
  :class:`~.store.SnapshotStore` shards behind one store-shaped facade.
  Every archive, per-user stamp, cache entry, journal, and WAL lives on
  exactly one shard (the design's one-copy economy, multiplied), while
  ``stats()`` / ``total_bytes()`` / ``fsck`` aggregate across the
  fleet.
* per-shard persistence — :func:`save_sharded` / :func:`append_sharded`
  / :func:`load_sharded` lay each shard out as its own repository
  directory (``shard-00/``, ``shard-01/``, ...) with its own journal,
  plus a ``SHARDS`` manifest; :func:`verify_sharded` runs the existing
  :func:`~.persistence.verify_store` fsck per shard and folds the
  reports into one.

Because both the router and every shard are deterministic, a sharded
deployment returns **byte-identical** responses to the single-store
reference service for every CGI action — the property
``benchmarks/bench_diff_server.py`` gates.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ...obs import NOOP as NOOP_OBS
from ...simclock import SimClock
from ...web.client import UserAgent
from ...web.url import parse_url
from ..htmldiff.api import HtmlDiffResult
from ..htmldiff.options import HtmlDiffOptions
from .options import StoreOptions
from .persistence import (
    StoreVerification,
    append_store,
    load_store,
    save_store,
    verify_store,
)
from .store import RememberResult, SnapshotStore

__all__ = [
    "ShardConfigError",
    "ShardRouter",
    "ShardedSnapshotStore",
    "ShardedVerification",
    "SHARDS_MANIFEST",
    "shard_dirname",
    "save_sharded",
    "append_sharded",
    "load_sharded",
    "verify_sharded",
]

#: Manifest file naming the shard count, so loaders and ``fsck`` can
#: tell a sharded repository from a plain one.
SHARDS_MANIFEST = "SHARDS"


class ShardConfigError(ValueError):
    """A shard-fleet configuration that cannot be honored safely.

    Raised instead of a bare ``ValueError`` so callers (CLI, server
    startup) can distinguish "the operator asked for an unsupported
    topology change" from data corruption.  The headline case is a
    shard-count *shrink*: rendezvous hashing guarantees growth moves
    only URLs won by the new shard, but removing a shard would scatter
    its URLs across every survivor — a data migration, not a config
    edit — so decommission is refused outright.
    """


def shard_dirname(index: int) -> str:
    """``shard-00``, ``shard-01``, ... — zero-padded so listings sort."""
    return f"shard-{index:02d}"


class ShardRouter:
    """Stable URL → shard routing by rendezvous hashing.

    For each shard *i* the router scores
    ``sha256(f"{i}|{normalized url}")`` and routes to the argmax.  Two
    consequences, both load-bearing:

    * the same URL maps to the same shard in every process and every
      run (no coordination state to replicate);
    * when the shard count grows, a URL's winner only changes if the
      **new** shard out-scores all old ones — existing shards never
      trade URLs among themselves.
    """

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        self.shard_count = shard_count
        #: Requests routed per shard (the balance witness).
        self.routed = [0] * shard_count

    @staticmethod
    def _score(index: int, key: str) -> bytes:
        return hashlib.sha256(f"{index}|{key}".encode("utf-8")).digest()

    @staticmethod
    def canonical(url: str) -> str:
        return str(parse_url(url).normalized())

    def shard_for(self, url: str) -> int:
        """The winning shard index for ``url`` (no counter side effect)."""
        key = self.canonical(url)
        best_index = 0
        best_score = self._score(0, key)
        for index in range(1, self.shard_count):
            score = self._score(index, key)
            if score > best_score:
                best_index, best_score = index, score
        return best_index

    def route(self, url: str) -> int:
        """Like :meth:`shard_for`, but counts the routing decision."""
        index = self.shard_for(url)
        self.routed[index] += 1
        return index

    def replicas_for(self, url: str, count: int) -> List[int]:
        """The top-``count`` shards for ``url`` in rendezvous order.

        Element 0 is :meth:`shard_for`'s winner (the *primary*), so a
        replica set at ``count=1`` degenerates to classic sharding.
        Because each shard's score depends only on ``(shard, url)``,
        growing the fleet N→N+1 can insert the new shard somewhere in
        the ranking but never reorders the existing shards relative to
        each other — replica sets are prefix-stable the same way
        single-shard routing is, and the property test pins it.
        """
        if count < 1:
            raise ValueError("replica count must be at least 1")
        if count > self.shard_count:
            raise ShardConfigError(
                f"cannot place {count} replicas on {self.shard_count} "
                f"shard(s); add shards before raising the replication "
                f"factor"
            )
        key = self.canonical(url)
        ranked = sorted(
            range(self.shard_count),
            key=lambda index: self._score(index, key),
            reverse=True,
        )
        return ranked[:count]


class ShardedSnapshotStore:
    """N snapshot-store shards behind one store-shaped facade.

    Drop-in for :class:`~.store.SnapshotStore` wherever the caller only
    uses the public operation surface (``remember`` / ``diff`` /
    ``history`` / ``view`` / ``view_at`` / ``checkin_content`` /
    batches / accounting): each call routes to the URL's shard.  The
    pieces a *single* store exposes for transactional plumbing
    (``wal``, ``failpoints``) stay per-shard — attach them shard by
    shard via :attr:`shards`.

    With a shared ``obs``, instrument counters (``snapshot.remember.
    requests`` etc.) aggregate naturally — every shard increments the
    same registry instruments — while ``stats()`` collectors are
    re-registered per shard (``snapshot.shard00`` ...) plus one
    aggregated ``snapshot.store`` view.
    """

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        shard_count: int = 4,
        diff_options: Optional[HtmlDiffOptions] = None,
        diff_cache_ttl: int = 3600,
        diff_cache_size: int = 256,
        options: Optional[StoreOptions] = None,
        obs=None,
        guard=None,
        quarantine=None,
        store_factory: Optional[Callable[[int], SnapshotStore]] = None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.obs = obs if obs is not None else NOOP_OBS
        self.router = ShardRouter(shard_count)
        if store_factory is None:
            def store_factory(index: int) -> SnapshotStore:
                return SnapshotStore(
                    clock, agent,
                    diff_options=diff_options,
                    diff_cache_ttl=diff_cache_ttl,
                    diff_cache_size=diff_cache_size,
                    options=options,
                    obs=self.obs,
                    guard=guard,
                    quarantine=quarantine,
                )
        self._store_factory = store_factory
        self.shards: List[SnapshotStore] = [
            store_factory(index) for index in range(shard_count)
        ]
        # Each SnapshotStore registered itself under "snapshot.store";
        # give every shard its own prefix and put the aggregate back.
        for index, shard in enumerate(self.shards):
            self.obs.register_stats(f"snapshot.shard{index:02d}", shard.stats)
        self.obs.register_stats("snapshot.store", self.stats)
        self._c_routes = [
            self.obs.counter(f"snapshot.sharding.route.shard{index:02d}")
            for index in range(shard_count)
        ]

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_for(self, url: str) -> int:
        return self.router.shard_for(url)

    def shard(self, url: str) -> SnapshotStore:
        """The shard owning ``url``'s archive (counts the route)."""
        index = self.router.route(url)
        self._c_routes[index].inc()
        return self.shards[index]

    def replicas_for(self, url: str, count: int) -> List[int]:
        return self.router.replicas_for(url, count)

    def reset_shard(self, index: int) -> SnapshotStore:
        """Replace shard ``index`` with a factory-fresh empty store.

        This is the crash model for replication chaos runs: a killed
        shard loses its in-memory state entirely, and recovery must
        rebuild it from its on-disk journal and its replica peers.  The
        fresh store re-registers the shard's stats collector under the
        same name, keeping the observability wiring intact.
        """
        if not 0 <= index < self.shard_count:
            raise IndexError(f"no shard {index} in a "
                             f"{self.shard_count}-shard fleet")
        fresh = self._store_factory(index)
        self.shards[index] = fresh
        self.obs.register_stats(f"snapshot.shard{index:02d}", fresh.stats)
        return fresh

    # ------------------------------------------------------------------
    # The SnapshotStore operation surface, routed
    # ------------------------------------------------------------------
    def remember(self, user: str, url: str) -> RememberResult:
        return self.shard(url).remember(user, url)

    def remember_batch(self, users: List[str], url: str) -> List[RememberResult]:
        return self.shard(url).remember_batch(users, url)

    def checkin_content(self, user: str, url: str, body: str) -> RememberResult:
        return self.shard(url).checkin_content(user, url, body)

    def checkin_content_batch(
        self, users: List[str], url: str, body: str
    ) -> List[RememberResult]:
        return self.shard(url).checkin_content_batch(users, url, body)

    def diff(
        self,
        user: str,
        url: str,
        rev_old: Optional[str] = None,
        rev_new: Optional[str] = None,
    ) -> HtmlDiffResult:
        return self.shard(url).diff(user, url, rev_old=rev_old, rev_new=rev_new)

    def history(self, user: str, url: str):
        return self.shard(url).history(user, url)

    def view(self, url: str, revision: Optional[str] = None,
             rewrite_base: bool = True) -> str:
        return self.shard(url).view(url, revision, rewrite_base=rewrite_base)

    def view_at(self, url: str, date: int, rewrite_base: bool = True) -> str:
        return self.shard(url).view_at(url, date, rewrite_base=rewrite_base)

    def archive_for(self, url: str):
        return self.shard(url).archive_for(url)

    # ------------------------------------------------------------------
    # Aggregated accounting
    # ------------------------------------------------------------------
    @property
    def htmldiff_invocations(self) -> int:
        return sum(shard.htmldiff_invocations for shard in self.shards)

    def total_bytes(self) -> int:
        return sum(shard.total_bytes() for shard in self.shards)

    def url_count(self) -> int:
        return sum(shard.url_count() for shard in self.shards)

    def bytes_by_url(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for shard in self.shards:
            out.update(shard.bytes_by_url())
        return out

    def full_copy_bytes(self) -> int:
        return sum(shard.full_copy_bytes() for shard in self.shards)

    def attach_scheduler(self, scheduler) -> None:
        """Wire every shard's lock manager (and a fresh failpoint hub)
        to ``scheduler`` so concurrent simulated processes interleave
        deterministically across the whole fleet."""
        from .sched import Failpoints

        for shard in self.shards:
            shard.locks.attach(scheduler)
            if shard.failpoints is None:
                shard.attach_failpoints(Failpoints())
            shard.failpoints.attach(scheduler)

    def stats(self) -> Dict[str, object]:
        """Per-layer counters summed across shards, plus the routing
        balance.  Ratio fields (``hit_rate``, ``mean_chain_length``)
        are recomputed from the summed numerators/denominators rather
        than summed themselves."""
        merged = _merge_stats([shard.stats() for shard in self.shards])
        _fix_ratios(merged)
        merged["sharding"] = {
            "shards": self.shard_count,
            "routed": list(self.router.routed),
        }
        return merged


def _merge_stats(dicts: List[Dict[str, object]]) -> Dict[str, object]:
    """Recursively sum numeric leaves across shard stats dicts; a
    non-numeric leaf (strings, lists, bools) keeps the first shard's
    value — shard 0 is the representative for configuration fields."""
    merged: Dict[str, object] = {}
    for stats in dicts:
        for key, value in stats.items():
            if isinstance(value, dict):
                sub = merged.setdefault(key, {})
                if isinstance(sub, dict):
                    merged[key] = _merge_stats(
                        [sub, value] if sub else [value]
                    )
            elif isinstance(value, bool):
                merged.setdefault(key, value)
            elif isinstance(value, (int, float)):
                current = merged.get(key, 0)
                merged[key] = (current if isinstance(current, (int, float))
                               else 0) + value
            else:
                merged.setdefault(key, value)
    return merged


def _fix_ratios(stats: Dict[str, object]) -> None:
    """Recompute ratio leaves that summing would have corrupted."""
    for value in list(stats.values()):
        if isinstance(value, dict):
            _fix_ratios(value)
    if "hit_rate" in stats and "hits" in stats and "misses" in stats:
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = (stats["hits"] / lookups) if lookups else 0.0
    if ("mean_chain_length" in stats and "delta_applications" in stats
            and "checkouts" in stats):
        checkouts = stats["checkouts"]
        stats["mean_chain_length"] = (
            stats["delta_applications"] / checkouts if checkouts else 0.0
        )


# ----------------------------------------------------------------------
# Per-shard persistence: one repository directory per shard
# ----------------------------------------------------------------------

def _write_manifest(directory: str, shard_count: int,
                    replication: int = 1) -> None:
    os.makedirs(directory, exist_ok=True)
    lines = [f"{shard_count}\n"]
    if replication > 1:
        # Appended as a tagged second line so pre-replication loaders
        # (which read only the first line) still parse the manifest.
        lines.append(f"replication {replication}\n")
    with open(os.path.join(directory, SHARDS_MANIFEST), "w",
              encoding="utf-8") as handle:
        handle.writelines(lines)


def _read_manifest(directory: str) -> Optional[Tuple[int, int]]:
    """``(shard_count, replication)`` from the ``SHARDS`` manifest, or
    None when the directory is not a sharded repository."""
    path = os.path.join(directory, SHARDS_MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty SHARDS manifest")
    try:
        count = int(lines[0])
    except ValueError:
        raise ValueError(f"unparseable SHARDS manifest: {lines[0]!r}")
    if count < 1:
        raise ValueError(f"SHARDS manifest must name >= 1 shard, got {count}")
    replication = 1
    for line in lines[1:]:
        tag, _, value = line.partition(" ")
        if tag == "replication":
            try:
                replication = int(value)
            except ValueError:
                raise ValueError(
                    f"unparseable replication factor in SHARDS "
                    f"manifest: {value!r}"
                )
            if not 1 <= replication <= count:
                raise ShardConfigError(
                    f"SHARDS manifest names replication {replication} "
                    f"on {count} shard(s)"
                )
        # Unknown tagged lines are ignored for forward compatibility.
    return count, replication


def read_shard_count(directory: str) -> Optional[int]:
    """The shard count from a repository's ``SHARDS`` manifest, or
    None when the directory is not a sharded repository."""
    manifest = _read_manifest(directory)
    return None if manifest is None else manifest[0]


def read_replication_factor(directory: str) -> Optional[int]:
    """The replication factor from the ``SHARDS`` manifest (1 when the
    manifest predates replication), or None when not sharded."""
    manifest = _read_manifest(directory)
    return None if manifest is None else manifest[1]


__all__.append("read_shard_count")
__all__.append("read_replication_factor")


def save_sharded(store: ShardedSnapshotStore, directory: str,
                 replication: int = 1) -> int:
    """Full rewrite of every shard into ``directory/shard-NN/``;
    returns total bytes written.  Doubles as compaction, exactly like
    :func:`~.persistence.save_store` per shard."""
    _write_manifest(directory, store.shard_count, replication)
    total = 0
    for index, shard in enumerate(store.shards):
        total += save_store(shard, os.path.join(directory,
                                                shard_dirname(index)))
    return total


def append_sharded(store: ShardedSnapshotStore, directory: str,
                   replication: int = 1,
                   only: Optional[Iterable[int]] = None) -> int:
    """O(new data) journal append per shard; each shard keeps its own
    ``journal.log`` so shards sync (and recover) independently.

    ``only`` restricts the sync to the named shard indices — the
    replicated server passes its *live* set, because appending a
    crashed (freshly reset, empty) shard would rewrite its on-disk
    control file from empty state and destroy the very stamps its
    recovery is about to reload.
    """
    _write_manifest(directory, store.shard_count, replication)
    chosen = None if only is None else set(only)
    total = 0
    for index, shard in enumerate(store.shards):
        if chosen is not None and index not in chosen:
            continue
        total += append_store(shard, os.path.join(directory,
                                                  shard_dirname(index)))
    return total


def load_sharded(store: ShardedSnapshotStore, directory: str) -> int:
    """Load every shard from its own directory; returns revisions
    loaded.  The store's shard count must match the manifest — routing
    depends on it."""
    manifest = read_shard_count(directory)
    if manifest is not None and manifest != store.shard_count:
        if store.shard_count < manifest:
            raise ShardConfigError(
                f"repository at {directory} has {manifest} shard(s) but "
                f"the store expects only {store.shard_count}: shrinking "
                f"the fleet (decommission) is unsupported — rendezvous "
                f"routing would scatter the removed shards' URLs across "
                f"every survivor.  Load with {manifest} shard(s), or "
                f"migrate the data explicitly."
            )
        raise ShardConfigError(
            f"repository at {directory} has {manifest} shard(s) but the "
            f"store expects {store.shard_count}; growth is supported but "
            f"must re-shard explicitly (load at {manifest}, then save at "
            f"{store.shard_count}) instead of loading across layouts"
        )
    total = 0
    for index, shard in enumerate(store.shards):
        shard_dir = os.path.join(directory, shard_dirname(index))
        if os.path.isdir(shard_dir):
            total += load_store(shard, shard_dir)
    return total


@dataclass
class ShardedVerification:
    """Aggregated fsck over every shard of a sharded repository."""

    directory: str
    reports: List[Tuple[int, StoreVerification]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for _index, report in self.reports)

    @property
    def problems(self) -> List[str]:
        return [
            f"[{shard_dirname(index)}] {problem}"
            for index, report in self.reports
            for problem in report.problems
        ]

    @property
    def notes(self) -> List[str]:
        return [
            f"[{shard_dirname(index)}] {note}"
            for index, report in self.reports
            for note in report.notes
        ]

    @property
    def repaired(self) -> List[str]:
        return [
            f"[{shard_dirname(index)}] {fix}"
            for index, report in self.reports
            for fix in report.repaired
        ]

    def summary(self) -> str:
        verdict = "consistent" if self.ok else "INCONSISTENT"
        clean = sum(1 for _index, report in self.reports if report.ok)
        return (
            f"sharded repository {verdict}: {clean}/{len(self.reports)} "
            f"shard(s) clean, {len(self.problems)} problem(s), "
            f"{len(self.notes)} note(s), {len(self.repaired)} repair(s)"
        )

    def summary_dict(self) -> Dict[str, object]:
        """One machine-readable rollup across the whole fleet, so
        callers (CI gates, ``aide fsck --json`` consumers) no longer
        walk ``per_shard`` to learn whether — and how much — repair
        happened."""
        failed = [shard_dirname(index) for index, report in self.reports
                  if not report.ok]
        return {
            "ok": self.ok,
            "shards": len(self.reports),
            "clean_shards": len(self.reports) - len(failed),
            "failed_shards": failed,
            "problem_count": len(self.problems),
            "note_count": len(self.notes),
            "repair_count": len(self.repaired),
            "repairs_by_shard": {
                shard_dirname(index): len(report.repaired)
                for index, report in self.reports
                if report.repaired
            },
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "shards": len(self.reports),
            "summary": self.summary_dict(),
            "problems": self.problems,
            "notes": self.notes,
            "repaired": self.repaired,
            "per_shard": {
                shard_dirname(index): report.to_dict()
                for index, report in self.reports
            },
        }


def verify_sharded(directory: str, repair: bool = False) -> ShardedVerification:
    """Run :func:`~.persistence.verify_store` on every shard directory
    named by the manifest and fold the reports into one."""
    count = read_shard_count(directory)
    if count is None:
        raise ValueError(f"{directory} has no {SHARDS_MANIFEST} manifest")
    verification = ShardedVerification(directory=directory)
    for index in range(count):
        shard_dir = os.path.join(directory, shard_dirname(index))
        verification.reports.append(
            (index, verify_store(shard_dir, repair=repair))
        )
    return verification
