"""Deterministic concurrent-process simulation for the snapshot service.

Paper Section 4.2 describes snapshot's hard operational problems — lock
queueing, CGI timeouts, crashed processes leaving stale locks — but the
paper's system only ever met them in production.  This module builds the
lab bench: a **deterministic scheduler** that interleaves several
simulated snapshot processes at *declared yield points*, plus a
**crash-injection plan** that kills a simulated process at any named
point, so every "what if the process died right here?" question becomes
a reproducible test.

Three cooperating pieces:

* :class:`SimScheduler` — runs each :class:`SimProcess` on its own
  (cooperatively parked) thread, but only ever lets **one** run at a
  time.  Control moves at yield points; the next runnable process is
  chosen by a seeded hash, so a given seed always produces the same
  interleaving.  A killed process is *abandoned*: its thread never
  resumes, its Python ``finally`` blocks never run — exactly like a
  ``kill -9`` — so locks it held go stale and half-written journal
  state stays on disk for recovery to deal with.
* :class:`CrashPlan` — decides *where* to die: at the N-th hit of a
  named crash point, chosen explicitly or derived from a seed.  Plans
  work both under the scheduler (process abandonment) and standalone
  (a :class:`SimulatedCrash` unwinds into the test harness, which then
  discards the in-memory store and exercises recovery from disk).
* :class:`Failpoints` — the hub threaded through the store: every
  ``step(name)`` call is simultaneously a yield point (scheduler), a
  potential crash site (plan), and the place a CGI-timeout abort is
  delivered (:meth:`Failpoints.arm_timeout`).  With nothing attached,
  ``step`` is a counter increment — the zero-overhead guarantee the
  differential tests pin down.

Every legal point name is declared in :data:`CRASH_POINTS`; ``step``
rejects undeclared names so the exhaustive crash sweep in
``benchmarks/bench_crash_consistency.py`` can enumerate the registry
and know it covered everything.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .keepalive import CgiTimeout

__all__ = [
    "CRASH_POINTS",
    "CrashPlan",
    "DeadlockError",
    "Failpoints",
    "SimProcess",
    "SimScheduler",
    "SimulatedCrash",
]


#: Every declared yield/crash point, in the order an unimpeded
#: ``remember`` passes them.  ``Failpoints.step`` rejects names not
#: listed here — the registry IS the sweep space of the crash bench.
CRASH_POINTS: Tuple[str, ...] = (
    "remember.url-locked",     # per-URL lock taken, nothing fetched yet
    "remember.fetched",        # page retrieved, nothing durable yet
    "txn.intent-appended",     # WAL intent on disk, no effects yet
    "txn.rev-appended",        # archive revision journaled
    "txn.cache-written",       # cached-copy file rewritten
    "txn.seen-appended",       # one control-file stamp journaled
    "txn.commit",              # commit barrier: everything but the marker
    "txn.committed",           # commit marker durable
    "batch.user-stamped",      # between users of a batched check-in
    "diff.checked-in",         # diff's embedded live check-in finished
)


class SimulatedCrash(BaseException):
    """The simulated process died at a crash point.

    Inherits ``BaseException`` (like ``KeyboardInterrupt``) so stray
    ``except Exception`` handlers cannot swallow a death.  Under the
    scheduler a killed process never even raises — its thread is
    abandoned mid-``step`` — so this exception is the *standalone*
    spelling, used by crash sweeps that then discard the in-memory
    store and recover from disk.
    """

    def __init__(self, point: str, hit: int = 1) -> None:
        super().__init__(f"simulated crash at {point} (hit {hit})")
        self.point = point
        self.hit = hit


class DeadlockError(RuntimeError):
    """A lock acquisition closed a cycle in the wait-for graph.

    The message carries the full cycle (process → lock → holder → ...)
    so a mis-ordered acquisition is diagnosable from the report alone.
    """

    def __init__(self, cycle: List[str]) -> None:
        super().__init__("deadlock: " + " -> ".join(cycle))
        self.cycle = cycle


def _draw(seed: int, salt: str, bound: int) -> int:
    """Deterministic pseudo-random draw in ``[0, bound)``."""
    digest = hashlib.sha256(f"{seed}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % bound


@dataclass(frozen=True)
class CrashPlan:
    """Where a simulated process dies: the ``hit``-th arrival at
    ``point``.  ``hit`` counts per-point from the plan's arming (the
    hub's counters reset with :meth:`Failpoints.reset`), so a sweep can
    target "the second control-file stamp of this batch" precisely."""

    point: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {self.point!r}")
        if self.hit < 1:
            raise ValueError(f"hit must be >= 1, got {self.hit}")

    @classmethod
    def at(cls, point: str, hit: int = 1) -> "CrashPlan":
        return cls(point=point, hit=hit)

    @classmethod
    def seeded(cls, seed: int) -> "CrashPlan":
        """A deterministic plan drawn from the registry: same seed,
        same death, forever — the property the resumable crash sweep
        and any bug report both rely on."""
        point = CRASH_POINTS[_draw(seed, "point", len(CRASH_POINTS))]
        hit = 1 + _draw(seed, "hit", 3)
        return cls(point=point, hit=hit)

    def should_crash(self, point: str, hit: int) -> bool:
        return point == self.point and hit == self.hit


class Failpoints:
    """The store's yield/crash/timeout hub.

    One instance per :class:`~repro.core.snapshot.store.SnapshotStore`.
    Inactive (no plan, no scheduler, no armed timeout) it only counts —
    the overhead-only mode the byte-identity tests assert.
    """

    def __init__(self) -> None:
        self.plan: Optional[CrashPlan] = None
        self.scheduler: Optional["SimScheduler"] = None
        self.hits: Dict[str, int] = {}
        self.crashes = 0
        #: When True, the next arrival at ``txn.commit`` raises
        #: :class:`~repro.core.snapshot.keepalive.CgiTimeout`: the
        #: operation outlived httpd, so it must never become durable
        #: (see ``KeepAlive.guard`` for the model).
        self._timeout_armed = False
        self.timeout_aborts = 0
        self.recording = False
        self.trace: List[str] = []

    # ------------------------------------------------------------------
    def arm(self, plan: Optional[CrashPlan]) -> None:
        """Install (or clear, with None) a crash plan; counters reset
        so the plan's ``hit`` indexes count from here."""
        self.plan = plan
        self.reset()

    def arm_timeout(self) -> None:
        self._timeout_armed = True

    def disarm_timeout(self) -> bool:
        """Clear the armed timeout; True if it never fired."""
        was_armed = self._timeout_armed
        self._timeout_armed = False
        return was_armed

    def attach(self, scheduler: "SimScheduler") -> None:
        self.scheduler = scheduler

    def reset(self) -> None:
        self.hits.clear()
        self.trace = []

    @property
    def active(self) -> bool:
        return (
            self.plan is not None
            or self.scheduler is not None
            or self._timeout_armed
        )

    # ------------------------------------------------------------------
    def step(self, point: str) -> None:
        """One declared yield point.  In order: deliver an armed CGI
        timeout (at the commit barrier only), consult the crash plan,
        then hand control to the scheduler for interleaving."""
        if point not in CRASH_POINTS:
            raise ValueError(f"undeclared crash point {point!r}")
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        if self.recording:
            self.trace.append(point)
        if self._timeout_armed and point == "txn.commit":
            self._timeout_armed = False
            self.timeout_aborts += 1
            raise CgiTimeout(
                "httpd timed out mid-operation; aborting before commit"
            )
        if self.plan is not None and self.plan.should_crash(point, hit):
            self.crashes += 1
            if self.scheduler is not None and self.scheduler.in_process():
                self.scheduler.kill_current(point, hit)  # never returns
            raise SimulatedCrash(point, hit)
        if self.scheduler is not None and self.scheduler.in_process():
            self.scheduler.checkpoint(point)

    def stats(self) -> Dict[str, object]:
        return {
            "steps": sum(self.hits.values()),
            "crashes": self.crashes,
            "timeout_aborts": self.timeout_aborts,
        }


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"
_DEAD = "dead"

#: Hard cap on one control handoff; a healthy handoff is microseconds,
#: so hitting this means the simulation itself is wedged.
_HANDOFF_TIMEOUT = 30.0


@dataclass
class SimProcess:
    """One simulated snapshot process (CGI invocation)."""

    name: str
    target: Callable[[], object]
    state: str = _READY
    result: object = None
    error: Optional[BaseException] = None
    #: Lock key this process is parked on (None unless ``_BLOCKED``).
    waiting_on: Optional[str] = None
    #: Why the process died, when it died at a crash point.
    crashed_at: Optional[str] = None
    _go: threading.Event = field(default_factory=threading.Event, repr=False)
    _thread: Optional[threading.Thread] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in (_DONE, _FAILED, _DEAD)


class SimScheduler:
    """Cooperative deterministic interleaving of simulated processes.

    Exactly one thread — a process's or the driver's — runs at any
    moment; control changes hands only at declared yield points, lock
    waits, and process boundaries.  With ``seed=None`` scheduling is
    strict FIFO round-robin; an integer seed draws the next runnable
    process from a hash chain, giving seeded-random but perfectly
    reproducible interleavings.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self.processes: Dict[str, SimProcess] = {}
        self._spawn_order: List[str] = []
        self._last_run: Optional[str] = None
        self._control = threading.Event()
        self._tls = threading.local()
        self._steps = 0
        #: (process, event) pairs, e.g. ("p1", "remember.fetched") or
        #: ("p2", "blocked:url:http://x/") — the determinism witness.
        self.trace: List[Tuple[str, str]] = []
        #: Observers told when a process dies (the lock manager breaks
        #: the dead holder's locks here).
        self._death_watchers: List[Callable[[str], None]] = []
        self._live_threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Driver-side API
    # ------------------------------------------------------------------
    def spawn(self, name: str, target: Callable[[], object]) -> SimProcess:
        if name in self.processes:
            raise ValueError(f"duplicate process name {name!r}")
        process = SimProcess(name=name, target=target)
        thread = threading.Thread(
            target=self._bootstrap, args=(process,),
            name=f"sim:{name}", daemon=True,
        )
        process._thread = thread
        self.processes[name] = process
        self._spawn_order.append(name)
        self._live_threads.append(thread)
        thread.start()
        return process

    def run(self) -> Dict[str, SimProcess]:
        """Drive until every process is done, failed, dead, or parked
        on a lock nobody will ever release (reported as failed with a
        :class:`DeadlockError` — the detector normally fires earlier)."""
        while True:
            ready = [
                name for name in self._spawn_order
                if self.processes[name].state == _READY
            ]
            if not ready:
                stuck = [
                    name for name in self._spawn_order
                    if self.processes[name].state == _BLOCKED
                ]
                for name in stuck:
                    process = self.processes[name]
                    process.state = _FAILED
                    process.error = DeadlockError(
                        [name, f"{process.waiting_on} (never released)"]
                    )
                return self.processes
            self._steps += 1
            if self.seed is None:
                # Round-robin: the first ready process strictly after
                # the last one that ran (cyclic in spawn order).
                if self._last_run in self._spawn_order:
                    pivot = self._spawn_order.index(self._last_run)
                    rotated = (
                        self._spawn_order[pivot + 1:]
                        + self._spawn_order[:pivot + 1]
                    )
                    chosen = next(n for n in rotated if n in ready)
                else:
                    chosen = ready[0]
            else:
                chosen = ready[_draw(self.seed, str(self._steps), len(ready))]
            self._last_run = chosen
            self._resume(self.processes[chosen])

    def stats(self) -> Dict[str, object]:
        """Scheduling counters for the observability surface."""
        by_state: Dict[str, int] = {}
        for process in self.processes.values():
            by_state[process.state] = by_state.get(process.state, 0) + 1
        return {
            "steps": self._steps,
            "processes": len(self.processes),
            "by_state": dict(sorted(by_state.items())),
            "trace_events": len(self.trace),
        }

    def join_threads(self, timeout: float = 1.0) -> None:
        """Best-effort join of finished process threads (abandoned dead
        threads are daemons and are left parked)."""
        for thread in self._live_threads:
            if thread.is_alive() and not self._thread_abandoned(thread):
                thread.join(timeout=timeout)

    def _thread_abandoned(self, thread: threading.Thread) -> bool:
        for process in self.processes.values():
            if process._thread is thread and process.state == _DEAD:
                return True
        return False

    # ------------------------------------------------------------------
    # Process-side API (called from inside process threads)
    # ------------------------------------------------------------------
    def current_name(self) -> Optional[str]:
        return getattr(self._tls, "name", None)

    def in_process(self) -> bool:
        return self.current_name() is not None

    def checkpoint(self, label: str) -> None:
        """Yield control; the scheduler may run others before resuming."""
        process = self._current_process()
        if process is None:
            return
        self.trace.append((process.name, label))
        process.state = _READY
        self._hand_back(process)

    def block_on(self, key: str) -> None:
        """Park the current process until :meth:`wake` grants it."""
        process = self._current_process()
        if process is None:
            raise RuntimeError("block_on called outside a SimProcess")
        self.trace.append((process.name, f"blocked:{key}"))
        process.state = _BLOCKED
        process.waiting_on = key
        self._hand_back(process)
        process.waiting_on = None
        self.trace.append((process.name, f"granted:{key}"))

    def wake(self, name: str) -> None:
        """Mark a blocked process runnable (its lock was granted)."""
        process = self.processes[name]
        if process.state == _BLOCKED:
            process.state = _READY

    def kill_current(self, point: str, hit: int) -> None:
        """Abandon the current process mid-step: no unwinding, no
        ``finally`` blocks, locks left held.  Never returns."""
        process = self._current_process()
        if process is None:
            raise RuntimeError("kill_current called outside a SimProcess")
        self.trace.append((process.name, f"killed:{point}"))
        process.state = _DEAD
        process.crashed_at = point
        process.error = SimulatedCrash(point, hit)
        for watcher in self._death_watchers:
            watcher(process.name)
        self._control.set()
        # Park forever; the daemon thread dies with the interpreter.
        threading.Event().wait()

    def waiting_for(self, name: str) -> Optional[str]:
        process = self.processes.get(name)
        return process.waiting_on if process else None

    def is_dead(self, name: str) -> bool:
        process = self.processes.get(name)
        return process is not None and process.state == _DEAD

    def on_death(self, watcher: Callable[[str], None]) -> None:
        self._death_watchers.append(watcher)

    # ------------------------------------------------------------------
    def _current_process(self) -> Optional[SimProcess]:
        name = self.current_name()
        if name is None:
            return None
        return self.processes[name]

    def _bootstrap(self, process: SimProcess) -> None:
        process._go.wait()
        process._go.clear()
        self._tls.name = process.name
        process.state = _RUNNING
        try:
            process.result = process.target()
        except SimulatedCrash as crash:
            # Standalone-style crash raised inside a scheduled process
            # (no abandonment requested): record the death and tell the
            # death watchers so held locks go stale correctly.
            process.state = _DEAD
            process.crashed_at = crash.point
            process.error = crash
            for watcher in self._death_watchers:
                watcher(process.name)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            process.state = _FAILED
            process.error = exc
        else:
            process.state = _DONE
        self._control.set()

    def _resume(self, process: SimProcess) -> None:
        process.state = _RUNNING
        self._control.clear()
        process._go.set()
        if not self._control.wait(timeout=_HANDOFF_TIMEOUT):
            raise RuntimeError(
                f"scheduler handoff to {process.name} timed out — "
                f"a process blocked outside a declared yield point"
            )

    def _hand_back(self, process: SimProcess) -> None:
        self._control.set()
        process._go.wait(timeout=_HANDOFF_TIMEOUT * 10)
        process._go.clear()
        process.state = _RUNNING
