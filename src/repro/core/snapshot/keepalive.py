"""The CGI keep-alive trick.

Paper Section 4.2: "When a CGI script is invoked, httpd sets up a
default timeout, and if the script does not generate output for a full
timeout interval, httpd will return an error to the browser...  In
order to keep the HTTP connection alive, snapshot forks a child process
that generates one space character (ignored by the W3 browser) every
several seconds while the parent is retrieving a page or executing
HtmlDiff."

The simulation models the timing arithmetic: given an operation that
takes ``duration`` seconds and an httpd that kills silent connections
after ``httpd_timeout`` seconds, :meth:`KeepAlive.run` decides whether
the request survives and how many padding spaces the child emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KeepAlive", "KeepAliveResult", "CgiTimeout"]


class CgiTimeout(Exception):
    """httpd gave up on the silent CGI script."""


@dataclass
class KeepAliveResult:
    """How a guarded operation fared."""

    survived: bool
    padding_spaces: int
    duration: int


@dataclass
class KeepAlive:
    """Timeout survival calculator.

    ``emit_interval`` is how often the forked child writes one space;
    it must be below ``httpd_timeout`` for the trick to work at all.
    ``enabled=False`` models snapshot without the child — the
    configuration whose failures motivated the mechanism.
    """

    httpd_timeout: int = 60
    emit_interval: int = 15
    enabled: bool = True

    def run(self, duration: int) -> KeepAliveResult:
        """Would an operation of ``duration`` seconds survive?

        Raises :class:`CgiTimeout` when httpd would have killed the
        connection before the operation produced output.

        Boundary semantics, pinned deliberately:

        * ``duration == httpd_timeout`` **dies** — httpd's timer fires
          at the end of the interval, and an operation that produces
          its first output exactly then has already lost the race
          (``>=``, not ``>``).
        * ``duration == 0`` **survives** in every configuration, with
          zero padding — an instantaneous operation emits its response
          before any timer matters, even with the keep-alive child
          disabled.
        """
        if duration < 0:
            raise ValueError("negative duration")
        if not self.enabled:
            if duration >= self.httpd_timeout:
                raise CgiTimeout(
                    f"no output for {duration}s exceeds httpd's "
                    f"{self.httpd_timeout}s timeout"
                )
            return KeepAliveResult(survived=True, padding_spaces=0,
                                   duration=duration)
        if self.emit_interval >= self.httpd_timeout:
            # The child is too slow to help; first gap already fatal.
            if duration >= self.httpd_timeout:
                raise CgiTimeout(
                    f"keep-alive interval {self.emit_interval}s is not "
                    f"shorter than the {self.httpd_timeout}s timeout"
                )
            return KeepAliveResult(survived=True, padding_spaces=0,
                                   duration=duration)
        spaces = duration // self.emit_interval
        return KeepAliveResult(survived=True, padding_spaces=spaces,
                               duration=duration)

    def padding(self, duration: int) -> str:
        """The literal spaces the child would have written (prepended
        to the CGI response body; browsers ignore leading whitespace)."""
        return " " * self.run(duration).padding_spaces

    def guard(self, store, duration: int) -> str:
        """Padding for an operation that must not leave partial state.

        A store without transaction machinery keeps the historical
        upfront verdict: a doomed operation raises :class:`CgiTimeout`
        before any work starts.  A transactional store (write-ahead log
        and failpoints attached) arms a **mid-operation abort**
        instead: the timeout is delivered at the transaction's commit
        barrier, the operation unwinds through the ordinary rollback
        path, and nothing half-done survives — an operation that
        outlives httpd never commits.
        """
        failpoints = getattr(store, "failpoints", None)
        if failpoints is None or getattr(store, "wal", None) is None:
            return self.padding(duration)
        try:
            return self.padding(duration)
        except CgiTimeout:
            failpoints.arm_timeout()
            return ""

    def unguard(self, store) -> bool:
        """Clear any still-armed abort once the operation has ended by
        other means; returns True if an armed timeout never fired (the
        operation finished without crossing a commit barrier, but httpd
        closed the connection all the same)."""
        failpoints = getattr(store, "failpoints", None)
        if failpoints is None:
            return False
        return failpoints.disarm_timeout()
