"""Synchronization for the snapshot facility.

Paper Section 4.2: "The system must synchronize access to the RCS
repository, the locally cached copy of the HTML document, and the
control files that record the versions of each page a user has checked
in.  Currently this is done by using UNIX file locking on both a
per-URL lock file and the per-user control file.  Ideally the locks
could be queued such that if multiple users request the same page
simultaneously, the second snapshot process would just wait for the
page and then return, rather than repeating the work."

This module implements both halves of that paragraph:

* **Single-process bookkeeping** (the historical mode): with no
  scheduler attached, locks count acquisition order and contention —
  a re-entrant acquisition stands in for "a second simultaneous
  process would have blocked here" — exactly as before.
* **Real blocking and queueing** under a
  :class:`~repro.core.snapshot.sched.SimScheduler`: a contended
  acquisition parks the simulated process on a FIFO queue and the
  release hands the lock to the head waiter — the queued-lock
  behaviour the paper wishes for.

Because lock *files* outlive the process that created them, the
manager also models the failure half of the story:

* **Owner leases** — every grant records its owner and sim-clock
  acquisition time; a lease older than ``lease_seconds`` is breakable
  by the next acquirer (``lease_expiries`` counts the takeovers).
* **Stale-lock breaking** — when a simulated process is killed, the
  scheduler notifies the manager and every lock the corpse held is
  granted to its queue head (``stale_breaks``).
* **Wait-for-graph deadlock detection** — a blocking acquisition that
  would close a cycle raises :class:`~repro.core.snapshot.sched.DeadlockError`
  carrying the full cycle, enforcing the lock-ordering discipline
  (per-URL before per-user) dynamically.  ``strict_order=True`` also
  rejects the mis-ordering statically, before any cycle can form.

Leases are context managers and **must** be released exactly once:
double release raises :class:`LockError` instead of silently driving
the held-count negative (the corruption mode the old counter had).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...obs import NOOP_HISTOGRAM
from ...simclock import SimClock
from .sched import DeadlockError, SimScheduler

__all__ = ["LockError", "LockManager", "RequestCoalescer"]

#: Owner name used for acquisitions made outside any simulated process
#: (the single-threaded historical mode).
_MAIN = "main"


class LockError(RuntimeError):
    """Lease misuse: double release, or releasing a broken lease."""


@dataclass
class _LockState:
    owner: str
    depth: int
    acquired_at: int
    #: FIFO of process names parked on this lock.
    queue: List[str] = field(default_factory=list)


class LockManager:
    """Advisory locks keyed by name (per-URL and per-user files)."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        lease_seconds: int = 0,
        strict_order: bool = False,
    ) -> None:
        self.clock = clock
        #: Leases older than this many sim-seconds are breakable; 0
        #: disables clock-based expiry (death-based breaking still
        #: works — a dead holder's locks are always breakable).
        self.lease_seconds = lease_seconds
        #: Raise :class:`LockError` on a per-URL acquisition made while
        #: holding a per-user lock (the discipline violation that can
        #: deadlock against the normal url-then-user order).
        self.strict_order = strict_order
        self.scheduler: Optional[SimScheduler] = None
        self._locks: Dict[str, _LockState] = {}
        self.acquisitions = 0
        self.contentions = 0
        self.stale_breaks = 0
        self.lease_expiries = 0
        self.order_violations = 0
        self.deadlocks = 0
        #: Sim-seconds spent parked on contended locks (histogram
        #: handle; a no-op until :meth:`attach_obs`).
        self._h_wait = NOOP_HISTOGRAM

    def attach_obs(self, obs) -> None:
        """Record blocking waits into ``obs``'s
        ``snapshot.locking.wait_seconds`` histogram."""
        self._h_wait = obs.histogram("snapshot.locking.wait_seconds")

    # ------------------------------------------------------------------
    def attach(self, scheduler: SimScheduler) -> None:
        """Wire blocking/queueing to a scheduler; dead processes'
        locks are broken the moment the scheduler reports the death."""
        self.scheduler = scheduler
        scheduler.on_death(self._owner_died)

    def _current_owner(self) -> str:
        if self.scheduler is not None:
            name = self.scheduler.current_name()
            if name is not None:
                return name
        return _MAIN

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    # ------------------------------------------------------------------
    def acquire(self, key: str) -> "_Lease":
        """Take the lock, blocking (under a scheduler) if contended.

        Re-entrant acquisition by the same owner deepens the hold and
        counts as contention — in the single-threaded mode that is the
        signal "a second simultaneous process would have blocked here",
        preserved for the paper's §4.2 accounting.
        """
        owner = self._current_owner()
        self.acquisitions += 1
        self._check_order(owner, key)
        state = self._locks.get(key)
        if state is None:
            self._locks[key] = _LockState(
                owner=owner, depth=1, acquired_at=self._now()
            )
            return _Lease(self, key, owner)
        if state.owner == owner:
            state.depth += 1
            self.contentions += 1
            return _Lease(self, key, owner)
        # Held by someone else.
        self.contentions += 1
        if self._breakable(state):
            self._break_lock(key, state, owner)
            return _Lease(self, key, owner)
        if self.scheduler is None or not self.scheduler.in_process():
            # No way to block without a scheduler: treat like the
            # breakable case once the lease expires, else refuse —
            # a single-threaded driver holding foreign locks is a
            # harness bug, not a simulation outcome.
            raise LockError(
                f"{owner} cannot wait for lock {key!r} held by "
                f"{state.owner} outside a simulated process"
            )
        self._detect_deadlock(owner, key, state)
        state.queue.append(owner)
        waited_from = self._now()
        self.scheduler.block_on(key)
        self._h_wait.observe(self._now() - waited_from)
        # Woken: the releaser (or a death) granted us the lock.
        state = self._locks[key]
        if state.owner != owner:
            raise LockError(
                f"woken for lock {key!r} but it is owned by {state.owner}"
            )
        return _Lease(self, key, owner)

    # ------------------------------------------------------------------
    def _check_order(self, owner: str, key: str) -> None:
        """Lock-ordering discipline: per-URL locks are acquired before
        per-user locks, never while holding one."""
        if not key.startswith("url:"):
            return
        holds_user = any(
            state.owner == owner and name.startswith("user:")
            for name, state in self._locks.items()
        )
        if holds_user:
            self.order_violations += 1
            if self.strict_order:
                raise LockError(
                    f"{owner} acquiring {key!r} while holding a per-user "
                    f"lock violates the url-before-user lock order"
                )

    def _breakable(self, state: _LockState) -> bool:
        if self.scheduler is not None and self.scheduler.is_dead(state.owner):
            return True
        if (
            self.lease_seconds > 0
            and self.clock is not None
            and self._now() - state.acquired_at >= self.lease_seconds
        ):
            return True
        return False

    def _break_lock(self, key: str, state: _LockState, new_owner: str) -> None:
        if self.scheduler is not None and self.scheduler.is_dead(state.owner):
            self.stale_breaks += 1
        else:
            self.lease_expiries += 1
        state.owner = new_owner
        state.depth = 1
        state.acquired_at = self._now()

    def _detect_deadlock(self, owner: str, key: str, state: _LockState) -> None:
        """Would parking ``owner`` on ``key`` close a wait-for cycle?

        Follows holder → (lock that holder waits for) → its holder …;
        reaching ``owner`` again is a deadlock, reported with the full
        cycle so the mis-ordered acquisition is evident.
        """
        cycle = [owner, f"{key} (held by {state.owner})"]
        seen = {owner}
        holder = state.owner
        while True:
            if holder == owner:
                self.deadlocks += 1
                raise DeadlockError(cycle)
            if holder in seen or self.scheduler is None:
                return
            seen.add(holder)
            waiting_key = self.scheduler.waiting_for(holder)
            if waiting_key is None:
                return
            waited = self._locks.get(waiting_key)
            if waited is None:
                return
            cycle.append(f"{waiting_key} (held by {waited.owner})")
            holder = waited.owner

    # ------------------------------------------------------------------
    def _release(self, key: str, owner: str) -> None:
        state = self._locks.get(key)
        if state is None or state.owner != owner:
            raise LockError(
                f"{owner} releasing lock {key!r} it does not hold"
            )
        state.depth -= 1
        if state.depth > 0:
            return
        self._grant_next(key, state)

    def _grant_next(self, key: str, state: _LockState) -> None:
        while state.queue:
            waiter = state.queue.pop(0)
            if self.scheduler is not None and self.scheduler.is_dead(waiter):
                continue
            state.owner = waiter
            state.depth = 1
            state.acquired_at = self._now()
            if self.scheduler is not None:
                self.scheduler.wake(waiter)
            return
        del self._locks[key]

    def _owner_died(self, owner: str) -> None:
        """Death watcher: hand the corpse's locks to their queued
        waiters (who would otherwise park forever).  A corpse-held lock
        with no waiters is left in place — the stale lock *file* the
        paper's operators knew — and the next acquirer breaks it."""
        for key in list(self._locks):
            state = self._locks.get(key)
            if state is None or state.owner != owner:
                continue
            if not state.queue:
                continue
            self.stale_breaks += 1
            state.depth = 0
            self._grant_next(key, state)

    # ------------------------------------------------------------------
    def held(self, key: str) -> bool:
        return key in self._locks

    def holder(self, key: str) -> Optional[str]:
        state = self._locks.get(key)
        return state.owner if state else None

    def held_by(self, owner: str) -> List[str]:
        return sorted(
            key for key, state in self._locks.items() if state.owner == owner
        )

    def stats(self) -> Dict[str, int]:
        return {
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "stale_breaks": self.stale_breaks,
            "lease_expiries": self.lease_expiries,
            "order_violations": self.order_violations,
            "deadlocks": self.deadlocks,
        }


@dataclass
class _Lease:
    """One grant of one lock, released exactly once.

    ``with``-friendly: the context manager releases on every normal
    exception path — including ``CgiTimeout`` aborts and standalone
    injected crashes that unwind.  (A process *killed* by the scheduler
    never unwinds at all: its leases go stale and are broken, which is
    the point.)  Calling :meth:`release` twice raises
    :class:`LockError` instead of silently corrupting the held-count.
    """

    manager: LockManager
    key: str
    owner: str
    _released: bool = False

    def __enter__(self) -> "_Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._released:
            self.release()

    def release(self) -> None:
        if self._released:
            raise LockError(
                f"double release of lock {self.key!r} by {self.owner}"
            )
        self._released = True
        self.manager._release(self.key, self.owner)


class RequestCoalescer:
    """Run identical expensive work once per simulated instant.

    Two users clicking Diff on the same page "simultaneously" (the same
    simulation timestamp) share one execution: "there is no reason to
    run HtmlDiff twice on the same data."  Results are also kept for a
    TTL, implementing the paper's "caching the output of HtmlDiff for a
    while".
    """

    def __init__(self, clock: SimClock, ttl: int = 0) -> None:
        self.clock = clock
        self.ttl = ttl
        self._results: Dict[str, Tuple[int, Any]] = {}
        self.executions = 0
        self.coalesced = 0

    def peek(self, key: str) -> bool:
        """Is a fresh result for ``key`` already available?"""
        entry = self._results.get(key)
        if entry is None:
            return False
        produced_at, _value = entry
        return self.clock.now == produced_at or (
            self.ttl > 0 and self.clock.now - produced_at < self.ttl
        )

    def do(self, key: str, work: Callable[[], Any]) -> Any:
        """Return a cached result when fresh, else run ``work``."""
        entry = self._results.get(key)
        if entry is not None:
            produced_at, value = entry
            if self.clock.now == produced_at or (
                self.ttl > 0 and self.clock.now - produced_at < self.ttl
            ):
                self.coalesced += 1
                return value
        self.executions += 1
        value = work()
        self._results[key] = (self.clock.now, value)
        return value

    def invalidate(self, prefix: str = "") -> None:
        """Drop cached results (all, or those whose key starts with
        ``prefix`` — e.g. every diff of one URL after a new check-in)."""
        if not prefix:
            self._results.clear()
            return
        for key in [k for k in self._results if k.startswith(prefix)]:
            del self._results[key]
