"""Synchronization for the snapshot facility.

Paper Section 4.2: "The system must synchronize access to the RCS
repository, the locally cached copy of the HTML document, and the
control files that record the versions of each page a user has checked
in.  Currently this is done by using UNIX file locking on both a
per-URL lock file and the per-user control file.  Ideally the locks
could be queued such that if multiple users request the same page
simultaneously, the second snapshot process would just wait for the
page and then return, rather than repeating the work."

The simulation is single-threaded, so locks model *bookkeeping* rather
than blocking: acquisition order, contention counts, and — the part the
paper wishes for and we implement — coalescing of simultaneous
identical requests so the work runs once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ...simclock import SimClock

__all__ = ["LockManager", "RequestCoalescer"]


class LockManager:
    """Advisory locks keyed by name (per-URL and per-user files)."""

    def __init__(self) -> None:
        self._held: Dict[str, int] = {}
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self, key: str) -> "_Lease":
        """Take the lock; re-entrant acquisition counts as contention
        (a second simultaneous process would have blocked here)."""
        self.acquisitions += 1
        if self._held.get(key, 0) > 0:
            self.contentions += 1
        self._held[key] = self._held.get(key, 0) + 1
        return _Lease(self, key)

    def _release(self, key: str) -> None:
        remaining = self._held.get(key, 0) - 1
        if remaining <= 0:
            self._held.pop(key, None)
        else:
            self._held[key] = remaining

    def held(self, key: str) -> bool:
        return self._held.get(key, 0) > 0


@dataclass
class _Lease:
    manager: LockManager
    key: str
    _released: bool = False

    def __enter__(self) -> "_Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self.manager._release(self.key)
            self._released = True


class RequestCoalescer:
    """Run identical expensive work once per simulated instant.

    Two users clicking Diff on the same page "simultaneously" (the same
    simulation timestamp) share one execution: "there is no reason to
    run HtmlDiff twice on the same data."  Results are also kept for a
    TTL, implementing the paper's "caching the output of HtmlDiff for a
    while".
    """

    def __init__(self, clock: SimClock, ttl: int = 0) -> None:
        self.clock = clock
        self.ttl = ttl
        self._results: Dict[str, Tuple[int, Any]] = {}
        self.executions = 0
        self.coalesced = 0

    def do(self, key: str, work: Callable[[], Any]) -> Any:
        """Return a cached result when fresh, else run ``work``."""
        entry = self._results.get(key)
        if entry is not None:
            produced_at, value = entry
            if self.clock.now == produced_at or (
                self.ttl > 0 and self.clock.now - produced_at < self.ttl
            ):
                self.coalesced += 1
                return value
        self.executions += 1
        value = work()
        self._results[key] = (self.clock.now, value)
        return value

    def invalidate(self, prefix: str = "") -> None:
        """Drop cached results (all, or those whose key starts with
        ``prefix`` — e.g. every diff of one URL after a new check-in)."""
        if not prefix:
            self._results.clear()
            return
        for key in [k for k in self._results if k.startswith(prefix)]:
            del self._results[key]
