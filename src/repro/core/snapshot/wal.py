"""Write-ahead transactions for the snapshot service.

Paper §4.2 names the three files one ``remember`` must keep mutually
consistent: "the RCS repository, the locally cached copy of the HTML
document, and the control files that record the versions of each page a
user has checked in."  A crash between any two of those writes leaves
cross-file damage that per-file recovery cannot see.

This module makes the triple-write atomic with a classic redo log plus
commit marker, layered on the journal's framed records:

1. ``begin`` appends a :class:`~.journal.TxnIntent` (the write-ahead
   intent: what operation, which URL, for whom) and fsyncs it;
2. each effect lands in memory *and* appends its txn-tagged effect
   record — ``rev`` for the archive check-in, a ``cache/`` file write
   for the local copy, ``seen`` for each control-file stamp;
3. ``commit`` appends the ``commit`` marker.  Only then do the effect
   records count: :func:`~.journal.resolve_entries` discards every
   effect of a transaction whose marker never reached disk.

Two failure paths use the same undo machinery:

* **Abort** (application error or a ``CgiTimeout`` raised mid-op): the
  in-memory effects are unwound in reverse — control-file stamps via
  :meth:`UserControl.undo_record`, the cache file restored from its
  prior content, the archive via :meth:`RcsArchive.drop_head` — and an
  ``abort`` marker records the clean rollback.
* **Crash** (the process dies; nothing unwinds): the in-memory store is
  gone, and the next ``load_store`` rolls the half-done transaction
  back during replay — its effect records are skipped and its cache
  file is rewritten from the surviving head revision.

A store without a ``WriteAheadLog`` attached behaves exactly as before:
the transactional path is overhead-only and opt-in.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, TYPE_CHECKING

from .journal import (
    JOURNAL_NAME,
    JournalRecord,
    SeenRecord,
    TxnAbort,
    TxnCommit,
    TxnIntent,
    append_entries,
    scan_journal,
)
from .persistence import CACHE_DIR, mangle_url
from .usercontrol import SeenVersion

if TYPE_CHECKING:
    from .store import SnapshotStore

__all__ = ["WriteAheadLog", "Transaction", "WalError", "CACHE_DIR"]


class WalError(RuntimeError):
    """Transaction misuse: effects logged after commit/abort, or a
    second finalization of an already-finalized transaction."""


class Transaction:
    """One atomic snapshot operation in flight.

    Collects txn-tagged journal entries (the redo log) and in-memory
    undo closures (the rollback log) in lockstep; exactly one of
    :meth:`commit` or :meth:`abort` finalizes it.
    """

    def __init__(self, wal: "WriteAheadLog", intent: TxnIntent) -> None:
        self.wal = wal
        self.txn = intent.txn
        self.intent = intent
        self.state = "open"
        #: (label, closure) pairs, run in reverse on abort.
        self._undos: List[tuple] = []
        #: (url, revision) of each archive check-in this txn performed.
        self.revs: List[tuple] = []

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self.state != "open":
            raise WalError(f"transaction {self.txn} is already {self.state}")

    def log_rev(self, url: str, revision: str, body: str, log: str) -> None:
        """Journal an archive check-in this transaction just made; the
        undo drops the freshly created head again."""
        self._require_open()
        record = JournalRecord(
            url=url,
            revision=revision,
            date=self.intent.date,
            author=self.intent.author,
            log=log,
            text=body,
            txn=self.txn,
        )
        append_entries(self.wal.directory, [record])
        store = self.wal.store
        self.revs.append((url, revision))

        def undo() -> None:
            archive = store.archive_for(url)
            archive.drop_head(revision)
            # The in-memory cached copy was overwritten by the check-in
            # *before* this transaction saw it, so restore it from the
            # surviving head (the invariant the cache promises) rather
            # than from any captured prior.
            if archive.revision_count:
                store.page_cache[url] = archive.checkout(
                    archive.head_revision
                )
            else:
                store.page_cache.pop(url, None)
            # The dropped number may be reused with different text, so
            # every cache keyed on (url, revision) must forget it —
            # including the coalescer's same-instant check-in slot,
            # which would otherwise serve the rolled-back outcome to a
            # retry at the same simulated instant.
            store.checkout_cache.invalidate_revision(url, revision)
            store.diff_cache.invalidate_url(url)
            store.coalescer.invalidate(f"diff:{url}:")
            store.coalescer.invalidate(f"checkin:{url}:")

        self._undos.append((f"rev {url} {revision}", undo))

    def write_cache(self, url: str, body: str) -> None:
        """Update the locally cached copy; the undo restores the file's
        prior content (or removes a file that did not exist)."""
        self._require_open()
        path = self.wal.cache_path(url)
        prior: Optional[str] = None
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                prior = handle.read()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        memory_prior = self.wal.store.page_cache.get(url)
        self.wal.store.page_cache[url] = body

        def undo() -> None:
            if prior is None:
                if os.path.exists(path):
                    os.remove(path)
                self.wal.store.page_cache.pop(url, None)
            else:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(prior)
            if memory_prior is None:
                self.wal.store.page_cache.pop(url, None)
            else:
                self.wal.store.page_cache[url] = memory_prior

        self._undos.append((f"cache {url}", undo))

    def log_seen(
        self,
        user: str,
        url: str,
        revision: str,
        when: int,
        prior: Optional[SeenVersion],
    ) -> None:
        """Journal one control-file stamp the store just recorded;
        ``prior`` is :meth:`UserControl.record`'s return value and
        drives the undo."""
        self._require_open()
        append_entries(
            self.wal.directory,
            [SeenRecord(txn=self.txn, user=user, url=url,
                        revision=revision, when=when)],
        )
        users = self.wal.store.users

        def undo() -> None:
            users.undo_record(user, url, revision, prior)

        self._undos.append((f"seen {user} {url} {revision}", undo))

    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Append the commit marker — the transaction's atomic point.

        Also advances ``persisted_revisions`` for every check-in this
        transaction journaled, so routine ``append_store`` syncs know
        those revisions are already safely on disk.
        """
        self._require_open()
        append_entries(self.wal.directory, [TxnCommit(txn=self.txn)])
        self.state = "committed"
        store = self.wal.store
        for url, revision in self.revs:
            count = int(revision.rpartition(".")[2])
            if count > store.persisted_revisions.get(url, 0):
                store.persisted_revisions[url] = count
        self.wal.committed += 1

    def abort(self) -> None:
        """Unwind every in-memory effect (reverse order) and append the
        abort marker recording the clean rollback."""
        self._require_open()
        while self._undos:
            _label, undo = self._undos.pop()
            undo()
        append_entries(self.wal.directory, [TxnAbort(txn=self.txn)])
        self.state = "aborted"
        self.wal.aborted += 1


class WriteAheadLog:
    """The store's transaction manager, bound to one on-disk directory.

    Transaction ids are ``t<seq>``; the sequence resumes past every id
    visible in the existing journal, so ids stay unique across crashes
    and restarts.
    """

    def __init__(self, store: "SnapshotStore", directory: str) -> None:
        self.store = store
        self.directory = directory
        os.makedirs(os.path.join(directory, CACHE_DIR), exist_ok=True)
        self._next = self._scan_next_id()
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def _scan_next_id(self) -> int:
        path = os.path.join(self.directory, JOURNAL_NAME)
        if not os.path.exists(path):
            return 1
        highest = 0
        for entry in scan_journal(self.directory).entries:
            txn = getattr(entry, "txn", "")
            if txn.startswith("t"):
                try:
                    highest = max(highest, int(txn[1:]))
                except ValueError:
                    continue
        return highest + 1

    # ------------------------------------------------------------------
    def begin(self, op: str, url: str, author: str,
              users: tuple = ()) -> Transaction:
        """Write the intent record and open the transaction."""
        txn_id = f"t{self._next}"
        self._next += 1
        intent = TxnIntent(
            txn=txn_id,
            op=op,
            url=url,
            date=self.store.clock.now,
            author=author,
            users=tuple(users),
        )
        append_entries(self.directory, [intent])
        self.begun += 1
        return Transaction(self, intent)

    def cache_path(self, url: str) -> str:
        return os.path.join(self.directory, CACHE_DIR, mangle_url(url))

    def read_cache(self, url: str) -> Optional[str]:
        path = self.cache_path(url)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def stats(self) -> dict:
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
        }
