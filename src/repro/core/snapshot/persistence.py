"""On-disk persistence for the snapshot repository.

The paper's service kept its state in a CGI-owned directory: RCS ``,v``
files per URL, plus "the per-user control file" — and its security
section turns on exactly that layout ("the data in the repository is
vulnerable to any CGI script and any user with access to the CGI area.
Data in this repository can be browsed, altered, or deleted").

This module writes and reads that directory:

* ``archives/<mangled-url>,v`` — one RCS file per tracked URL;
* ``users.ctl`` — the seen-version control file;
* ``MANIFEST`` — mangled-name → URL map (URL characters that cannot
  appear in filenames are percent-escaped, so the map is also
  reconstructible from names alone).

Everything is plain text on purpose: the repository is as browsable —
and as unprotected — as the paper describes.
"""

from __future__ import annotations

import os
from typing import Dict

from ...rcs.rcsfile import parse_rcsfile, serialize_rcsfile
from .store import SnapshotStore
from .usercontrol import UserControl

__all__ = ["save_store", "load_store", "mangle_url", "unmangle_name"]

_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_"
)


def mangle_url(url: str) -> str:
    """A URL as a safe, reversible filename (percent-escaping)."""
    out = []
    for ch in url:
        if ch in _SAFE:
            out.append(ch)
        else:
            out.append(f"%{ord(ch):02X}")
    return "".join(out)


def unmangle_name(name: str) -> str:
    """Inverse of :func:`mangle_url` (tolerates malformed escapes)."""
    out = []
    index = 0
    while index < len(name):
        if name[index] == "%" and index + 2 < len(name) + 1:
            try:
                out.append(chr(int(name[index + 1:index + 3], 16)))
                index += 3
                continue
            except ValueError:
                pass
        out.append(name[index])
        index += 1
    return "".join(out)


def save_store(store: SnapshotStore, directory: str) -> int:
    """Write the repository to ``directory``; returns files written."""
    archives_dir = os.path.join(directory, "archives")
    os.makedirs(archives_dir, exist_ok=True)
    written = 0
    manifest: Dict[str, str] = {}
    for url, archive in sorted(store.archives.items()):
        name = mangle_url(url) + ",v"
        manifest[name] = url
        path = os.path.join(archives_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_rcsfile(archive))
        written += 1
    with open(os.path.join(directory, "users.ctl"), "w",
              encoding="utf-8") as handle:
        handle.write(store.users.serialize())
    written += 1
    with open(os.path.join(directory, "MANIFEST"), "w",
              encoding="utf-8") as handle:
        for name, url in sorted(manifest.items()):
            handle.write(f"{name}\t{url}\n")
    written += 1
    return written


def load_store(store: SnapshotStore, directory: str) -> int:
    """Populate an (empty or existing) store from ``directory``.

    Returns the number of archives loaded.  Existing in-memory archives
    for the same URLs are replaced — the disk copy wins, as it would
    for a restarted CGI process.
    """
    archives_dir = os.path.join(directory, "archives")
    loaded = 0
    manifest = _read_manifest(os.path.join(directory, "MANIFEST"))
    if os.path.isdir(archives_dir):
        for name in sorted(os.listdir(archives_dir)):
            if not name.endswith(",v"):
                continue
            with open(os.path.join(archives_dir, name), "r",
                      encoding="utf-8") as handle:
                archive = parse_rcsfile(handle.read())
            url = manifest.get(name) or unmangle_name(name[:-2])
            archive.name = url
            store.archives[url] = archive
            loaded += 1
    users_path = os.path.join(directory, "users.ctl")
    if os.path.exists(users_path):
        with open(users_path, "r", encoding="utf-8") as handle:
            store.users = UserControl.deserialize(handle.read())
    return loaded


def _read_manifest(path: str) -> Dict[str, str]:
    if not os.path.exists(path):
        return {}
    out: Dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            name, _, url = line.rstrip("\n").partition("\t")
            if name and url:
                out[name] = url
    return out
