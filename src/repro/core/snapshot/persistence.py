"""On-disk persistence for the snapshot repository.

The paper's service kept its state in a CGI-owned directory: RCS ``,v``
files per URL, plus "the per-user control file" — and its security
section turns on exactly that layout ("the data in the repository is
vulnerable to any CGI script and any user with access to the CGI area.
Data in this repository can be browsed, altered, or deleted").

This module writes and reads that directory:

* ``archives/<mangled-url>,v`` — one RCS file per tracked URL;
* ``users.ctl`` — the seen-version control file;
* ``MANIFEST`` — mangled-name → URL map (URL characters that cannot
  appear in filenames are percent-escaped, so the map is also
  reconstructible from names alone);
* ``journal.log`` — append-only records for revisions checked in since
  the last full rewrite (see :mod:`.journal`).

Everything is plain text on purpose: the repository is as browsable —
and as unprotected — as the paper describes.

Two save paths:

* :func:`save_store` — the full rewrite (every ``,v`` file), O(total
  archive).  A full rewrite supersedes the journal, so it doubles as
  **compaction** (:func:`compact_store` is the explicit spelling).
* :func:`append_store` — O(new data): one journal record per revision
  checked in since the last sync, plus rewrites of the two small
  bookkeeping files.  :func:`load_store` replays the journal on top of
  the compacted base through the ordinary deterministic ``checkin``
  path, reconstructing a store whose serialized archives are
  byte-identical to what a full rewrite would have produced.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...rcs.archive import RcsArchive
from ...rcs.rcsfile import parse_rcsfile, serialize_rcsfile
from ...simclock import SimClock
from .journal import (
    JOURNAL_NAME,
    JournalError,
    JournalRecord,
    ResolvedJournal,
    append_records,
    clear_journal,
    resolve_entries,
    scan_journal,
)
from .store import SnapshotStore
from .usercontrol import UserControl

__all__ = ["save_store", "append_store", "compact_store", "load_store",
           "verify_store", "StoreVerification", "JournalRecoveryWarning",
           "mangle_url", "unmangle_name", "CACHE_DIR"]

#: Subdirectory holding the "locally cached copy of the HTML document"
#: (paper §4.2) — one file per URL, same name mangling as the ``,v``
#: archives.  Written by write-ahead transactions (:mod:`.wal`) and
#: reconciled against head revisions on load and by ``verify_store``.
CACHE_DIR = "cache"


class JournalRecoveryWarning(UserWarning):
    """A torn journal tail was truncated away during load, or a
    half-done transaction was rolled back."""

_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_"
)


def mangle_url(url: str) -> str:
    """A URL as a safe, reversible filename (percent-escaping)."""
    out = []
    for ch in url:
        if ch in _SAFE:
            out.append(ch)
        else:
            out.append(f"%{ord(ch):02X}")
    return "".join(out)


def unmangle_name(name: str) -> str:
    """Inverse of :func:`mangle_url` (tolerates malformed escapes)."""
    out = []
    index = 0
    while index < len(name):
        if name[index] == "%" and index + 2 < len(name) + 1:
            try:
                out.append(chr(int(name[index + 1:index + 3], 16)))
                index += 3
                continue
            except ValueError:
                pass
        out.append(name[index])
        index += 1
    return "".join(out)


def _write_users(store: SnapshotStore, directory: str) -> None:
    with open(os.path.join(directory, "users.ctl"), "w",
              encoding="utf-8") as handle:
        handle.write(store.users.serialize())


def save_store(store: SnapshotStore, directory: str) -> int:
    """Write the repository to ``directory``; returns files written.

    A full rewrite: every archive's ``,v`` file is re-serialized.  Any
    existing journal is superseded by the rewrite and removed, and the
    store's persisted-revision markers are brought up to date — this is
    the compaction step of the append-only scheme.
    """
    archives_dir = os.path.join(directory, "archives")
    os.makedirs(archives_dir, exist_ok=True)
    written = 0
    manifest: Dict[str, str] = {}
    for url, archive in sorted(store.archives.items()):
        name = mangle_url(url) + ",v"
        manifest[name] = url
        path = os.path.join(archives_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_rcsfile(archive))
        written += 1
    _write_users(store, directory)
    written += 1
    with open(os.path.join(directory, "MANIFEST"), "w",
              encoding="utf-8") as handle:
        for name, url in sorted(manifest.items()):
            handle.write(f"{name}\t{url}\n")
    written += 1
    clear_journal(directory)
    store.persisted_revisions = {
        url: archive.revision_count
        for url, archive in store.archives.items()
    }
    # Compaction may have dropped rolled-back revisions the cache files
    # still reflect; bring any existing cache files back to the heads.
    _reconcile_cache(store.archives, directory)
    return written


def compact_store(store: SnapshotStore, directory: str) -> int:
    """Merge the journal into the ``,v`` base (full rewrite) and drop
    it.  Identical to :func:`save_store`; named for intent."""
    return save_store(store, directory)


def append_store(store: SnapshotStore, directory: str) -> int:
    """Append-only save: journal every revision checked in since the
    last sync; returns the number of records appended.

    Only the journal grows — the ``,v`` base stays untouched — so the
    cost is proportional to the *new* data, not the repository size.
    The two small bookkeeping files (``users.ctl``, whose seen-markers
    move even without new revisions, and nothing else) are rewritten
    each sync.  With ``store.options.journal_persistence`` off this
    degrades to a full :func:`save_store` rewrite (and returns its
    file count), keeping call sites branch-free.
    """
    if not store.options.journal_persistence:
        return save_store(store, directory)
    os.makedirs(directory, exist_ok=True)
    records: List[JournalRecord] = []
    for url, archive in sorted(store.archives.items()):
        done = store.persisted_revisions.get(url, 0)
        if archive.revision_count <= done:
            continue
        for info in archive.revisions()[done:]:
            records.append(JournalRecord(
                url=url,
                revision=info.number,
                date=info.date,
                author=info.author,
                log=info.log,
                text=archive.checkout(info.number),
            ))
        store.persisted_revisions[url] = archive.revision_count
    appended = append_records(directory, records)
    _write_users(store, directory)
    _reconcile_cache(store.archives, directory)
    return appended


def load_store(store: SnapshotStore, directory: str) -> int:
    """Populate an (empty or existing) store from ``directory``.

    Returns the number of archives loaded.  Existing in-memory archives
    for the same URLs are replaced — the disk copy wins, as it would
    for a restarted CGI process.  After the ``,v`` base is read, the
    journal (if any) is replayed through the ordinary check-in path.

    A *torn tail* — the journal stops mid-record, the signature of a
    crash during an append — is recovered from, not fatal: the damaged
    suffix is truncated away, a :class:`JournalRecoveryWarning` is
    issued, and every record whose frame was committed is replayed.
    Damage with intact frames *beyond* it is different — truncating
    there would silently drop committed revisions — so mid-file
    corruption raises :class:`~.journal.JournalError`, as does a replay
    record that does not land on its recorded revision number.

    Transactional records (see :mod:`.wal`) are resolved before replay:
    effects of a transaction whose ``commit`` marker never reached disk
    are **rolled back** — their ``rev`` and ``seen`` records skipped, a
    :class:`JournalRecoveryWarning` naming the half-done operation
    issued — and any ``cache/`` file left behind by the interrupted
    write is reconciled against the surviving head revision.  Committed
    ``seen`` records are applied on top of ``users.ctl``, recovering
    control-file stamps that were journaled but never made it into a
    bookkeeping rewrite.
    """
    archives_dir = os.path.join(directory, "archives")
    loaded = 0
    manifest = _read_manifest(os.path.join(directory, "MANIFEST"))
    if os.path.isdir(archives_dir):
        for name in sorted(os.listdir(archives_dir)):
            if not name.endswith(",v"):
                continue
            with open(os.path.join(archives_dir, name), "r",
                      encoding="utf-8") as handle:
                archive = parse_rcsfile(handle.read())
            url = manifest.get(name) or unmangle_name(name[:-2])
            archive.name = url
            store.archives[url] = archive
            loaded += 1
    scan = scan_journal(directory)
    if scan.damage:
        if not scan.recoverable:
            raise JournalError(
                f"journal corrupted mid-file with intact records beyond "
                f"the damage — refusing to truncate: {scan.damage}"
            )
        warnings.warn(
            f"journal tail torn ({scan.damage}); truncating to last "
            f"intact record — {len(scan.records)} record(s) kept, "
            f"{scan.total_bytes - scan.valid_bytes} byte(s) dropped",
            JournalRecoveryWarning,
            stacklevel=2,
        )
        _truncate_journal(directory, scan.valid_bytes)
    resolved = resolve_entries(scan.entries)
    for txn in resolved.interrupted:
        warnings.warn(
            f"transaction {resolved.describe(txn)} never committed; "
            f"rolling back its journaled effects",
            JournalRecoveryWarning,
            stacklevel=2,
        )
    for record in resolved.revisions:
        if record.url not in store.archives:
            loaded += 1
        archive = store.archive_for(record.url)
        number, changed = archive.checkin(
            record.text, date=record.date,
            author=record.author, log=record.log,
        )
        if not changed or number != record.revision:
            raise JournalError(
                f"journal replay of {record.url} expected revision "
                f"{record.revision}, got {number} (changed={changed})"
            )
    # Everything now in memory is on disk (base + journal).
    store.persisted_revisions = {
        url: archive.revision_count
        for url, archive in store.archives.items()
    }
    # Loaded archives adopt the store's checkpoint spacing (keyframes
    # are derived data; this only rebuilds acceleration state).
    for archive in store.archives.values():
        if archive.keyframe_interval != store.options.keyframe_interval:
            archive.set_keyframe_interval(store.options.keyframe_interval)
    # users.ctl is the bookkeeping base; committed seen records layer
    # the stamps that were journaled after its last rewrite on top.
    users_path = os.path.join(directory, "users.ctl")
    if os.path.exists(users_path):
        with open(users_path, "r", encoding="utf-8") as handle:
            store.users = UserControl.deserialize(handle.read())
    for seen in resolved.seens:
        store.users.record(seen.user, seen.url, seen.revision, seen.when)
    # Stamps referencing revisions that did not survive (lost to a torn
    # tail, or rolled back with their transaction) are pruned — a
    # recovered store must not claim a user has seen a version it
    # cannot produce.
    dangling = [
        (user, url, seen.revision)
        for user, url, seen in store.users.all_stamps()
        if not _revision_known(store.archives.get(url), seen.revision)
    ]
    for user, url, revision in dangling:
        warnings.warn(
            f"dropping {user}'s stamp of {url} rev {revision}: the "
            f"revision is not in the recovered archive",
            JournalRecoveryWarning,
            stacklevel=2,
        )
        store.users.forget(user, url, revision)
    # A crash after the cache write but before the commit marker leaves
    # the cache file ahead of the (rolled-back) archive; rewrite any
    # such file from the revision that actually survived.
    _reconcile_cache(store.archives, directory, page_cache=store.page_cache)
    return loaded


def _revision_known(archive: Optional[RcsArchive], revision: str) -> bool:
    return archive is not None and any(
        info.number == revision for info in archive.revisions()
    )


def _reconcile_cache(
    archives: Dict[str, RcsArchive],
    directory: str,
    page_cache: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Make every ``cache/`` file match its archive's head revision.

    Returns a description of each fix.  Files for unknown or empty
    archives are removed; mismatched files are rewritten from the head.
    Only URLs that *have* a cache file are touched — the cache is an
    optional per-URL artifact, written by transactions.
    """
    cache_dir = os.path.join(directory, CACHE_DIR)
    fixed: List[str] = []
    if not os.path.isdir(cache_dir):
        return fixed
    by_name = {mangle_url(url): url for url in archives}
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if not os.path.isfile(path):
            continue
        if name.endswith(".tmp"):
            os.remove(path)
            fixed.append(f"cache/{name}: removed orphaned temp file")
            continue
        url = by_name.get(name)
        archive = archives.get(url) if url is not None else None
        if archive is None or archive.revision_count == 0:
            os.remove(path)
            fixed.append(f"cache/{name}: removed (no archived revisions)")
            continue
        head = archive.checkout(archive.head_revision)
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        if content != head:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(head)
            fixed.append(f"cache/{name}: rewritten from head revision")
        if page_cache is not None:
            page_cache[url] = head
    return fixed


def _truncate_journal(directory: str, valid_bytes: int) -> None:
    path = os.path.join(directory, JOURNAL_NAME)
    if valid_bytes <= 0:
        clear_journal(directory)
        return
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


@dataclass
class StoreVerification:
    """What :func:`verify_store` found.  ``problems`` are data-losing
    (corrupt archives, unreplayable or mid-file-damaged journal,
    cross-file invariant violations); ``notes`` are survivable oddities
    (torn tail, orphan manifest entries, transactions a load would roll
    back).  ``ok`` means :func:`load_store` would succeed and lose
    nothing that was ever committed.  ``repaired`` lists the fixes a
    ``repair=True`` run applied."""

    directory: str
    archives_checked: int = 0
    journal_records: int = 0
    cache_files_checked: int = 0
    seen_stamps_checked: int = 0
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    repaired: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        repaired = f", {len(self.repaired)} repair(s)" if self.repaired else ""
        return (
            f"{self.directory}: {verdict} — {self.archives_checked} "
            f"archive(s), {self.journal_records} journal record(s), "
            f"{self.cache_files_checked} cache file(s), "
            f"{self.seen_stamps_checked} seen stamp(s), "
            f"{len(self.notes)} note(s){repaired}"
        )

    def to_dict(self) -> Dict[str, object]:
        """Structured form for the CGI ``action=fsck`` endpoint and the
        crash-consistency bench gate."""
        return {
            "directory": self.directory,
            "ok": self.ok,
            "archives_checked": self.archives_checked,
            "journal_records": self.journal_records,
            "cache_files_checked": self.cache_files_checked,
            "seen_stamps_checked": self.seen_stamps_checked,
            "problems": list(self.problems),
            "notes": list(self.notes),
            "repaired": list(self.repaired),
        }


def verify_store(directory: str, repair: bool = False) -> StoreVerification:
    """Inspect an on-disk repository and *report* damage, never raise.

    The read-only counterpart of :func:`load_store`'s recovery: every
    ``,v`` file is parsed and its head checked out, the journal is
    scanned frame-by-frame, transactions are resolved, and the
    surviving records are replayed onto a scratch copy of the archives
    — so a replay mismatch is found before a real load trips over it.

    On top of the per-file checks, the **cross-file invariants** of
    paper §4.2's consistency triangle:

    * every revision named by a control-file stamp (``users.ctl`` plus
      committed journaled stamps) exists in its URL's archive;
    * every ``cache/`` file matches its archive's head revision.

    With ``repair=False`` (the default) nothing on disk is modified.
    ``repair=True`` fixes what is fixable — rewrites mismatched cache
    files from the head, drops control-file stamps naming revisions
    that do not exist, compacts rolled-back transactions out of the
    journal — then re-verifies and reports the remaining state with
    the applied fixes listed in ``repaired``.
    """
    report = StoreVerification(directory=directory)
    if not os.path.isdir(directory):
        report.notes.append("no repository directory")
        return report
    manifest = _read_manifest(os.path.join(directory, "MANIFEST"))
    archives_dir = os.path.join(directory, "archives")
    archives: Dict[str, RcsArchive] = {}
    unreadable: List[str] = []
    if os.path.isdir(archives_dir):
        for name in sorted(os.listdir(archives_dir)):
            if not name.endswith(",v"):
                continue
            report.archives_checked += 1
            url = manifest.get(name) or unmangle_name(name[:-2])
            try:
                with open(os.path.join(archives_dir, name), "r",
                          encoding="utf-8") as handle:
                    archive = parse_rcsfile(handle.read())
                if archive.revision_count:
                    archive.checkout(archive.head_revision)
            except Exception as exc:
                report.problems.append(f"archives/{name}: {exc}")
                unreadable.append(name)
                continue
            archive.name = url
            archives[url] = archive
    for name in manifest:
        if not os.path.exists(os.path.join(archives_dir, name)):
            report.notes.append(f"MANIFEST names missing archive {name}")
    scan = scan_journal(directory)
    report.journal_records = len(scan.records)
    if scan.damage:
        if scan.recoverable:
            report.notes.append(
                f"journal tail torn ({scan.damage}); load_store would "
                f"truncate {scan.total_bytes - scan.valid_bytes} byte(s)"
            )
        else:
            report.problems.append(
                f"journal corrupted mid-file with intact records beyond "
                f"the damage: {scan.damage}"
            )
    resolved = resolve_entries(scan.entries)
    for txn in resolved.interrupted:
        report.notes.append(
            f"transaction {resolved.describe(txn)} never committed; "
            f"load_store would roll it back"
        )
    if resolved.aborted:
        report.notes.append(
            f"{len(resolved.aborted)} cleanly aborted transaction(s) "
            f"awaiting compaction"
        )
    for record in resolved.revisions:
        archive = archives.get(record.url)
        if archive is None:
            archive = RcsArchive(name=record.url)
            archives[record.url] = archive
        try:
            number, changed = archive.checkin(
                record.text, date=record.date,
                author=record.author, log=record.log,
            )
        except Exception as exc:
            report.problems.append(
                f"journal replay of {record.url} rev {record.revision}: {exc}"
            )
            continue
        if not changed or number != record.revision:
            report.problems.append(
                f"journal replay of {record.url} expected revision "
                f"{record.revision}, got {number} (changed={changed})"
            )
    # The effective control-file state a load would build: users.ctl
    # plus the committed journaled stamps.
    users = UserControl()
    users_path = os.path.join(directory, "users.ctl")
    if os.path.exists(users_path):
        try:
            with open(users_path, "r", encoding="utf-8") as handle:
                users = UserControl.deserialize(handle.read())
        except Exception as exc:
            report.problems.append(f"users.ctl: {exc}")
    for seen in resolved.seens:
        users.record(seen.user, seen.url, seen.revision, seen.when)
    # Cross-file invariant 1: every stamped revision exists.  When a
    # recoverable torn tail is present the lost write explains (and a
    # load repairs) the dangling stamp, so it is a note, not a problem.
    torn_tail = bool(scan.damage) and scan.recoverable
    dangling: List[tuple] = []
    for user, url, seen in users.all_stamps():
        report.seen_stamps_checked += 1
        if not _revision_known(archives.get(url), seen.revision):
            finding = (
                f"users.ctl: {user} has seen {url} rev {seen.revision}, "
                f"which is not in the archive"
            )
            if torn_tail:
                report.notes.append(
                    finding + " (torn tail; a load would drop the stamp)"
                )
            else:
                report.problems.append(finding)
            dangling.append((user, url, seen.revision))
    # Cross-file invariant 2: every cache file matches its head.  A
    # mismatch on a URL some rolled-back transaction touched is the
    # expected debris of the interrupted write — a load reconciles it —
    # so, like the torn-tail stamps above, it is a note, not a problem.
    rolled_back_urls = {
        resolved.intents[txn].url
        for txn in resolved.rolled_back
        if txn in resolved.intents
    }
    cache_dir = os.path.join(directory, CACHE_DIR)
    stale_cache = False
    if os.path.isdir(cache_dir):
        by_name = {mangle_url(url): url for url in archives}
        for name in sorted(os.listdir(cache_dir)):
            path = os.path.join(cache_dir, name)
            if not os.path.isfile(path) or name.endswith(".tmp"):
                continue
            report.cache_files_checked += 1
            url = by_name.get(name) or unmangle_name(name)
            explained = url in rolled_back_urls
            archive = archives.get(url)
            if archive is None or archive.revision_count == 0:
                finding = (
                    f"cache/{name}: cached copy of a URL with no "
                    f"archived revisions"
                )
                stale_cache = True
                if explained:
                    report.notes.append(
                        finding + " (rolled-back transaction; a load "
                        "would remove it)"
                    )
                else:
                    report.problems.append(finding)
                continue
            with open(path, "r", encoding="utf-8") as handle:
                content = handle.read()
            if content != archive.checkout(archive.head_revision):
                finding = (
                    f"cache/{name}: cached copy does not match head "
                    f"revision {archive.head_revision}"
                )
                stale_cache = True
                if explained:
                    report.notes.append(
                        finding + " (rolled-back transaction; a load "
                        "would rewrite it)"
                    )
                else:
                    report.problems.append(finding)
    if not repair:
        return report
    fixable = (
        dangling or stale_cache or resolved.rolled_back
        or (scan.damage and scan.recoverable)
    )
    if not fixable:
        return report
    repaired = _repair_store(directory, archives, users, dangling)
    final = verify_store(directory, repair=False)
    final.repaired = repaired
    return final


def _repair_store(
    directory: str,
    archives: Dict[str, RcsArchive],
    users: UserControl,
    dangling: List[tuple],
) -> List[str]:
    """Write the verified scratch state back: drop dangling stamps,
    compact rolled-back transactions out of the journal, and reconcile
    the cache files against the surviving heads."""
    repaired: List[str] = []
    for user, url, revision in dangling:
        users.forget(user, url, revision)
        repaired.append(
            f"users.ctl: dropped {user}'s stamp of {url} rev {revision}"
        )
    scratch = SnapshotStore(SimClock(), agent=None)
    scratch.archives = dict(archives)
    scratch.users = users
    save_store(scratch, directory)
    repaired.append(
        "compacted archives and journal (rolled-back transactions dropped)"
    )
    repaired.extend(_reconcile_cache(archives, directory))
    return repaired


def _read_manifest(path: str) -> Dict[str, str]:
    if not os.path.exists(path):
        return {}
    out: Dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            name, _, url = line.rstrip("\n").partition("\t")
            if name and url:
                out[name] = url
    return out
