"""On-disk persistence for the snapshot repository.

The paper's service kept its state in a CGI-owned directory: RCS ``,v``
files per URL, plus "the per-user control file" — and its security
section turns on exactly that layout ("the data in the repository is
vulnerable to any CGI script and any user with access to the CGI area.
Data in this repository can be browsed, altered, or deleted").

This module writes and reads that directory:

* ``archives/<mangled-url>,v`` — one RCS file per tracked URL;
* ``users.ctl`` — the seen-version control file;
* ``MANIFEST`` — mangled-name → URL map (URL characters that cannot
  appear in filenames are percent-escaped, so the map is also
  reconstructible from names alone);
* ``journal.log`` — append-only records for revisions checked in since
  the last full rewrite (see :mod:`.journal`).

Everything is plain text on purpose: the repository is as browsable —
and as unprotected — as the paper describes.

Two save paths:

* :func:`save_store` — the full rewrite (every ``,v`` file), O(total
  archive).  A full rewrite supersedes the journal, so it doubles as
  **compaction** (:func:`compact_store` is the explicit spelling).
* :func:`append_store` — O(new data): one journal record per revision
  checked in since the last sync, plus rewrites of the two small
  bookkeeping files.  :func:`load_store` replays the journal on top of
  the compacted base through the ordinary deterministic ``checkin``
  path, reconstructing a store whose serialized archives are
  byte-identical to what a full rewrite would have produced.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List

from ...rcs.archive import RcsArchive
from ...rcs.rcsfile import parse_rcsfile, serialize_rcsfile
from .journal import (
    JOURNAL_NAME,
    JournalError,
    JournalRecord,
    append_records,
    clear_journal,
    scan_journal,
)
from .store import SnapshotStore
from .usercontrol import UserControl

__all__ = ["save_store", "append_store", "compact_store", "load_store",
           "verify_store", "StoreVerification", "JournalRecoveryWarning",
           "mangle_url", "unmangle_name"]


class JournalRecoveryWarning(UserWarning):
    """A torn journal tail was truncated away during load."""

_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_"
)


def mangle_url(url: str) -> str:
    """A URL as a safe, reversible filename (percent-escaping)."""
    out = []
    for ch in url:
        if ch in _SAFE:
            out.append(ch)
        else:
            out.append(f"%{ord(ch):02X}")
    return "".join(out)


def unmangle_name(name: str) -> str:
    """Inverse of :func:`mangle_url` (tolerates malformed escapes)."""
    out = []
    index = 0
    while index < len(name):
        if name[index] == "%" and index + 2 < len(name) + 1:
            try:
                out.append(chr(int(name[index + 1:index + 3], 16)))
                index += 3
                continue
            except ValueError:
                pass
        out.append(name[index])
        index += 1
    return "".join(out)


def _write_users(store: SnapshotStore, directory: str) -> None:
    with open(os.path.join(directory, "users.ctl"), "w",
              encoding="utf-8") as handle:
        handle.write(store.users.serialize())


def save_store(store: SnapshotStore, directory: str) -> int:
    """Write the repository to ``directory``; returns files written.

    A full rewrite: every archive's ``,v`` file is re-serialized.  Any
    existing journal is superseded by the rewrite and removed, and the
    store's persisted-revision markers are brought up to date — this is
    the compaction step of the append-only scheme.
    """
    archives_dir = os.path.join(directory, "archives")
    os.makedirs(archives_dir, exist_ok=True)
    written = 0
    manifest: Dict[str, str] = {}
    for url, archive in sorted(store.archives.items()):
        name = mangle_url(url) + ",v"
        manifest[name] = url
        path = os.path.join(archives_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_rcsfile(archive))
        written += 1
    _write_users(store, directory)
    written += 1
    with open(os.path.join(directory, "MANIFEST"), "w",
              encoding="utf-8") as handle:
        for name, url in sorted(manifest.items()):
            handle.write(f"{name}\t{url}\n")
    written += 1
    clear_journal(directory)
    store.persisted_revisions = {
        url: archive.revision_count
        for url, archive in store.archives.items()
    }
    return written


def compact_store(store: SnapshotStore, directory: str) -> int:
    """Merge the journal into the ``,v`` base (full rewrite) and drop
    it.  Identical to :func:`save_store`; named for intent."""
    return save_store(store, directory)


def append_store(store: SnapshotStore, directory: str) -> int:
    """Append-only save: journal every revision checked in since the
    last sync; returns the number of records appended.

    Only the journal grows — the ``,v`` base stays untouched — so the
    cost is proportional to the *new* data, not the repository size.
    The two small bookkeeping files (``users.ctl``, whose seen-markers
    move even without new revisions, and nothing else) are rewritten
    each sync.  With ``store.options.journal_persistence`` off this
    degrades to a full :func:`save_store` rewrite (and returns its
    file count), keeping call sites branch-free.
    """
    if not store.options.journal_persistence:
        return save_store(store, directory)
    os.makedirs(directory, exist_ok=True)
    records: List[JournalRecord] = []
    for url, archive in sorted(store.archives.items()):
        done = store.persisted_revisions.get(url, 0)
        if archive.revision_count <= done:
            continue
        for info in archive.revisions()[done:]:
            records.append(JournalRecord(
                url=url,
                revision=info.number,
                date=info.date,
                author=info.author,
                log=info.log,
                text=archive.checkout(info.number),
            ))
        store.persisted_revisions[url] = archive.revision_count
    appended = append_records(directory, records)
    _write_users(store, directory)
    return appended


def load_store(store: SnapshotStore, directory: str) -> int:
    """Populate an (empty or existing) store from ``directory``.

    Returns the number of archives loaded.  Existing in-memory archives
    for the same URLs are replaced — the disk copy wins, as it would
    for a restarted CGI process.  After the ``,v`` base is read, the
    journal (if any) is replayed through the ordinary check-in path.

    A *torn tail* — the journal stops mid-record, the signature of a
    crash during an append — is recovered from, not fatal: the damaged
    suffix is truncated away, a :class:`JournalRecoveryWarning` is
    issued, and every record whose frame was committed is replayed.
    Damage with intact frames *beyond* it is different — truncating
    there would silently drop committed revisions — so mid-file
    corruption raises :class:`~.journal.JournalError`, as does a replay
    record that does not land on its recorded revision number.
    """
    archives_dir = os.path.join(directory, "archives")
    loaded = 0
    manifest = _read_manifest(os.path.join(directory, "MANIFEST"))
    if os.path.isdir(archives_dir):
        for name in sorted(os.listdir(archives_dir)):
            if not name.endswith(",v"):
                continue
            with open(os.path.join(archives_dir, name), "r",
                      encoding="utf-8") as handle:
                archive = parse_rcsfile(handle.read())
            url = manifest.get(name) or unmangle_name(name[:-2])
            archive.name = url
            store.archives[url] = archive
            loaded += 1
    scan = scan_journal(directory)
    if scan.damage:
        if not scan.recoverable:
            raise JournalError(
                f"journal corrupted mid-file with intact records beyond "
                f"the damage — refusing to truncate: {scan.damage}"
            )
        warnings.warn(
            f"journal tail torn ({scan.damage}); truncating to last "
            f"intact record — {len(scan.records)} record(s) kept, "
            f"{scan.total_bytes - scan.valid_bytes} byte(s) dropped",
            JournalRecoveryWarning,
            stacklevel=2,
        )
        _truncate_journal(directory, scan.valid_bytes)
    for record in scan.records:
        if record.url not in store.archives:
            loaded += 1
        archive = store.archive_for(record.url)
        number, changed = archive.checkin(
            record.text, date=record.date,
            author=record.author, log=record.log,
        )
        if not changed or number != record.revision:
            raise JournalError(
                f"journal replay of {record.url} expected revision "
                f"{record.revision}, got {number} (changed={changed})"
            )
    # Everything now in memory is on disk (base + journal).
    store.persisted_revisions = {
        url: archive.revision_count
        for url, archive in store.archives.items()
    }
    # Loaded archives adopt the store's checkpoint spacing (keyframes
    # are derived data; this only rebuilds acceleration state).
    for archive in store.archives.values():
        if archive.keyframe_interval != store.options.keyframe_interval:
            archive.set_keyframe_interval(store.options.keyframe_interval)
    users_path = os.path.join(directory, "users.ctl")
    if os.path.exists(users_path):
        with open(users_path, "r", encoding="utf-8") as handle:
            store.users = UserControl.deserialize(handle.read())
    return loaded


def _truncate_journal(directory: str, valid_bytes: int) -> None:
    path = os.path.join(directory, JOURNAL_NAME)
    if valid_bytes <= 0:
        clear_journal(directory)
        return
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


@dataclass
class StoreVerification:
    """What :func:`verify_store` found.  ``problems`` are data-losing
    (corrupt archives, unreplayable or mid-file-damaged journal);
    ``notes`` are survivable oddities (torn tail, orphan manifest
    entries).  ``ok`` means :func:`load_store` would succeed and lose
    nothing that was ever committed."""

    directory: str
    archives_checked: int = 0
    journal_records: int = 0
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"{self.directory}: {verdict} — {self.archives_checked} "
            f"archive(s), {self.journal_records} journal record(s), "
            f"{len(self.notes)} note(s)"
        )


def verify_store(directory: str) -> StoreVerification:
    """Inspect an on-disk repository and *report* damage, never raise.

    The read-only counterpart of :func:`load_store`'s recovery: every
    ``,v`` file is parsed and its head checked out, the journal is
    scanned frame-by-frame, and the surviving records are replayed onto
    a scratch copy of the archives — so a replay mismatch is found
    before a real load trips over it.  Nothing on disk is modified.
    """
    report = StoreVerification(directory=directory)
    if not os.path.isdir(directory):
        report.notes.append("no repository directory")
        return report
    manifest = _read_manifest(os.path.join(directory, "MANIFEST"))
    archives_dir = os.path.join(directory, "archives")
    archives: Dict[str, RcsArchive] = {}
    if os.path.isdir(archives_dir):
        for name in sorted(os.listdir(archives_dir)):
            if not name.endswith(",v"):
                continue
            report.archives_checked += 1
            url = manifest.get(name) or unmangle_name(name[:-2])
            try:
                with open(os.path.join(archives_dir, name), "r",
                          encoding="utf-8") as handle:
                    archive = parse_rcsfile(handle.read())
                if archive.revision_count:
                    archive.checkout(archive.head_revision)
            except Exception as exc:
                report.problems.append(f"archives/{name}: {exc}")
                continue
            archive.name = url
            archives[url] = archive
    for name in manifest:
        if not os.path.exists(os.path.join(archives_dir, name)):
            report.notes.append(f"MANIFEST names missing archive {name}")
    scan = scan_journal(directory)
    report.journal_records = len(scan.records)
    if scan.damage:
        if scan.recoverable:
            report.notes.append(
                f"journal tail torn ({scan.damage}); load_store would "
                f"truncate {scan.total_bytes - scan.valid_bytes} byte(s)"
            )
        else:
            report.problems.append(
                f"journal corrupted mid-file with intact records beyond "
                f"the damage: {scan.damage}"
            )
    for record in scan.records:
        archive = archives.get(record.url)
        if archive is None:
            archive = RcsArchive(name=record.url)
            archives[record.url] = archive
        try:
            number, changed = archive.checkin(
                record.text, date=record.date,
                author=record.author, log=record.log,
            )
        except Exception as exc:
            report.problems.append(
                f"journal replay of {record.url} rev {record.revision}: {exc}"
            )
            continue
        if not changed or number != record.revision:
            report.problems.append(
                f"journal replay of {record.url} expected revision "
                f"{record.revision}, got {number} (changed={changed})"
            )
    users_path = os.path.join(directory, "users.ctl")
    if os.path.exists(users_path):
        try:
            with open(users_path, "r", encoding="utf-8") as handle:
                UserControl.deserialize(handle.read())
        except Exception as exc:
            report.problems.append(f"users.ctl: {exc}")
    return report


def _read_manifest(path: str) -> Dict[str, str]:
    if not os.path.exists(path):
        return {}
    out: Dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            name, _, url = line.rstrip("\n").partition("\t")
            if name and url:
                out[name] = url
    return out
