"""The snapshot CGI: AIDE's HTTP face.

One CGI script (``/cgi-bin/snapshot``) dispatches on ``action``:

* ``remember`` — save a copy of a page for a user;
* ``diff`` — marked-up differences since the user last saved it (or
  between two explicit revisions ``r1``/``r2``);
* ``history`` — "a full log of versions of this page, with the ability
  to run HtmlDiff on any pair of versions or to view a particular
  version directly";
* ``view`` — one stored version, BASE-rewritten;
* no action — the registration form ("Pages can be registered with the
  service via an HTML form").

The identifier is an email address, unauthenticated — Section 4.2's
security discussion applies verbatim and deliberately.

Long operations go through :class:`~repro.core.snapshot.keepalive.KeepAlive`;
surviving responses carry the child's padding spaces, timed-out ones
become 504s (what the browser saw when the trick was disabled).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ...html.entities import encode_entities
from ...memento.endpoints import (
    MEMENTO_ACTIONS,
    MementoEndpoints,
    MementoHttpError,
)
from ...obs import to_json, to_prometheus
from ...web.cgi import encode_query_string, parse_query_string
from ...web.http import Request, Response, make_response
from .keepalive import CgiTimeout, KeepAlive
from .persistence import verify_store
from .store import ContentQuarantined, SnapshotError, SnapshotStore

__all__ = ["SnapshotService", "OperationCosts", "stats_page_html",
           "fsck_page_html"]


def _render_stats_value(value) -> str:
    if isinstance(value, dict):
        items = "".join(
            f"<DT>{encode_entities(str(key))}</DT>"
            f"<DD>{_render_stats_value(val)}</DD>"
            for key, val in value.items()
        )
        return f"<DL>{items}</DL>"
    if isinstance(value, float):
        return f"{value:.3f}"
    return encode_entities(str(value))


def stats_page_html(stats: dict) -> str:
    """The ``action=stats`` operator page for any layered stats dict
    (shared by the CGI service and the sharded diff server)."""
    return (
        "<HTML><HEAD><TITLE>Snapshot store statistics</TITLE></HEAD>"
        "<BODY><H1>Snapshot store statistics</H1>"
        f"{_render_stats_value(stats)}</BODY></HTML>"
    )


def fsck_page_html(report) -> str:
    """The ``action=fsck`` page body for any verification report with
    the ``ok``/``summary()``/``problems``/``notes``/``repaired``/
    ``to_dict()`` surface (plain or sharded)."""
    verdict = "consistent" if report.ok else "INCONSISTENT"

    def listing(title: str, items) -> str:
        if not items:
            return ""
        rows = "".join(f"<LI>{encode_entities(item)}</LI>" for item in items)
        return f"<H2>{title}</H2><UL>{rows}</UL>"

    return (
        "<HTML><HEAD><TITLE>Repository check</TITLE></HEAD><BODY>"
        f"<H1>Repository check: {verdict}</H1>"
        f"<P>{encode_entities(report.summary())}</P>"
        f"{listing('Problems', report.problems)}"
        f"{listing('Notes', report.notes)}"
        f"{listing('Repairs applied', report.repaired)}"
        f"<PRE>{encode_entities(json.dumps(report.to_dict(), indent=2))}"
        "</PRE></BODY></HTML>"
    )


@dataclass
class OperationCosts:
    """Simulated wall-clock cost of the expensive steps (seconds).

    The paper's problem case: "the script might have to retrieve a page
    over the Internet and then do a time-consuming comparison against
    an archived version."
    """

    fetch: int = 20
    htmldiff: int = 30
    cheap: int = 1


class SnapshotService:
    """The CGI wrapper around a :class:`SnapshotStore`."""

    def __init__(
        self,
        store: SnapshotStore,
        keepalive: Optional[KeepAlive] = None,
        costs: Optional[OperationCosts] = None,
        script_path: str = "/cgi-bin/snapshot",
        repository_dir: Optional[str] = None,
    ) -> None:
        self.store = store
        self.keepalive = keepalive or KeepAlive()
        self.costs = costs or OperationCosts()
        self.script_path = script_path
        #: On-disk repository for the ``fsck`` action; None disables it.
        self.repository_dir = repository_dir
        self._memento_endpoints: Optional[MementoEndpoints] = None

    @property
    def memento(self) -> MementoEndpoints:
        """The Memento endpoints bound to this service's store."""
        if self._memento_endpoints is None:
            self._memento_endpoints = MementoEndpoints(
                self.store, self.script_path
            )
        return self._memento_endpoints

    # ------------------------------------------------------------------
    # CGI entry point
    # ------------------------------------------------------------------
    def __call__(self, request: Request, now: int) -> Response:
        if request.method == "POST":
            params = parse_query_string(request.body)
        else:
            params = parse_query_string(request.url.query)
        action = params.get("action", "")
        url = params.get("url", "")
        user = params.get("user", "")
        try:
            if not action:
                return make_response(200, self._form_page())
            if action == "stats":
                return self._stats()
            if action == "metrics":
                return self._metrics(params.get("format", "text"))
            if action == "fsck":
                return self._fsck(repair=params.get("repair") == "1")
            if not url:
                return self._error_page(400, "missing the url parameter")
            if action == "remember":
                return self._remember(user, url)
            if action == "diff":
                return self._diff(user, url, params.get("r1"), params.get("r2"))
            if action == "history":
                return self._history(user, url)
            if action == "view":
                return self._view(url, params.get("rev"), params.get("date"))
            if action in MEMENTO_ACTIONS:
                return self._memento(action, url, request, params)
            return self._error_page(400, f"unknown action {action!r}")
        except MementoHttpError as exc:
            return self._error_page(exc.status, exc.message)
        except ContentQuarantined as exc:
            # A guard refusal is a verdict, not a failure: 422 with the
            # guard's reason, deterministically, instead of a 500.
            return self._error_page(422, str(exc))
        except SnapshotError as exc:
            return self._error_page(404, str(exc))
        except CgiTimeout as exc:
            return make_response(
                504, f"<P>httpd timed out the snapshot script: "
                     f"{encode_entities(str(exc))}</P>"
            )

    # ------------------------------------------------------------------
    def _run_guarded(self, duration: int, op: Callable) -> Tuple[str, object]:
        """Run a long operation under the keep-alive guard.

        On a legacy store this is exactly the historical behaviour (a
        doomed operation raises before starting).  On a transactional
        store the timeout is delivered at the commit barrier instead,
        so the operation rolls back rather than leaving partial state;
        if the operation ends without crossing a barrier, the armed
        verdict still stands — httpd closed the connection either way.
        """
        padding = self.keepalive.guard(self.store, duration)
        try:
            result = op()
        finally:
            if self.keepalive.unguard(self.store):
                raise CgiTimeout(
                    f"no output for {duration}s exceeds httpd's "
                    f"{self.keepalive.httpd_timeout}s timeout"
                )
        return padding, result

    def _remember(self, user: str, url: str) -> Response:
        if not user:
            return self._error_page(400, "an identifier (email) is required")
        padding, result = self._run_guarded(
            self.costs.fetch, lambda: self.store.remember(user, url)
        )
        verdict = (
            f"saved as revision {result.revision}"
            if result.changed
            else f"unchanged; you are marked as having seen revision "
                 f"{result.revision}"
        )
        links = self._action_links(url, user)
        body = (
            "<HTML><HEAD><TITLE>Remembered</TITLE></HEAD><BODY>"
            f"<H1>Snapshot taken</H1><P><A HREF=\"{url}\">"
            f"{encode_entities(url)}</A>: {verdict} "
            f"({result.fetched_bytes} bytes retrieved).</P>{links}"
            "</BODY></HTML>"
        )
        return make_response(200, padding + body)

    def _diff(
        self, user: str, url: str, r1: Optional[str], r2: Optional[str]
    ) -> Response:
        if not user and r1 is None:
            return self._error_page(
                400, "a user (for 'since I last saved') or explicit "
                     "revisions are required"
            )
        padding, result = self._run_guarded(
            self.costs.fetch + self.costs.htmldiff,
            lambda: self.store.diff(user, url, rev_old=r1, rev_new=r2),
        )
        return make_response(200, padding + result.html)

    def _history(self, user: str, url: str) -> Response:
        padding = self.keepalive.padding(self.costs.cheap)
        rows = []
        history = self.store.history(user, url)
        for info, seen_by_user in reversed(history):
            view_link = self._link(
                {"action": "view", "url": url, "rev": info.number},
                f"view {info.number}",
            )
            marker = " &#183; <B>seen by you</B>" if seen_by_user else ""
            row = (
                f"<LI>{info.number} &#183; {info.date_string} &#183; "
                f"{encode_entities(info.author)}{marker} &#183; {view_link}"
            )
            rows.append(row)
        # Pairwise diff links between consecutive revisions.
        numbers = [info.number for info, _ in history]
        pair_links = []
        for older, newer in zip(numbers, numbers[1:]):
            pair_links.append(
                self._link(
                    {"action": "diff", "url": url, "user": user,
                     "r1": older, "r2": newer},
                    f"diff {older} &rarr; {newer}",
                )
            )
        pairs_html = (
            "<P>Compare: " + " | ".join(pair_links) + "</P>" if pair_links else ""
        )
        body = (
            "<HTML><HEAD><TITLE>History</TITLE></HEAD><BODY>"
            f"<H1>Versions of {encode_entities(url)}</H1>"
            f"<UL>{''.join(rows)}</UL>{pairs_html}</BODY></HTML>"
        )
        return make_response(200, padding + body)

    def _view(self, url: str, revision: Optional[str],
              date: Optional[str] = None) -> Response:
        padding = self.keepalive.padding(self.costs.cheap)
        if date is not None and revision is None:
            # §2.2's time travel: the page as it existed at a date.
            try:
                when = int(date)
            except ValueError:
                return self._error_page(400, f"unparseable date {date!r}")
            text = self.store.view_at(url, when)
        else:
            text = self.store.view(url, revision)
        return make_response(200, padding + text)

    def _memento(self, action: str, url: str, request: Request,
                 params: dict) -> Response:
        """RFC 7089 actions.  The URI-M body is padded through the same
        keep-alive path as ``action=view`` so a TimeGate redirect is
        byte-identical to the ``view``/``view_at`` it negotiates for;
        the 302 and the link-format TimeMap are machine-readable and
        stay unpadded."""
        if action == "timegate":
            return self.memento.timegate(
                url, request, policy=params.get("policy")
            )
        if action == "timemap":
            return self.memento.timemap(url, params.get("format", "link"))
        padding = self.keepalive.padding(self.costs.cheap)
        return self.memento.memento(url, params.get("rev"), padding=padding)

    def _stats(self) -> Response:
        """Operator page: every storage layer's counters in one table
        (``store.stats()`` rendered as nested definition lists)."""
        padding = self.keepalive.padding(self.costs.cheap)
        return make_response(200, padding + stats_page_html(self.store.stats()))

    def _metrics(self, fmt: str) -> Response:
        """Scrape endpoint (``action=metrics``): the store's metrics
        registry in Prometheus text exposition format, or as a JSON
        object with ``format=json``.  Collectors (the legacy ``stats()``
        dicts) are polled at scrape time, so the page is current even
        when no instrumented code path has run."""
        snapshot = self.store.obs.snapshot()
        if fmt == "json":
            return make_response(200, to_json(snapshot),
                                 content_type="application/json")
        if fmt != "text":
            return self._error_page(400, f"unknown metrics format {fmt!r}")
        return make_response(200, to_prometheus(snapshot),
                             content_type="text/plain")

    def _fsck(self, repair: bool = False) -> Response:
        """Operator page: cross-file consistency check of the on-disk
        repository (``action=fsck``, ``&repair=1`` to fix what is
        fixable).  The page carries the structured report as JSON so
        scripts can consume the same endpoint."""
        if self.repository_dir is None:
            return self._error_page(
                400, "fsck requires an on-disk repository directory"
            )
        padding = self.keepalive.padding(self.costs.cheap)
        report = verify_store(self.repository_dir, repair=repair)
        return make_response(200 if report.ok else 500,
                             padding + fsck_page_html(report))

    # ------------------------------------------------------------------
    def _link(self, params: dict, label: str) -> str:
        query = encode_query_string({k: v for k, v in params.items() if v})
        return f'<A HREF="{self.script_path}?{query}">[{label}]</A>'

    def _action_links(self, url: str, user: str) -> str:
        return "<P>" + " ".join(
            self._link({"action": action, "url": url, "user": user},
                       action.capitalize())
            for action in ("remember", "diff", "history")
        ) + "</P>"

    def _form_page(self) -> str:
        return (
            "<HTML><HEAD><TITLE>AIDE snapshot service</TITLE></HEAD><BODY>"
            "<H1>AT&amp;T Internet Difference Engine</H1>"
            f'<FORM METHOD=GET ACTION="{self.script_path}">'
            "<P>URL: <INPUT NAME=url SIZE=60></P>"
            "<P>Your email: <INPUT NAME=user SIZE=30></P>"
            "<P>Action: <SELECT NAME=action>"
            "<OPTION VALUE=remember>Remember"
            "<OPTION VALUE=diff>Diff"
            "<OPTION VALUE=history>History"
            "</SELECT></P>"
            "<P><INPUT TYPE=submit VALUE=Go></P>"
            "</FORM></BODY></HTML>"
        )

    def _error_page(self, status: int, message: str) -> Response:
        return make_response(
            status,
            "<HTML><HEAD><TITLE>Snapshot error</TITLE></HEAD><BODY>"
            f"<H1>Snapshot error</H1><P>{encode_entities(message)}</P>"
            "</BODY></HTML>",
        )
