"""The snapshot store: RCS archives per URL, plus user bookkeeping.

The paper's "external service" design (Section 4.1): the store is
neither the content provider nor the client; anyone can register a page
and later retrieve differences.  Responsibilities:

* **remember** — fetch the live page, check it into the URL's RCS
  archive (a no-op when unchanged), stamp the user's control file;
* **diff** — HtmlDiff between the user's last-saved version and the
  newest stored version (or any explicit pair), with output caching and
  simultaneous-request coalescing;
* **history** — the version log annotated with the user's seen set;
* **view** — any stored version, BASE-rewritten so relative links still
  resolve against the original site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ...html.lexer import Tag, tokenize_html
from ...obs import NOOP as NOOP_OBS
from ...rcs.archive import RcsArchive, RevisionInfo, UnknownRevision
from ...simclock import SimClock
from ...web.client import UserAgent
from ...web.guards import ContentGuard, ContentGuardError
from ...web.http import NetworkError
from ...web.url import parse_url
from ..htmldiff.api import HtmlDiffResult, html_diff
from ..htmldiff.options import HtmlDiffOptions
from .checkoutcache import CheckoutCache
from .diffcache import DiffCache
from .locking import LockManager, RequestCoalescer
from .options import StoreOptions
from .usercontrol import UserControl

if TYPE_CHECKING:
    from .sched import Failpoints
    from .wal import Transaction, WriteAheadLog

__all__ = ["SnapshotStore", "RememberResult", "SnapshotError",
           "ContentQuarantined", "StoreOptions", "add_base_directive"]


class SnapshotError(Exception):
    """A snapshot operation could not be completed (message is
    user-facing; the CGI layer turns it into an HTML error page)."""


class ContentQuarantined(SnapshotError):
    """The content guard refused a fetched or supplied body.

    Raised *inside* the check-in transaction, so the WAL rolls the
    whole operation back and the archive never records the hostile
    bytes.  The CGI layer renders this as a deterministic 422 verdict
    rather than a 500 — the refusal is the service working, not the
    service failing."""

    def __init__(self, url: str, guard: str, detail: str) -> None:
        super().__init__(f"refused {url}: {guard}: {detail}")
        self.url = url
        self.guard = guard
        self.detail = detail


@dataclass
class RememberResult:
    """Outcome of a remember (check-in) request."""

    url: str
    revision: str
    changed: bool
    fetched_bytes: int
    when: int


def add_base_directive(html: str, original_url: str) -> str:
    """Insert ``<BASE HREF=...>`` so relative links resolve.

    "HTML supports a BASE directive that makes relative links relative
    to a different URL, which mostly addresses this problem."  The
    directive goes right after ``<HEAD>`` when present, else at the
    front.  An existing BASE is left alone — the page author knew
    better.
    """
    for node in tokenize_html(html):
        if isinstance(node, Tag) and node.name == "BASE" and not node.closing:
            return html
    base = f'<BASE HREF="{original_url}">'
    lower = html.lower()
    idx = lower.find("<head")
    if idx != -1:
        end = html.find(">", idx)
        if end != -1:
            return html[: end + 1] + base + html[end + 1:]
    return base + html


class SnapshotStore:
    """One snapshot service instance (the AIDE server's heart)."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        diff_options: Optional[HtmlDiffOptions] = None,
        diff_cache_ttl: int = 3600,
        diff_cache_size: int = 256,
        options: Optional[StoreOptions] = None,
        obs=None,
        guard: Optional[ContentGuard] = None,
        quarantine=None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.diff_options = diff_options
        self.options = options if options is not None else StoreOptions()
        self.obs = obs if obs is not None else NOOP_OBS
        #: Optional hostile-content guard; when attached, every fetched
        #: or caller-supplied body must be admitted before it can reach
        #: an archive, and diffs run under the guard's work budget.
        self.guard = guard
        #: Optional dead-letter journal (:class:`QuarantineJournal`)
        #: holding refused bytes for ``aide quarantine list/retry``.
        self.quarantine = quarantine
        self.archives: Dict[str, RcsArchive] = {}
        self.users = UserControl()
        self.locks = LockManager()
        self.coalescer = RequestCoalescer(clock, ttl=diff_cache_ttl)
        #: Diffs of stored revision pairs are immutable, so they are
        #: shared across users and across time, not just across the
        #: coalescer's same-instant window.  ``diff_cache_size=0``
        #: disables the cache.
        self.diff_cache = DiffCache(capacity=diff_cache_size)
        #: Checked-out revision texts are immutable too; this cache sits
        #: under the diff cache so a Diff link checks out each endpoint
        #: once, shared with view/view_at/time travel.
        self.checkout_cache = CheckoutCache(
            capacity=self.options.checkout_cache_size
        )
        #: Local cached copy of the most recent fetch per URL (the
        #: paper's "locally cached copy of the HTML document").
        self.page_cache: Dict[str, str] = {}
        #: url → number of revisions already on disk (compacted ,v base
        #: plus journal records); maintained by the persistence layer.
        self.persisted_revisions: Dict[str, int] = {}
        self.htmldiff_invocations = 0
        #: Optional transaction manager (``attach_wal``).  Without one,
        #: every mutating path behaves exactly as before — the
        #: write-ahead machinery is overhead-only and opt-in.
        self.wal: Optional["WriteAheadLog"] = None
        #: Optional crash-point hub (``attach_failpoints``); ``None``
        #: makes every ``_step`` a no-op.
        self.failpoints: Optional["Failpoints"] = None
        #: Optional crawl-stats provider (``attach_crawl_stats``): the
        #: w3newer tracker's scheduling/estimator/governor counters,
        #: surfaced under ``crawl`` in :meth:`stats`.
        self._crawl_stats = None
        # Observability: the aggregated stats() dict doubles as the
        # registry collector for every storage layer, and the lock
        # manager records wait histograms through the same handle.
        self.obs.register_stats("snapshot.store", self.stats)
        self.locks.attach_obs(self.obs)
        self._c_remembers = self.obs.counter("snapshot.remember.requests")
        self._c_diffs = self.obs.counter("snapshot.diff.requests")
        self._c_views = self.obs.counter("snapshot.view.requests")
        self._c_checkins = self.obs.counter("snapshot.checkin.revisions")
        self._c_fetch_bytes = self.obs.counter("snapshot.fetch.bytes")
        self._c_wal_commits = self.obs.counter("snapshot.wal.commits")
        self._c_wal_rollbacks = self.obs.counter("snapshot.wal.rollbacks")
        self._c_quarantined = self.obs.counter("snapshot.quarantined")

    # ------------------------------------------------------------------
    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Make remember / check-in / batch operations transactional:
        intent + effect records through ``wal``'s journal, rollback on
        abort, recovery-driven rollback after a crash."""
        self.wal = wal

    def attach_failpoints(self, failpoints: "Failpoints") -> None:
        """Thread the named crash points through this store's
        mutating operations."""
        self.failpoints = failpoints

    def attach_crawl_stats(self, provider) -> None:
        """Surface a crawl tracker's stats under ``crawl`` in
        :meth:`stats` (and therefore the CGI ``action=stats`` page).
        ``provider`` is a zero-argument callable returning a dict —
        typically ``W3Newer.crawl_stats``."""
        self._crawl_stats = provider

    def _step(self, point: str) -> None:
        if self.failpoints is not None:
            self.failpoints.step(point)

    # ------------------------------------------------------------------
    def _canonical(self, url: str) -> str:
        return str(parse_url(url).normalized())

    def archive_for(self, url: str) -> RcsArchive:
        key = self._canonical(url)
        archive = self.archives.get(key)
        if archive is None:
            archive = RcsArchive(
                name=key, keyframe_interval=self.options.keyframe_interval
            )
            self.archives[key] = archive
        return archive

    # ------------------------------------------------------------------
    # remember
    # ------------------------------------------------------------------
    def remember(self, user: str, url: str) -> RememberResult:
        """Fetch the live page and check it in for ``user``.  (The
        check-in transaction is bracketed by a ``snapshot.remember``
        span; see :mod:`repro.obs`.)"""
        with self.obs.span("snapshot.remember", url=self._canonical(url),
                           user=user) as span:
            self._c_remembers.inc()
            result = self._remember_impl(user, url)
            span.set(revision=result.revision, changed=result.changed,
                     fetched_bytes=result.fetched_bytes)
            self._c_fetch_bytes.inc(result.fetched_bytes)
            if result.changed:
                self._c_checkins.inc()
            return result

    def _remember_impl(self, user: str, url: str) -> RememberResult:
        """Fetch the live page and check it in for ``user``.

        "Though the page is retrieved, the RCS ci command ensures that
        it is not saved if it is unchanged from the previous time it
        was stored away."  Either way the user's control file records
        that they have now seen the head revision.

        With ``options.coalesce_checkins``, concurrent remembers of the
        same URL (same simulated instant) share one fetch *and* one RCS
        check-in under a single URL-lock acquisition — the second user
        "would just wait for the page and then return, rather than
        repeating the work" (Section 4.2) — and each requester's
        control file is still stamped individually.
        """
        key = self._canonical(url)
        if self.locks.scheduler is not None:
            return self._remember_queued(user, key)
        if not self.options.coalesce_checkins:
            txn = self._begin("remember", key, user, (user,))
            try:
                with self.locks.acquire(f"url:{key}"), \
                        self.locks.acquire(f"user:{user}"):
                    body = self.coalescer.do(
                        f"fetch:{key}:{self.clock.now}",
                        lambda: self._fetch(key),
                    )
                    self._step("remember.fetched")
                    result = self._checkin(user, key, body, txn)
                return self._commit(txn, result)
            except Exception:
                self._rollback(txn)
                raise
        # Coalesced: the fetch runs lock-free (it has no effects to
        # protect), the winner's check-in takes the URL lock inside the
        # coalescer, and the control-file stamp takes the user lock —
        # per-URL strictly before per-user, never nested the other way.
        txn = self._begin("remember", key, user, (user,))
        try:
            body = self.coalescer.do(
                f"fetch:{key}:{self.clock.now}", lambda: self._fetch(key)
            )
            self._step("remember.fetched")
            revision, changed, nbytes = self._coalesced_checkin(
                user, key, body, txn
            )
            with self.locks.acquire(f"user:{user}"):
                self._stamp(txn, user, key, revision)
            return self._commit(txn, RememberResult(
                url=key, revision=revision, changed=changed,
                fetched_bytes=nbytes, when=self.clock.now,
            ))
        except Exception:
            self._rollback(txn)
            raise

    def _remember_queued(self, user: str, key: str) -> RememberResult:
        """Remember under a scheduler: the fetch happens *inside* the
        URL lock, so a second simultaneous request for the same page
        parks on the queue and, once woken, joins the winner's work
        through the coalescer — "the second snapshot process would just
        wait for the page and then return" (§4.2)."""
        txn = self._begin("remember", key, user, (user,))
        try:
            with self.locks.acquire(f"url:{key}"):
                self._step("remember.url-locked")
                body = self.coalescer.do(
                    f"fetch:{key}:{self.clock.now}", lambda: self._fetch(key)
                )
                self._step("remember.fetched")
                mine: List[Tuple[str, bool, int]] = []

                def do_checkin():
                    outcome = self._checkin_archive(user, key, body)
                    mine.append(outcome)
                    self._log_rev(txn, key, outcome, body, user)
                    return outcome

                revision, changed, nbytes = self.coalescer.do(
                    f"checkin:{key}:{self.clock.now}:{len(body)}:{hash(body)}",
                    do_checkin,
                )
                if not mine:
                    changed = False
            with self.locks.acquire(f"user:{user}"):
                self._stamp(txn, user, key, revision)
            return self._commit(txn, RememberResult(
                url=key, revision=revision, changed=changed,
                fetched_bytes=nbytes, when=self.clock.now,
            ))
        except Exception:
            self._rollback(txn)
            raise

    # ------------------------------------------------------------------
    # transaction plumbing (no-ops without an attached WAL)
    # ------------------------------------------------------------------
    def _begin(self, op: str, key: str, author: str,
               users: Tuple[str, ...]) -> Optional["Transaction"]:
        if self.wal is None:
            return None
        txn = self.wal.begin(op, key, author, users)
        self.obs.event("snapshot.txn.begin", op=op, url=key, txn=txn.txn)
        self._step("txn.intent-appended")
        return txn

    def _log_rev(self, txn: Optional["Transaction"], key: str,
                 outcome: Tuple[str, bool, int], body: str,
                 author: str) -> None:
        """Journal a just-made archive check-in and refresh the local
        cached copy — the two on-disk effects beyond the control file."""
        revision, changed, _nbytes = outcome
        if txn is None or not changed:
            return
        txn.log_rev(key, revision, body, f"snapshot by {author}")
        self._step("txn.rev-appended")
        txn.write_cache(key, body)
        self._step("txn.cache-written")

    def _stamp(self, txn: Optional["Transaction"], user: str, key: str,
               revision: str) -> None:
        """Record a seen-version stamp (caller holds the user lock)."""
        prior = self.users.record(user, key, revision, self.clock.now)
        if txn is not None:
            txn.log_seen(user, key, revision, self.clock.now, prior)
            self._step("txn.seen-appended")

    def _commit(self, txn: Optional["Transaction"], result):
        """The atomic point.  ``txn.commit`` barrier first: an armed
        CGI timeout fires here, so an operation that outlived httpd
        never commits — it unwinds through :meth:`_rollback` instead."""
        self._step("txn.commit")
        if txn is not None:
            txn.commit()
            self._c_wal_commits.inc()
            self.obs.event("snapshot.txn.commit", txn=txn.txn)
            self._step("txn.committed")
        return result

    def _rollback(self, txn: Optional["Transaction"]) -> None:
        if txn is not None and txn.state == "open":
            txn.abort()
            self._c_wal_rollbacks.inc()
            self.obs.event("snapshot.txn.rollback", txn=txn.txn)

    def remember_batch(self, users: List[str], url: str) -> List[RememberResult]:
        """One fetch + one check-in serving many users at once.

        The shape `CentralTracker.poll` and multi-user w3newer sweeps
        generate: the page is retrieved once "regardless of the number
        of users who track it", the archive is touched under one URL
        lock, and the new head is fanned out to every requesting user's
        control file.
        """
        key = self._canonical(url)
        body = self.coalescer.do(
            f"fetch:{key}:{self.clock.now}", lambda: self._fetch(key)
        )
        return self.checkin_content_batch(users, key, body)

    def checkin_content(self, user: str, url: str, body: str) -> RememberResult:
        """Check in content the caller already fetched.

        The centralized tracker and the fixed-page archiver poll pages
        themselves (once per page, for everyone); re-fetching inside
        remember() would double the request count the Section 8.3
        economy-of-scale argument is about.
        """
        key = self._canonical(url)
        txn = self._begin("checkin", key, user, (user,))
        try:
            body = self._admit_supplied(key, body)
            with self.locks.acquire(f"url:{key}"), \
                    self.locks.acquire(f"user:{user}"):
                result = self._checkin(user, key, body, txn)
            return self._commit(txn, result)
        except Exception:
            self._rollback(txn)
            raise

    def checkin_content_batch(
        self, users: List[str], url: str, body: str
    ) -> List[RememberResult]:
        """Batched form of :meth:`checkin_content`: one archive
        check-in under one URL lock, then one control-file stamp per
        user.  Result order matches ``users``; only the first requester
        reports ``changed`` (exactly what N sequential check-ins of the
        same body would have reported)."""
        key = self._canonical(url)
        author = users[0] if users else "aide"
        with self.obs.span("snapshot.checkin_batch", url=key,
                           users=len(users)):
            return self._checkin_batch_impl(users, key, body, author)

    def _checkin_batch_impl(
        self, users: List[str], key: str, body: str, author: str
    ) -> List[RememberResult]:
        txn = self._begin("checkin-batch", key, author, tuple(users))
        try:
            body = self._admit_supplied(key, body)
            if self.options.coalesce_checkins:
                revision, changed, _ = self._coalesced_checkin(
                    author, key, body, txn
                )
            else:
                with self.locks.acquire(f"url:{key}"):
                    outcome = self._checkin_archive(author, key, body)
                    self._log_rev(txn, key, outcome, body, author)
                    revision, changed, _ = outcome
            results = []
            for index, user in enumerate(users):
                with self.locks.acquire(f"user:{user}"):
                    self._stamp(txn, user, key, revision)
                self._step("batch.user-stamped")
                results.append(RememberResult(
                    url=key, revision=revision,
                    changed=changed and index == 0,
                    fetched_bytes=len(body), when=self.clock.now,
                ))
            return self._commit(txn, results)
        except Exception:
            self._rollback(txn)
            raise

    def _coalesced_checkin(
        self,
        author: str,
        key: str,
        body: str,
        txn: Optional["Transaction"] = None,
    ) -> Tuple[str, bool, int]:
        """Run (or join) this instant's check-in of ``body`` for ``key``.

        The coalescer key carries a body fingerprint, so only check-ins
        of the *same* content share work.  Joiners see ``changed=False``
        — exactly what their own check-in of the now-identical body
        would have returned on the reference path.  Only the winner's
        transaction journals the revision; a joiner's transaction
        carries just its own control-file stamp.
        """
        mine: List[Tuple[str, bool, int]] = []

        def do_checkin():
            with self.locks.acquire(f"url:{key}"):
                outcome = self._checkin_archive(author, key, body)
                self._log_rev(txn, key, outcome, body, author)
            mine.append(outcome)
            return outcome

        revision, changed, nbytes = self.coalescer.do(
            f"checkin:{key}:{self.clock.now}:{len(body)}:{hash(body)}",
            do_checkin,
        )
        if not mine:
            changed = False
        return revision, changed, nbytes

    def _checkin(
        self,
        user: str,
        key: str,
        body: str,
        txn: Optional["Transaction"] = None,
    ) -> RememberResult:
        """The shared check-in tail (callers hold the locks)."""
        outcome = self._checkin_archive(user, key, body)
        self._log_rev(txn, key, outcome, body, user)
        revision, changed, nbytes = outcome
        self._stamp(txn, user, key, revision)
        return RememberResult(
            url=key, revision=revision, changed=changed,
            fetched_bytes=nbytes, when=self.clock.now,
        )

    def _checkin_archive(
        self, author: str, key: str, body: str
    ) -> Tuple[str, bool, int]:
        """Archive mutation alone: (revision, changed, body bytes)."""
        archive = self.archive_for(key)
        revision, changed = archive.checkin(
            body, date=self.clock.now, author=author,
            log=f"snapshot by {author}",
        )
        if changed:
            # New head: cached diffs of existing pairs stay valid; new
            # pairs simply get their own cache entries.
            self.page_cache[key] = body
        return revision, changed, len(body)

    def _fetch(self, url: str) -> str:
        try:
            result = self.agent.get(url)
        except NetworkError as exc:
            raise SnapshotError(f"could not retrieve {url}: {exc}")
        if not result.response.ok:
            raise SnapshotError(
                f"could not retrieve {url}: HTTP {result.response.status} "
                f"{result.response.reason}"
            )
        if self.guard is None:
            return result.response.body
        try:
            return self.guard.admit(url, result.response)
        except ContentGuardError as exc:
            self._refuse(url, exc, result.response.body,
                         result.response.content_type)

    def _admit_supplied(self, key: str, body: str,
                        content_type: str = "text/html") -> str:
        """Guard a body the caller fetched themselves (checkin_content
        paths): same admission rule as :meth:`_fetch`, minus headers."""
        if self.guard is None:
            return body
        try:
            return self.guard.admit_body(key, body, content_type)
        except ContentGuardError as exc:
            self._refuse(key, exc, body, content_type)

    def _refuse(self, url: str, exc: ContentGuardError, body: str,
                content_type: str) -> None:
        """Journal the evidence, then raise the 422 verdict.  Callers
        inside a transaction unwind through :meth:`_rollback`, so the
        archive and control files never see the bytes."""
        self._c_quarantined.inc()
        self.obs.event("snapshot.quarantine", url=url, guard=exc.guard)
        if self.quarantine is not None:
            self.quarantine.record(url, exc.guard, exc.detail, body,
                                   at=self.clock.now,
                                   content_type=content_type)
        raise ContentQuarantined(url, exc.guard, exc.detail)

    # ------------------------------------------------------------------
    # diff
    # ------------------------------------------------------------------
    def diff(
        self,
        user: str,
        url: str,
        rev_old: Optional[str] = None,
        rev_new: Optional[str] = None,
    ) -> HtmlDiffResult:
        """HtmlDiff between two stored versions.

        Defaults reproduce the report's Diff link: old = the user's
        last-saved version, new = the newest stored version.  Output is
        cached so "many users who have seen versions N and N+1 of a
        page could retrieve HtmlDiff(pageN, pageN+1) with a single
        invocation".
        """
        key = self._canonical(url)
        with self.obs.span("snapshot.diff", url=key, user=user) as span:
            self._c_diffs.inc()
            result = self._diff_impl(user, key, rev_old, rev_new)
            span.set(identical=result.identical,
                     differences=result.difference_count)
            return result

    def _diff_impl(
        self,
        user: str,
        key: str,
        rev_old: Optional[str],
        rev_new: Optional[str],
    ) -> HtmlDiffResult:
        archive = self.archives.get(key)
        if archive is None or archive.revision_count == 0:
            raise SnapshotError(f"no snapshots of {key} — Remember it first")
        if rev_old is None:
            seen = self.users.last_seen_version(user, key)
            if seen is None:
                raise SnapshotError(
                    f"{user} has no saved version of {key} — Remember it first"
                )
            rev_old = seen.revision
        if rev_new is None:
            # The report's Diff link compares against the page as it is
            # NOW: fetch the live copy and archive it (once, for every
            # user) before diffing.  If the site is unreachable, fall
            # back to the newest stored version.
            try:
                body = self.coalescer.do(
                    f"fetch:{key}:{self.clock.now}", lambda: self._fetch(key)
                )
                self.checkin_content("aide-snapshot", key, body)
                self._step("diff.checked-in")
            except SnapshotError:
                pass
            rev_new = archive.head_revision
        shared_key = DiffCache.make_key(key, rev_old, rev_new,
                                        self.diff_options)
        cached = self.diff_cache.get(shared_key)
        if cached is not None:
            return cached
        cache_key = f"diff:{key}:{rev_old}:{rev_new}"
        with self.locks.acquire(f"url:{key}"):
            result = self.coalescer.do(
                cache_key, lambda: self._run_htmldiff(archive, rev_old, rev_new)
            )
            self.diff_cache.put(shared_key, result)
            return result

    def _run_htmldiff(
        self, archive: RcsArchive, rev_old: str, rev_new: str
    ) -> HtmlDiffResult:
        try:
            old_text = self._checkout_text(archive.name, archive, rev_old)
            new_text = self._checkout_text(archive.name, archive, rev_new)
        except UnknownRevision as exc:
            raise SnapshotError(f"no such revision of {archive.name}: {exc}")
        self.htmldiff_invocations += 1
        budget = (self.guard.html_budget(archive.name)
                  if self.guard is not None else None)
        return html_diff(old_text, new_text, options=self.diff_options,
                         obs=self.obs, budget=budget)

    def _checkout_text(
        self, key: str, archive: RcsArchive, revision: Optional[str] = None
    ) -> str:
        """Checkout through the shared LRU cache.

        Revision texts are immutable once checked in, so entries never
        need invalidation — a new check-in is a new key."""
        number = revision if revision is not None else archive.head_revision
        if number is not None:
            cached = self.checkout_cache.get(key, number)
            if cached is not None:
                return cached
        text = archive.checkout(number)
        if number is not None:
            self.checkout_cache.put(key, number, text)
        return text

    # ------------------------------------------------------------------
    # history / view
    # ------------------------------------------------------------------
    def history(self, user: str, url: str) -> List[Tuple[RevisionInfo, bool]]:
        """(revision, seen-by-this-user) pairs, oldest first.

        "present the user with a set of versions seen by that person
        regardless of what other versions are also stored."
        """
        key = self._canonical(url)
        archive = self.archives.get(key)
        if archive is None:
            raise SnapshotError(f"no snapshots of {key}")
        seen = {v.revision for v in self.users.versions_seen(user, key)}
        return [(info, info.number in seen) for info in archive.revisions()]

    def view(self, url: str, revision: Optional[str] = None,
             rewrite_base: bool = True) -> str:
        """A stored version's text, BASE-rewritten by default."""
        key = self._canonical(url)
        self._c_views.inc()
        archive = self.archives.get(key)
        if archive is None or archive.revision_count == 0:
            raise SnapshotError(f"no snapshots of {key}")
        try:
            text = self._checkout_text(key, archive, revision)
        except UnknownRevision as exc:
            raise SnapshotError(f"no such revision of {key}: {exc}")
        if rewrite_base:
            return add_base_directive(text, key)
        return text

    def view_at(self, url: str, date: int, rewrite_base: bool = True) -> str:
        """The page as it existed at a particular time (§2.2).

        "A CGI interface to RCS allows a user to request a URL at a
        particular date... similar in spirit to the 'time travel'
        capability of file systems such as 3DFS."  Raises when nothing
        that old is archived.
        """
        key = self._canonical(url)
        self._c_views.inc()
        archive = self.archives.get(key)
        if archive is None or archive.revision_count == 0:
            raise SnapshotError(f"no snapshots of {key}")
        # Resolve the date first (bisect over monotone datestamps), then
        # go through the shared checkout cache — time-travel requests
        # for the same epoch hit the same (url, revision) entry.
        info = archive.revision_at(date)
        if info is None:
            raise SnapshotError(
                f"nothing archived for {key} as early as {date}"
            )
        text = self._checkout_text(key, archive, info.number)
        if rewrite_base:
            return add_base_directive(text, key)
        return text

    # ------------------------------------------------------------------
    # accounting (Section 7 disk-usage experiment)
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(archive.size_bytes() for archive in self.archives.values())

    def url_count(self) -> int:
        return len(self.archives)

    def bytes_by_url(self) -> Dict[str, int]:
        return {
            url: archive.size_bytes() for url, archive in self.archives.items()
        }

    def full_copy_bytes(self) -> int:
        """What storage would cost with a full copy per revision — the
        baseline the RCS design is measured against.  One backward walk
        per archive (O(revisions)), not one checkout per revision."""
        total = 0
        for archive in self.archives.values():
            for _info, text in archive.iter_texts():
                total += len(text)
        return total

    def stats(self) -> Dict[str, object]:
        """One dict with every layer's counters: the diff cache, the
        checkout cache, the request coalescer, the lock manager, and
        the archives' chain-walk instrumentation."""
        archives = list(self.archives.values())
        checkouts = sum(a.checkouts for a in archives)
        delta_applications = sum(a.delta_applications for a in archives)
        out: Dict[str, object] = {
            "diff_cache": self.diff_cache.stats(),
            "checkout_cache": self.checkout_cache.stats(),
            "coalescer": {
                "executions": self.coalescer.executions,
                "coalesced": self.coalescer.coalesced,
            },
            "locks": self.locks.stats(),
            "archives": {
                "count": len(archives),
                "revisions": sum(a.revision_count for a in archives),
                "checkouts": checkouts,
                "delta_applications": delta_applications,
                "mean_chain_length": (
                    delta_applications / checkouts if checkouts else 0.0
                ),
                "keyframe_interval": self.options.keyframe_interval,
                "keyframe_starts": sum(a.keyframe_starts for a in archives),
                "keyframes": sum(a.keyframe_count() for a in archives),
                "keyframe_bytes": sum(a.keyframe_bytes() for a in archives),
            },
            "htmldiff_invocations": self.htmldiff_invocations,
        }
        # "locking" mirrors "locks" under the name the CGI stats page
        # documents; "wal" and "sched" are always present so the
        # action=stats surface shows whether those layers are attached.
        out["locking"] = out["locks"]
        if self.guard is not None:
            out["guards"] = dict(self.guard.stats(), attached=True)
        else:
            out["guards"] = {"attached": False}
        if self.quarantine is not None:
            out["quarantine"] = self.quarantine.stats()
        if self.wal is not None:
            out["wal"] = dict(self.wal.stats(), attached=True)
        else:
            out["wal"] = {
                "attached": False, "begun": 0, "committed": 0, "aborted": 0,
            }
        if self.locks.scheduler is not None:
            out["sched"] = dict(self.locks.scheduler.stats(), attached=True)
        else:
            out["sched"] = {"attached": False}
        if self.failpoints is not None:
            out["failpoints"] = self.failpoints.stats()
        # "crawl" is always present, like "wal"/"sched": the stats page
        # shows whether a crawl tracker is wired to this store.
        if self._crawl_stats is not None:
            out["crawl"] = dict(self._crawl_stats())
        else:
            out["crawl"] = {"attached": False}
        # When the agent is a ResilientAgent its retry/breaker counters
        # belong in the same picture (remember() rides its retry loop).
        agent_stats = getattr(self.agent, "stats", None)
        if callable(agent_stats):
            out["resilience"] = agent_stats()
        return out
