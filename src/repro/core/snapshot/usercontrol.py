"""Per-user control files: which versions has each user seen?

Paper Section 2.2/4.1: "we wish to track the times at which each user
checked in a page, even if the page hasn't changed between check-ins of
that page by different users.  This is accomplished outside of RCS by
maintaining a per-user control file"; and "in the next version of the
system, a set of version numbers is retained for each <user,URL>
combination.  This removes any confusion that could arise if the
timestamps provided for a page do not increase monotonically."

This module implements the "next version": explicit version-number sets
per <user, URL>, with check-in times, serializable like the on-disk
control files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["UserControl", "SeenVersion"]


@dataclass(frozen=True)
class SeenVersion:
    """One check-in by one user: the revision they saved, and when."""

    revision: str
    when: int


class UserControl:
    """All users' control files (user → URL → seen versions)."""

    def __init__(self) -> None:
        self._seen: Dict[str, Dict[str, List[SeenVersion]]] = {}

    # ------------------------------------------------------------------
    def record(
        self, user: str, url: str, revision: str, when: int
    ) -> Optional[SeenVersion]:
        """Note that ``user`` checked in / saw ``revision`` of ``url``.

        Recording the same revision again updates the time only — the
        paper's point is that a re-save of an unchanged page still
        refreshes the user's "I have seen this" marker.

        Returns the entry this call displaced (the same revision with
        its old timestamp), or ``None`` when the revision is new for
        this <user, URL> — exactly what :meth:`undo_record` needs to
        roll the stamp back.
        """
        per_user = self._seen.setdefault(user, {})
        versions = per_user.setdefault(url, [])
        for index, seen in enumerate(versions):
            if seen.revision == revision:
                versions[index] = SeenVersion(revision=revision, when=when)
                return seen
        versions.append(SeenVersion(revision=revision, when=when))
        return None

    def undo_record(
        self,
        user: str,
        url: str,
        revision: str,
        prior: Optional[SeenVersion],
    ) -> None:
        """Reverse one :meth:`record` call (transaction rollback).

        ``prior`` is :meth:`record`'s return value: ``None`` removes
        the freshly appended entry, a displaced entry restores its old
        timestamp.  A stamp someone else has since rewritten is left
        alone — rollback must never clobber a later transaction.
        """
        versions = self._seen.get(user, {}).get(url)
        if not versions:
            return
        if prior is None:
            if versions and versions[-1].revision == revision:
                versions.pop()
            if not versions:
                self.forget(user, url)
            return
        for index, seen in enumerate(versions):
            if seen.revision == revision:
                versions[index] = prior
                return

    def forget(self, user: str, url: str, revision: Optional[str] = None) -> None:
        """Drop seen-version state (fsck repair surface).

        With ``revision`` given, removes that one entry; otherwise the
        whole <user, URL> history.  Empty maps are pruned so a repaired
        control file serializes without ghost lines.
        """
        per_user = self._seen.get(user)
        if per_user is None:
            return
        versions = per_user.get(url)
        if versions is None:
            return
        if revision is None:
            del per_user[url]
        else:
            per_user[url] = [s for s in versions if s.revision != revision]
            if not per_user[url]:
                del per_user[url]
        if not per_user:
            del self._seen[user]

    def versions_seen(self, user: str, url: str) -> List[SeenVersion]:
        """All versions this user has seen of this URL (check-in order)."""
        return list(self._seen.get(user, {}).get(url, []))

    def last_seen_version(self, user: str, url: str) -> Optional[SeenVersion]:
        versions = self._seen.get(user, {}).get(url)
        return versions[-1] if versions else None

    def users_tracking(self, url: str) -> List[str]:
        """Who has registered an interest in this page.

        The privacy surface Section 4.2 worries about: "Browsing the
        repository can... indicate which user has an interest in which
        page" — reproduced faithfully, including the weakness.
        """
        return sorted(
            user for user, pages in self._seen.items() if url in pages
        )

    def urls_for(self, user: str) -> List[str]:
        return sorted(self._seen.get(user, {}).keys())

    def all_stamps(self):
        """Every (user, url, SeenVersion) triple, sorted — the full
        cross-file surface a repository check must validate."""
        for user in sorted(self._seen):
            for url in sorted(self._seen[user]):
                for seen in self._seen[user][url]:
                    yield user, url, seen

    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """``user|url|rev@when,rev@when,...`` lines."""
        lines = []
        for user in sorted(self._seen):
            for url in sorted(self._seen[user]):
                versions = ",".join(
                    f"{seen.revision}@{seen.when}"
                    for seen in self._seen[user][url]
                )
                lines.append(f"{user}|{url}|{versions}")
        return "\n".join(lines)

    @classmethod
    def deserialize(cls, text: str) -> "UserControl":
        control = cls()
        for line in text.splitlines():
            parts = line.split("|")
            if len(parts) != 3:
                continue
            user, url, versions = parts
            for chunk in versions.split(","):
                if "@" not in chunk:
                    continue
                revision, _, when_text = chunk.partition("@")
                try:
                    control.record(user, url, revision, int(when_text))
                except ValueError:
                    continue
        return control
