"""Command-line interface.

Two pieces of AIDE are immediately useful outside the simulation:
HtmlDiff over real files, and the RCS-style versioning over real ``,v``
archives — so the CLI provides both:

    aide htmldiff old.html new.html -o merged.html
    aide htmldiff old.html new.html --mode only-differences
    aide tokenize page.html
    aide thresholds config.txt http://www.yahoo.com/x http://a.com/
    aide ci page.html -m "weekly snapshot"     # check into page.html,v
    aide co page.html -r 1.1                   # print an old revision
    aide rlog page.html                        # revision history
    aide rcsdiff page.html -r 1.1 -r 1.3       # diff two revisions
    aide fsck /var/aide/repo --repair          # repository consistency
    aide quarantine list dead.jsonl            # poison-document journal
    aide serve --shards 4 --users 1000         # sharded diff server demo

``aide htmldiff``/``rcsdiff`` exit 0 when identical and 1 when
differences were found (the ``diff``/``cmp`` convention), 2 on usage
errors.  ``aide ci`` exits 0 on a new revision and 1 when the file was
unchanged (mirroring real ``ci``'s warning).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .core.htmldiff.api import html_diff
from .core.htmldiff.options import HtmlDiffOptions, PresentationMode
from .core.htmldiff.tokenizer import tokenize_document
from .core.htmldiff.tokens import BreakToken
from .core.w3newer.thresholds import parse_threshold_config
from .diffcore.textdiff import unified_diff
from .rcs.archive import RcsArchive, UnknownRevision
from .rcs.rcsfile import RcsParseError, parse_rcsfile, serialize_rcsfile
from .rcs.rlog import rlog_text
from .simclock import NEVER, format_duration

__all__ = ["main"]


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read()


def _now_timestamp() -> int:
    """Wall-clock time as a simulation timestamp (seconds since the
    1 Sep 1995 epoch), so CLI check-ins carry real, ordered dates."""
    from datetime import datetime, timezone

    epoch = datetime(1995, 9, 1, tzinfo=timezone.utc).timestamp()
    return max(0, int(time.time() - epoch))


def _archive_path(path: str) -> str:
    return path + ",v"


def _load_archive(path: str) -> RcsArchive:
    archive_path = _archive_path(path)
    if os.path.exists(archive_path):
        with open(archive_path, "r", encoding="utf-8") as handle:
            return parse_rcsfile(handle.read())
    return RcsArchive(name=os.path.basename(path))


def _cmd_htmldiff(args: argparse.Namespace) -> int:
    old_html = _read(args.old)
    new_html = _read(args.new)
    options = HtmlDiffOptions(
        mode=PresentationMode(args.mode),
        match_threshold=args.match_threshold,
        length_ratio=args.length_ratio,
        density_threshold=args.density_threshold,
        refine_matched_sentences=not args.no_refine,
    )
    result = html_diff(old_html, new_html, options)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.html)
    else:
        sys.stdout.write(result.html)
        if not result.html.endswith("\n"):
            sys.stdout.write("\n")
    if not args.quiet:
        noun = "difference" if result.difference_count == 1 else "differences"
        print(
            f"htmldiff: {result.difference_count} {noun}, "
            f"density {result.change_density:.0%}"
            + (" (merge suppressed: too pervasive)"
               if result.density_suppressed else ""),
            file=sys.stderr,
        )
    return 0 if result.identical else 1


def _cmd_tokenize(args: argparse.Namespace) -> int:
    source = _read(args.file)
    for token in tokenize_document(source):
        kind = "BREAK   " if isinstance(token, BreakToken) else "SENTENCE"
        text = str(token)
        if len(text) > args.width:
            text = text[: args.width - 3] + "..."
        print(f"{kind} {text}")
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    config = parse_threshold_config(_read(args.config))
    for url in args.urls:
        threshold = config.threshold_for(url)
        rule = config.rule_for(url)
        label = format_duration(threshold) if threshold != NEVER else "never"
        source = rule.pattern if rule else "(default)"
        print(f"{label:8s} {url}  <- {source}")
    return 0


def _cmd_ci(args: argparse.Namespace) -> int:
    contents = _read(args.file)
    archive = _load_archive(args.file)
    author = args.author or os.environ.get("USER", "aide")
    revision, changed = archive.checkin(
        contents, date=_now_timestamp(), author=author, log=args.message
    )
    with open(_archive_path(args.file), "w", encoding="utf-8") as handle:
        handle.write(serialize_rcsfile(archive))
    if changed:
        print(f"ci: {args.file} -> revision {revision}", file=sys.stderr)
        return 0
    print(f"ci: {args.file} unchanged since revision {revision}",
          file=sys.stderr)
    return 1


def _cmd_co(args: argparse.Namespace) -> int:
    archive = _load_archive(args.file)
    if archive.revision_count == 0:
        print(f"aide: no archive for {args.file}", file=sys.stderr)
        return 2
    try:
        text = archive.checkout(args.revision)
    except UnknownRevision as exc:
        print(f"aide: no such revision: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    return 0


def _cmd_rlog(args: argparse.Namespace) -> int:
    archive = _load_archive(args.file)
    if archive.revision_count == 0:
        print(f"aide: no archive for {args.file}", file=sys.stderr)
        return 2
    sys.stdout.write(rlog_text(archive))
    return 0


def _cmd_rcsdiff(args: argparse.Namespace) -> int:
    archive = _load_archive(args.file)
    if archive.revision_count == 0:
        print(f"aide: no archive for {args.file}", file=sys.stderr)
        return 2
    revisions = args.revision or []
    try:
        if len(revisions) >= 2:
            old_text = archive.checkout(revisions[0])
            new_text = archive.checkout(revisions[1])
            new_label = revisions[1]
        else:
            # Like rcsdiff: stored revision vs the working file.
            rev = revisions[0] if revisions else archive.head_revision
            old_text = archive.checkout(rev)
            new_text = _read(args.file)
            new_label = "working file"
    except UnknownRevision as exc:
        print(f"aide: no such revision: {exc}", file=sys.stderr)
        return 2
    if args.html:
        result = html_diff(old_text, new_text)
        sys.stdout.write(result.html + "\n")
        return 0 if result.identical else 1
    out = unified_diff(
        old_text.split("\n"), new_text.split("\n"),
        old_label=f"{args.file} {revisions[0] if revisions else archive.head_revision}",
        new_label=f"{args.file} {new_label}",
    )
    sys.stdout.write(out)
    return 0 if not out else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Cross-file consistency check of an on-disk snapshot repository.

    Exit 0 when consistent, 1 when problems remain (after repair, if
    ``--repair`` was given), 2 when the directory does not exist.

    A repository with a ``SHARDS`` manifest (written by the sharded
    store's ``save_sharded``) is checked shard by shard and the reports
    folded into one.
    """
    from .core.snapshot.persistence import verify_store
    from .core.snapshot.sharding import read_shard_count, verify_sharded

    if not os.path.isdir(args.directory):
        print(f"aide: no repository at {args.directory}", file=sys.stderr)
        return 2
    if read_shard_count(args.directory) is not None:
        report = verify_sharded(args.directory, repair=args.repair)
    else:
        report = verify_store(args.directory, repair=args.repair)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        rollup = getattr(report, "summary_dict", None)
        if rollup is not None:
            counts = rollup()
            if counts["failed_shards"]:
                print("failed shards: "
                      + ", ".join(counts["failed_shards"]))
            for shard, repairs in sorted(
                    counts["repairs_by_shard"].items()):
                print(f"repairs[{shard}]: {repairs}")
        for problem in report.problems:
            print(f"problem: {problem}")
        for note in report.notes:
            print(f"note: {note}")
        for fix in report.repaired:
            print(f"repaired: {fix}")
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Render a saved metrics snapshot (``metrics.json`` from
    ``Observability.save``, or the run directory holding one) as
    Prometheus text or pretty JSON.

    Exit 0 on success, 2 when the file is missing or unparseable.
    """
    import json

    from .obs import to_json, to_prometheus

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "metrics.json")
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        print(f"aide: {path} is not a metrics snapshot", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(to_json(snapshot))
    else:
        sys.stdout.write(to_prometheus(snapshot))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Print a saved event journal (``events.jsonl``) as a span tree.

    Spans nest under their parents; non-span events print inline at
    their position in the sequence.  Exit 2 when the journal is
    missing or unparseable.
    """
    import json

    path = args.run
    if os.path.isdir(path):
        path = os.path.join(path, "events.jsonl")
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))

    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") != "span"]
    children: dict = {}
    by_id = {}
    for record in spans:
        by_id[record["span"]] = record
        children.setdefault(record.get("parent", ""), []).append(record)

    def fmt(record) -> str:
        attrs = record.get("attrs") or {}
        extra = " ".join(f"{k}={v}" for k, v in attrs.items())
        window = f"[{record.get('start', '?')}..{record.get('end', '?')}]"
        error = record.get("error") or ""
        tail = f" ERROR {error}" if error else ""
        return f"{record['name']} {window} {extra}".rstrip() + tail

    def walk(parent: str, depth: int) -> None:
        for record in children.get(parent, []):
            print("  " * depth + fmt(record))
            walk(record["span"], depth + 1)

    roots = [r for r in spans
             if r.get("parent", "") not in by_id or not r.get("parent")]
    if not spans and not events:
        print("aide: empty journal", file=sys.stderr)
        return 0
    walk("", 0)
    # Orphaned parents (shouldn't happen, but don't lose spans).
    for record in roots:
        if record.get("parent"):
            print(fmt(record))
            walk(record["span"], 1)
    if events and not args.spans_only:
        print(f"-- {len(events)} events --")
        for record in events:
            fields = {k: v for k, v in record.items()
                      if k not in ("kind", "seq", "t")}
            extra = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            print(f"t={record.get('t', '?')} {record['kind']} {extra}".rstrip())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Stand up the sharded diff server in a simulated world, seed it,
    and drive a closed-loop load against it; print the service report.

    Everything runs in virtual time on a seeded clock, so two
    invocations with the same arguments print identical numbers.  With
    ``--save DIR`` the seeded archives are written out per shard (plus
    the ``SHARDS`` manifest), ready for ``aide fsck``.
    """
    import json

    from .core.snapshot.sharding import save_sharded
    from .serve import (
        ClosedLoopLoad,
        DiffServer,
        ShardFaultPlan,
        build_world,
        seed_world,
    )

    fault_plan = None
    if args.kill_shard or args.kill_each_once:
        fault_plan = ShardFaultPlan()
        for spec in args.kill_shard or []:
            fields = spec.split(":")
            if len(fields) not in (3, 4):
                print(f"aide: bad --kill-shard spec {spec!r} "
                      f"(want SHARD:AT:RECOVER_AT[:torn])", file=sys.stderr)
                return 2
            fault_plan.crash(int(fields[0]), int(fields[1]), int(fields[2]),
                             torn_tail=len(fields) == 4
                             and fields[3] == "torn")
        if args.kill_each_once:
            fields = args.kill_each_once.split(":")
            if len(fields) not in (2, 3):
                print(f"aide: bad --kill-each-once spec "
                      f"{args.kill_each_once!r} (want START:DOWNTIME"
                      f"[:SPACING])", file=sys.stderr)
                return 2
            staggered = ShardFaultPlan.kill_each_once(
                args.shards, int(fields[0]), int(fields[1]),
                spacing=int(fields[2]) if len(fields) == 3 else None,
            )
            fault_plan.faults.extend(staggered.faults)
    world = build_world(args.seed, pages=args.pages)
    server = DiffServer(
        world.clock, world.agent, shards=args.shards,
        workers_per_shard=args.workers, queue_limit=args.queue_limit,
        replication=args.replication, fault_plan=fault_plan,
        scrub_interval=args.scrub_interval,
    )
    revisions = seed_world(server, world, seed=args.seed, rounds=args.rounds)
    print(f"# seeded {len(world.urls)} pages x {args.rounds} revisions "
          f"across {args.shards} shard(s), replication "
          f"{args.replication}", file=sys.stderr)
    load = ClosedLoopLoad(
        args.seed, world.urls, revisions, users=args.users,
        requests_per_user=args.requests_per_user,
        mutation_rate=args.mutation_rate,
    )
    report = load.run(server, start=world.clock.now)
    payload = {"load": report.to_dict(), "server": server.stats()}
    if args.save:
        save_sharded(server.store, args.save,
                     replication=args.replication)
        payload["repository"] = args.save
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if report.completed == report.requests else 1


def _cmd_newer(args: argparse.Namespace) -> int:
    """Run the budgeted concurrent tracker over a seeded crawl world.

    Builds a deterministic world of ``--urls`` pages across ``--hosts``
    hosts (the hot/warm/cool/dead change mixture), marks every page
    visited, then runs one w3newer crawl per simulated day under the
    chosen ``--policy``, ``--budget``, and ``--workers``.  Everything
    derives from ``--seed``: two invocations with the same arguments
    print identical numbers.  With ``--explain URL`` the per-URL
    scheduling rationale (estimated change rate, probability, last
    decision) is included in the JSON output.
    """
    import json

    from .core.w3newer import (
        BrowserHistory,
        ChangeRateEstimator,
        CrawlOptions,
        ReportOptions,
        SchedulePolicy,
        W3Newer,
    )
    from .simclock import DAY, SimClock
    from .web import Network, PolitenessLog, UserAgent
    from .workloads import (
        apply_changes,
        build_crawl_hotlist,
        build_crawl_world,
        seed_estimator,
    )

    policy = SchedulePolicy.parse(args.policy)
    clock = SimClock()
    clock.advance(100 * DAY)  # a plausible 1995 epoch, not t=0
    network = Network(clock)
    world = build_crawl_world(
        urls=args.urls, hosts=args.hosts, seed=args.seed,
        clock=clock, network=network,
    )
    politeness = PolitenessLog()
    agent = UserAgent(network, clock, politeness=politeness)
    history = BrowserHistory()
    for url in world.urls:
        history.visit(url, clock.now)
    estimator = ChangeRateEstimator()
    if policy is SchedulePolicy.ADAPTIVE:
        seed_estimator(world, estimator)
    tracker = W3Newer(
        clock, agent, build_crawl_hotlist(world), history=history,
        crawl=CrawlOptions(
            workers=args.workers, budget=args.budget,
            policy=policy, seed=args.seed,
        ),
        estimator=estimator,
        report_options=ReportOptions(render=False),
    )
    days = []
    for _ in range(args.days):
        clock.advance(DAY)
        apply_changes(world)
        result = tracker.run()
        governor = tracker.last_crawl["governor"]
        days.append({
            "changed": len(result.changed),
            "http_requests": result.http_requests,
            "deferred": result.deferred,
            "makespan": governor["makespan"],
            "max_inflight": governor["max_inflight"],
        })
        for outcome in result.changed:
            tracker.mark_page_viewed(outcome.url)
    payload = {
        "world": {
            "urls": len(world.urls), "hosts": args.hosts,
            "seed": args.seed,
        },
        "policy": policy.value,
        "budget": args.budget,
        "workers": args.workers,
        "days": days,
        "crawl": tracker.crawl_stats(),
        "politeness": politeness.stats(),
    }
    if args.explain:
        payload["explain"] = tracker.explain(args.explain)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """A zero-setup tour: simulated site, tracker run, merged diff."""
    from .aide.engine import Aide
    from .core.w3newer.hotlist import Hotlist
    from .simclock import DAY

    aide = Aide()
    server = aide.network.create_server("www.example.com")
    server.set_page(
        "/news.html",
        "<HTML><HEAD><TITLE>Example news</TITLE></HEAD><BODY>\n"
        "<H1>Example news</H1>\n"
        "<P>The committee will meet in October. Agenda to follow.</P>\n"
        "<P>Contact the secretary with questions.</P>\n"
        "</BODY></HTML>\n",
    )
    user = aide.add_user(
        "you@example.com",
        Hotlist.from_lines("http://www.example.com/news.html Example news"),
    )
    user.visit("http://www.example.com/news.html", aide.clock)
    aide.remember("you@example.com", "http://www.example.com/news.html")

    aide.clock.advance(3 * DAY)
    server.set_page(
        "/news.html",
        "<HTML><HEAD><TITLE>Example news</TITLE></HEAD><BODY>\n"
        "<H1>Example news</H1>\n"
        "<P>The committee met early. Minutes are now available.</P>\n"
        "<P>Contact the secretary with questions.</P>\n"
        "</BODY></HTML>\n",
    )
    aide.clock.advance(3 * DAY)

    run = aide.run_w3newer("you@example.com")
    print("# One simulated week later, w3newer reports:")
    print(f"#   {len(run.changed)} of {len(run.outcomes)} pages changed, "
          f"{run.http_requests} HTTP requests spent")
    diff = aide.diff("you@example.com", "http://www.example.com/news.html")
    print("#\n# The Diff link returns this merged page:\n")
    print(diff.body.strip())
    return 0


def _cmd_timemap(args: argparse.Namespace) -> int:
    """Print a local ``,v`` archive's Memento TimeMap.

    The original resource defaults to the file path; give ``--url``
    when the archive tracks a web page.  Output is RFC 7089
    ``application/link-format`` (the wire shape), or structured JSON
    with ``--json``.  Exit 2 when there is no archive.
    """
    import json

    from .memento.core import (
        Memento,
        TimeMap,
        format_timemap,
        memento_uri,
        timegate_uri,
        timemap_uri,
    )

    archive = _load_archive(args.file)
    if archive.revision_count == 0:
        print(f"aide: no archive for {args.file}", file=sys.stderr)
        return 2
    original = args.url or args.file
    script = "/cgi-bin/snapshot"
    timemap = TimeMap(
        original=original,
        timegate=timegate_uri(script, original),
        timemap=timemap_uri(script, original),
        mementos=sorted(
            Memento(datetime=info.date,
                    uri=memento_uri(script, original, info.number),
                    revision=info.number)
            for info in archive.revisions()
        ),
    )
    if args.json:
        print(json.dumps({
            "original": timemap.original,
            "mementos": [
                {"revision": m.revision, "datetime": m.datetime,
                 "datetime_http": m.datetime_string}
                for m in timemap.mementos
            ],
        }, indent=2, sort_keys=True))
    else:
        sys.stdout.write(format_timemap(timemap))
    return 0


def _cmd_memento(args: argparse.Namespace) -> int:
    """Datetime negotiation over a local ``,v`` archive.

    ``--at`` takes an HTTP date (any of the three RFC formats) or a
    bare simulation timestamp; ``--policy`` selects the boundary
    semantics (``past``/``nearest``/``exact``).  Prints the selected
    revision's text (metadata on stderr), or metadata as JSON with
    ``--json``.  Exit 1 when the policy refuses (nothing archived that
    satisfies it), 2 on usage errors.
    """
    import json

    from .memento.core import NegotiationError
    from .memento.endpoints import parse_datetime_value

    archive = _load_archive(args.file)
    if archive.revision_count == 0:
        print(f"aide: no archive for {args.file}", file=sys.stderr)
        return 2
    target = parse_datetime_value(args.at)
    if target is None:
        print(f"aide: unparseable datetime {args.at!r} (want an HTTP "
              f"date or a simulation timestamp)", file=sys.stderr)
        return 2
    try:
        info = archive.revision_at(target, policy=args.policy)
    except NegotiationError as exc:
        print(f"aide: {exc}", file=sys.stderr)
        return 2
    if info is None:
        print(f"aide: no revision of {args.file} satisfies "
              f"{args.policy!r} negotiation for {args.at}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "revision": info.number,
            "datetime": info.date,
            "datetime_http": info.date_string,
            "author": info.author,
            "policy": args.policy,
            "target": target,
        }, indent=2, sort_keys=True))
        return 0
    text = archive.checkout(info.number)
    print(f"memento: revision {info.number} ({info.date_string})",
          file=sys.stderr)
    sys.stdout.write(text)
    if not text.endswith("\n"):
        sys.stdout.write("\n")
    return 0


def _cmd_timetravel(args: argparse.Namespace) -> int:
    """Browse a seeded archive pinned to one instant, in virtual time.

    Builds a deterministic linked world, seeds ``--rounds`` revisions
    of every page through the snapshot CGI, then walks ``--follows``
    links starting from page 0 with every navigation negotiated
    through the TimeGate at the pinned datetime — so nothing served is
    ever newer than the pin (under the default ``past`` policy).
    Prints the trail; same arguments, same bytes.
    """
    import json

    from .aide.browser import TimeTravelSession
    from .core.snapshot.service import SnapshotService
    from .core.snapshot.store import SnapshotStore
    from .memento.endpoints import parse_datetime_value
    from .serve import build_world, seed_world
    from .web.client import UserAgent

    world = build_world(args.seed, pages=args.pages, linked=True)
    store = SnapshotStore(world.clock, world.agent)
    service = SnapshotService(store)
    gate_host = world.network.create_server("aide.example.com")
    gate_host.register_cgi("/cgi-bin/snapshot", service)
    seed_world(service, world, seed=args.seed, rounds=args.rounds)

    if args.at is not None:
        pin = parse_datetime_value(args.at)
        if pin is None:
            print(f"aide: unparseable datetime {args.at!r}",
                  file=sys.stderr)
            return 2
    else:
        # Default pin: mid-history, so both older and newer revisions
        # exist on every page and the pin visibly matters.
        pin = world.clock.now // 2

    browser_agent = UserAgent(world.network, world.clock,
                              agent_name="Mozilla/1.1N")
    session = TimeTravelSession(
        browser_agent, "http://aide.example.com/cgi-bin/snapshot",
        pin=pin, policy=args.policy,
    )
    session.browse(world.urls[0])
    for step in range(args.follows):
        if session.current is None or not session.current.served:
            break
        session.follow(step)
    trail = [
        {"url": page.url, "served": page.served,
         "memento_datetime": page.datetime,
         "links": len(page.links)}
        for page in session.trail
    ]
    served = [p for p in session.trail if p.served]
    payload = {
        "pin": pin,
        "pin_http": session.pin_string,
        "policy": args.policy,
        "pages_visited": len(session.trail),
        "served": len(served),
        "misses": len(session.trail) - len(served),
        "newest_served": max((p.datetime for p in served), default=None),
        "trail": trail,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    violations = [p for p in served
                  if p.datetime is not None and p.datetime > pin]
    return 0 if not violations else 1


def _cmd_quarantine(args: argparse.Namespace) -> int:
    """Inspect the poison-document journal: list entries, retry them
    against (possibly loosened) guard limits, or purge them."""
    from .core.quarantine import QuarantineJournal
    from .web.guards import GuardLimits

    journal = QuarantineJournal(args.journal)
    if args.quarantine_cmd == "list":
        if not len(journal):
            print("quarantine journal is empty")
            return 0
        for entry in journal.entries():
            print(f"{entry.url}")
            print(f"  guard:    {entry.guard}")
            print(f"  detail:   {entry.detail}")
            print(f"  attempts: {entry.attempts}")
            print(f"  bytes:    {len(entry.body)}")
        stats = journal.stats()
        print(f"{stats['entries']} entries, "
              f"{stats['attempts']} guard trips total")
        return 0
    if args.quarantine_cmd == "retry":
        limits = GuardLimits()
        overrides = {}
        if args.max_body_bytes is not None:
            overrides["max_body_bytes"] = args.max_body_bytes
        if args.max_nesting_depth is not None:
            overrides["max_nesting_depth"] = args.max_nesting_depth
        if args.max_tokens is not None:
            overrides["max_tokens"] = args.max_tokens
        if overrides:
            import dataclasses
            limits = dataclasses.replace(limits, **overrides)
        released, still_bad = journal.retry(url=args.url, limits=limits)
        for entry in released:
            print(f"released  {entry.url}")
        for entry, verdict in still_bad:
            print(f"still bad {entry.url}: {verdict}")
        return 0 if not still_bad else 1
    if args.quarantine_cmd == "purge":
        dropped = journal.purge(args.url)
        print(f"purged {dropped} entr{'y' if dropped == 1 else 'ies'}")
        return 0
    return 2



def build_parser() -> argparse.ArgumentParser:
    """The aide argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="aide",
        description="AIDE: the AT&T Internet Difference Engine (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "htmldiff", help="compare two HTML files; emit a marked-up page"
    )
    diff.add_argument("old", help="older HTML file (or - for stdin)")
    diff.add_argument("new", help="newer HTML file")
    diff.add_argument("-o", "--output", help="write the page here (default stdout)")
    diff.add_argument(
        "--mode",
        choices=[mode.value for mode in PresentationMode],
        default=PresentationMode.MERGED.value,
        help="presentation mode (default: merged)",
    )
    diff.add_argument("--match-threshold", type=float, default=0.5,
                      help="2W/L ratio for sentences to match (default 0.5)")
    diff.add_argument("--length-ratio", type=float, default=0.5,
                      help="length pre-filter ratio (default 0.5)")
    diff.add_argument("--density-threshold", type=float, default=0.75,
                      help="change density above which merging is suppressed")
    diff.add_argument("--no-refine", action="store_true",
                      help="disable word-level refinement of fuzzy matches")
    diff.add_argument("-q", "--quiet", action="store_true",
                      help="suppress the summary line on stderr")
    diff.set_defaults(func=_cmd_htmldiff)

    tokenize = sub.add_parser(
        "tokenize", help="show a document's HtmlDiff token stream"
    )
    tokenize.add_argument("file", help="HTML file (or - for stdin)")
    tokenize.add_argument("--width", type=int, default=100,
                          help="truncate token display at this width")
    tokenize.set_defaults(func=_cmd_tokenize)

    thresholds = sub.add_parser(
        "thresholds", help="evaluate a w3newer threshold config against URLs"
    )
    thresholds.add_argument("config", help="threshold configuration file")
    thresholds.add_argument("urls", nargs="+", help="URLs to classify")
    thresholds.set_defaults(func=_cmd_thresholds)

    ci = sub.add_parser("ci", help="check a file into its ,v archive")
    ci.add_argument("file")
    ci.add_argument("-m", "--message", default="", help="log message")
    ci.add_argument("--author", default="", help="author (default: $USER)")
    ci.set_defaults(func=_cmd_ci)

    co = sub.add_parser("co", help="check a revision out of a ,v archive")
    co.add_argument("file")
    co.add_argument("-r", "--revision", help="revision (default: head)")
    co.add_argument("-o", "--output", help="write here instead of stdout")
    co.set_defaults(func=_cmd_co)

    rlog = sub.add_parser("rlog", help="show a ,v archive's history")
    rlog.add_argument("file")
    rlog.set_defaults(func=_cmd_rlog)

    rcsdiff = sub.add_parser(
        "rcsdiff", help="diff two revisions (or a revision vs the file)"
    )
    rcsdiff.add_argument("file")
    rcsdiff.add_argument("-r", "--revision", action="append",
                         help="revision; give twice for a pair")
    rcsdiff.add_argument("--html", action="store_true",
                         help="render with HtmlDiff instead of unified text")
    rcsdiff.set_defaults(func=_cmd_rcsdiff)

    fsck = sub.add_parser(
        "fsck",
        help="check an on-disk snapshot repository for cross-file "
             "damage (archives vs control files vs cache vs journal)",
    )
    fsck.add_argument("directory", help="repository directory")
    fsck.add_argument(
        "--repair", action="store_true",
        help="fix what is fixable: rewrite stale cache files, drop "
             "dangling control-file stamps, compact rolled-back "
             "transactions out of the journal",
    )
    fsck.add_argument(
        "--json", action="store_true",
        help="print the structured report as JSON",
    )
    fsck.set_defaults(func=_cmd_fsck)

    metrics = sub.add_parser(
        "metrics",
        help="render a saved metrics snapshot (metrics.json or a run "
             "directory) as Prometheus text or JSON",
    )
    metrics.add_argument("path", help="metrics.json file or run directory")
    metrics.add_argument("--format", choices=["text", "json"],
                         default="text", help="output format (default text)")
    metrics.set_defaults(func=_cmd_metrics)

    trace = sub.add_parser(
        "trace",
        help="print a saved event journal (events.jsonl or a run "
             "directory) as a nested span tree",
    )
    trace.add_argument("run", help="events.jsonl file or run directory")
    trace.add_argument("--spans-only", action="store_true",
                       help="omit the non-span event listing")
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the sharded diff server under a seeded closed-loop "
             "load (virtual time) and print the service report",
    )
    serve.add_argument("--shards", type=int, default=4,
                       help="store shards / worker pools (default 4)")
    serve.add_argument("--workers", type=int, default=8,
                       help="workers per shard (default 8)")
    serve.add_argument("--queue-limit", type=int, default=256,
                       help="admission queue depth per shard (default 256)")
    serve.add_argument("--users", type=int, default=1000,
                       help="closed-loop simulated users (default 1000)")
    serve.add_argument("--requests-per-user", type=int, default=2,
                       help="requests each user issues (default 2)")
    serve.add_argument("--pages", type=int, default=64,
                       help="tracked origin pages (default 64)")
    serve.add_argument("--rounds", type=int, default=3,
                       help="revisions seeded per page (default 3)")
    serve.add_argument("--seed", type=int, default=0,
                       help="determinism seed (default 0)")
    serve.add_argument("--save", metavar="DIR",
                       help="write the seeded archives to DIR per shard")
    serve.add_argument("--replication", type=int, default=1,
                       help="replicas per URL (default 1: unreplicated)")
    serve.add_argument("--scrub-interval", type=int, default=0,
                       help="anti-entropy scrub period in virtual seconds "
                            "(default 0: off)")
    serve.add_argument("--mutation-rate", type=float, default=0.0,
                       help="fraction of load requests that are remember "
                            "re-saves (default 0.0: read-only)")
    serve.add_argument("--kill-shard", action="append", metavar="SPEC",
                       help="schedule a shard crash as "
                            "SHARD:AT:RECOVER_AT[:torn]; repeatable")
    serve.add_argument("--kill-each-once", metavar="SPEC",
                       help="kill every shard once, staggered: "
                            "START:DOWNTIME[:SPACING]")
    serve.set_defaults(func=_cmd_serve)

    newer = sub.add_parser(
        "newer",
        help="run the budgeted concurrent change tracker over a seeded "
             "crawl world (virtual time) and print the crawl report",
    )
    newer.add_argument("--urls", type=int, default=2000,
                       help="pages in the crawl world (default 2000)")
    newer.add_argument("--hosts", type=int, default=50,
                       help="virtual hosts the pages spread over (default 50)")
    newer.add_argument("--days", type=int, default=3,
                       help="simulated daily runs (default 3)")
    newer.add_argument("--budget", type=int, default=300,
                       help="fetch budget per run (default 300)")
    newer.add_argument("--workers", type=int, default=8,
                       help="concurrent crawl workers (default 8)")
    newer.add_argument("--policy", choices=["static", "adaptive"],
                       default="adaptive",
                       help="revisit policy (default adaptive)")
    newer.add_argument("--seed", type=int, default=0,
                       help="determinism seed (default 0)")
    newer.add_argument("--explain", metavar="URL",
                       help="include this URL's scheduling rationale")
    newer.set_defaults(func=_cmd_newer)

    quarantine = sub.add_parser(
        "quarantine",
        help="inspect the poison-document journal (list / retry / purge)",
    )
    qsub = quarantine.add_subparsers(dest="quarantine_cmd", required=True)
    qlist = qsub.add_parser("list", help="show quarantined URLs")
    qlist.add_argument("journal", help="path to the quarantine JSONL file")
    qretry = qsub.add_parser(
        "retry", help="re-validate stored bytes and release survivors"
    )
    qretry.add_argument("journal", help="path to the quarantine JSONL file")
    qretry.add_argument("--url", help="retry only this URL")
    qretry.add_argument("--max-body-bytes", type=int, dest="max_body_bytes",
                        help="loosen the body-size cap before retrying")
    qretry.add_argument("--max-nesting-depth", type=int,
                        dest="max_nesting_depth",
                        help="loosen the markup-depth cap before retrying")
    qretry.add_argument("--max-tokens", type=int, dest="max_tokens",
                        help="loosen the token-count cap before retrying")
    qretry.set_defaults(func=_cmd_quarantine)
    qpurge = qsub.add_parser("purge", help="drop journal entries")
    qpurge.add_argument("journal", help="path to the quarantine JSONL file")
    qpurge.add_argument("--url", help="purge only this URL (default: all)")
    qpurge.set_defaults(func=_cmd_quarantine)
    qlist.set_defaults(func=_cmd_quarantine)
    quarantine.set_defaults(func=_cmd_quarantine)

    timemap = sub.add_parser(
        "timemap",
        help="print a ,v archive's Memento TimeMap "
             "(application/link-format)",
    )
    timemap.add_argument("file", help="working file (its ,v archive is read)")
    timemap.add_argument("--url", help="original URL the archive tracks "
                                       "(default: the file path)")
    timemap.add_argument("--json", action="store_true",
                         help="structured JSON instead of link-format")
    timemap.set_defaults(func=_cmd_timemap)

    memento = sub.add_parser(
        "memento",
        help="datetime negotiation over a ,v archive: the revision as "
             "of --at",
    )
    memento.add_argument("file", help="working file (its ,v archive is read)")
    memento.add_argument("--at", required=True,
                         help="target datetime: an HTTP date or a "
                              "simulation timestamp")
    memento.add_argument("--policy", choices=["past", "nearest", "exact"],
                         default="past",
                         help="boundary semantics (default past)")
    memento.add_argument("--json", action="store_true",
                         help="print revision metadata as JSON instead "
                              "of the text")
    memento.set_defaults(func=_cmd_memento)

    timetravel = sub.add_parser(
        "timetravel",
        help="browse a seeded archive pinned to one datetime; every "
             "followed link resolves through the TimeGate",
    )
    timetravel.add_argument("--at", help="pinned datetime (HTTP date or "
                                         "simulation timestamp; default: "
                                         "mid-history)")
    timetravel.add_argument("--policy", choices=["past", "nearest"],
                            default="past",
                            help="negotiation policy (default past: "
                                 "never newer than the pin)")
    timetravel.add_argument("--pages", type=int, default=16,
                            help="pages in the seeded world (default 16)")
    timetravel.add_argument("--rounds", type=int, default=3,
                            help="revisions seeded per page (default 3)")
    timetravel.add_argument("--follows", type=int, default=10,
                            help="links to follow (default 10)")
    timetravel.add_argument("--seed", type=int, default=0,
                            help="determinism seed (default 0)")
    timetravel.set_defaults(func=_cmd_timetravel)

    demo = sub.add_parser(
        "demo", help="run a self-contained track-and-diff tour"
    )
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; preserve that for callers.
        return int(exc.code or 0)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"aide: {exc}", file=sys.stderr)
        return 2
    except (ValueError, RcsParseError) as exc:
        print(f"aide: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
