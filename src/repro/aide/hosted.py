"""Hosted w3newer: tracking as a service (paper Section 7).

"Adoption by others has been harder, and the reason we hear back from
prospective users is nearly always the same: it is too time-consuming
to install w3newer on one's own machine.  This reluctance is the
primary motivation for moving the functionality of w3newer into the
AIDE server."

:class:`HostedTrackerService` is that server-side w3newer: users upload
their hotlist (and optionally a threshold configuration) through a CGI
form; the service runs one shared checking pass per cycle — each URL
checked once however many users list it (the §8.3 economics) — and
serves every user a personal report on demand.

The decoupling caveat of §8.3 is inherited: the server cannot see the
user's browser history, so "seen" means "the user acknowledged the page
through the service" (the report's ``[Mark seen]`` link), not "the user
browsed it".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.w3newer.checker import content_checksum
from ..core.w3newer.hotlist import Hotlist
from ..core.w3newer.thresholds import ThresholdConfig
from ..html.entities import encode_entities
from ..simclock import NEVER, CronScheduler, SimClock, format_timestamp
from ..web.cgi import encode_query_string, parse_query_string
from ..web.client import UserAgent
from ..web.http import NetworkError, Request, Response, make_response

__all__ = ["HostedTrackerService", "HostedReportRow"]


@dataclass
class _PageState:
    checksum: Optional[str] = None
    last_modified: Optional[int] = None
    last_changed: Optional[int] = None
    last_checked: Optional[int] = None
    error: str = ""


@dataclass
class HostedReportRow:
    url: str
    title: str
    changed_since_ack: bool
    last_changed: Optional[int]
    error: str = ""


class HostedTrackerService:
    """Server-side w3newer with per-user hotlists and shared checking."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        config: Optional[ThresholdConfig] = None,
        script_path: str = "/cgi-bin/w3newer",
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.config = config or ThresholdConfig.default_config()
        self.script_path = script_path
        self._hotlists: Dict[str, Hotlist] = {}
        self._acks: Dict[str, Dict[str, int]] = {}  # user -> url -> ack time
        self._pages: Dict[str, _PageState] = {}
        self.check_cycles = 0

    # ------------------------------------------------------------------
    # Registration and checking
    # ------------------------------------------------------------------
    def upload_hotlist(self, user: str, hotlist_text: str,
                       fmt: str = "lines") -> int:
        """Store a user's hotlist (Netscape, Mosaic, or plain lines).

        Returns the number of entries accepted.
        """
        if fmt == "netscape":
            hotlist = Hotlist.from_netscape_html(hotlist_text)
        elif fmt == "mosaic":
            hotlist = Hotlist.from_mosaic(hotlist_text)
        elif fmt == "lines":
            hotlist = Hotlist.from_lines(hotlist_text)
        else:
            raise ValueError(f"unknown hotlist format: {fmt}")
        self._hotlists[user] = hotlist
        return len(hotlist)

    def tracked_urls(self) -> Set[str]:
        urls: Set[str] = set()
        for hotlist in self._hotlists.values():
            urls.update(hotlist.urls())
        return urls

    def check_cycle(self) -> int:
        """One shared pass: every distinct URL checked at most once.

        Thresholds apply server-side: a URL is skipped while its most
        recent check is younger than its threshold (first matching rule,
        as in the client configuration).  Returns the number of URLs
        actually fetched.
        """
        self.check_cycles += 1
        now = self.clock.now
        fetched = 0
        for url in sorted(self.tracked_urls()):
            threshold = self.config.threshold_for(url)
            if threshold == NEVER:
                continue
            state = self._pages.setdefault(url, _PageState())
            if (
                threshold > 0
                and state.last_checked is not None
                and now - state.last_checked < threshold
            ):
                continue
            fetched += 1
            self._check_one(url, state)
        return fetched

    def _check_one(self, url: str, state: _PageState) -> None:
        now = self.clock.now
        try:
            result = self.agent.get(url)
        except NetworkError as exc:
            state.error = str(exc)
            return
        if not result.response.ok:
            state.error = f"HTTP {result.response.status}"
            return
        state.error = ""
        state.last_checked = now
        state.last_modified = result.response.last_modified
        checksum = content_checksum(result.response.body)
        if state.checksum is not None and checksum != state.checksum:
            state.last_changed = now
        state.checksum = checksum

    def schedule(self, cron: CronScheduler, period: int):
        return cron.schedule(period, lambda now: self.check_cycle(),
                             name="hosted-w3newer")

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def acknowledge(self, user: str, url: str) -> None:
        """The user caught up on a page (the [Mark seen] link)."""
        self._acks.setdefault(user, {})[url] = self.clock.now

    def report_rows(self, user: str) -> List[HostedReportRow]:
        hotlist = self._hotlists.get(user)
        if hotlist is None:
            return []
        acks = self._acks.get(user, {})
        rows = []
        for entry in hotlist:
            state = self._pages.get(entry.url, _PageState())
            ack = acks.get(entry.url)
            if state.last_changed is None:
                changed = ack is None and state.checksum is not None
            else:
                changed = ack is None or state.last_changed > ack
            rows.append(HostedReportRow(
                url=entry.url,
                title=entry.display_title(),
                changed_since_ack=changed,
                last_changed=state.last_changed,
                error=state.error,
            ))
        rows.sort(key=lambda row: (not row.changed_since_ack,
                                   -(row.last_changed or 0), row.url))
        return rows

    def report_html(self, user: str) -> str:
        rows = self.report_rows(user)
        items = []
        for row in rows:
            flag = "<B>[changed]</B> " if row.changed_since_ack else ""
            detail = ""
            if row.last_changed is not None:
                detail = f" &#183; changed {format_timestamp(row.last_changed)}"
            if row.error:
                detail = f" &#183; {encode_entities(row.error)}"
            ack_query = encode_query_string(
                {"action": "ack", "user": user, "url": row.url}
            )
            items.append(
                f'<LI>{flag}<A HREF="{row.url}">'
                f"{encode_entities(row.title)}</A>{detail} "
                f'<A HREF="{self.script_path}?{ack_query}">[Mark seen]</A>'
            )
        changed = sum(1 for row in rows if row.changed_since_ack)
        return (
            "<HTML><HEAD><TITLE>AIDE hosted tracking</TITLE></HEAD><BODY>"
            f"<H1>What's new for {encode_entities(user)}</H1>"
            f"<P>{len(rows)} URLs tracked, {changed} changed.</P>"
            f"<UL>{''.join(items)}</UL></BODY></HTML>"
        )

    # ------------------------------------------------------------------
    # CGI face
    # ------------------------------------------------------------------
    def __call__(self, request: Request, now: int) -> Response:
        if request.method == "POST":
            params = parse_query_string(request.body)
        else:
            params = parse_query_string(request.url.query)
        action = params.get("action", "report")
        user = params.get("user", "")
        if not user:
            return make_response(400, "<P>user is required</P>")
        if action == "upload":
            hotlist_text = params.get("hotlist", "")
            fmt = params.get("format", "lines")
            try:
                count = self.upload_hotlist(user, hotlist_text, fmt=fmt)
            except ValueError as exc:
                return make_response(400, f"<P>{encode_entities(str(exc))}</P>")
            return make_response(
                200, f"<P>Hotlist stored: {count} entries. Reports at "
                     f'<A HREF="{self.script_path}?action=report&user={user}">'
                     "your report page</A>.</P>"
            )
        if action == "ack":
            url = params.get("url", "")
            if not url:
                return make_response(400, "<P>url is required</P>")
            self.acknowledge(user, url)
            return make_response(200, "<P>Marked as seen.</P>")
        if action == "report":
            return make_response(200, self.report_html(user))
        return make_response(400, f"<P>unknown action {action!r}</P>")
