"""WebWeaver: the AT&T WikiWikiWeb clone (paper Section 1).

"Within AT&T, a clone of WikiWikiWeb, called WebWeaver, stores its own
version archive and uses HtmlDiff to show users the differences from
earlier versions of a page...  There is a RecentChanges page that sorts
documents by modification date."

The wiki stores pages under WikiNames, keeps every edit in an RCS
archive, renders WikiName links, exposes RecentChanges, and serves
HtmlDiff between any pair of revisions — including the paper's
"natural and simple extension": per-user differences ("show me what
changed since *I* last read this page").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.htmldiff.api import HtmlDiffResult, html_diff
from ..core.htmldiff.options import HtmlDiffOptions
from ..html.entities import encode_entities
from ..rcs.archive import RcsArchive, UnknownRevision
from ..simclock import SimClock, format_timestamp

__all__ = ["WebWeaver", "WikiPageInfo"]

_WIKINAME_RE = re.compile(r"\b([A-Z][a-z0-9]+(?:[A-Z][a-z0-9]+)+)\b")


class WikiError(Exception):
    """Page or revision not found."""


@dataclass
class WikiPageInfo:
    name: str
    revision: str
    modified: int
    author: str


class WebWeaver:
    """A wiki whose every page is an RCS archive."""

    def __init__(self, clock: SimClock,
                 diff_options: Optional[HtmlDiffOptions] = None) -> None:
        self.clock = clock
        self.diff_options = diff_options
        self._archives: Dict[str, RcsArchive] = {}
        #: user → page → revision last read (the per-user extension).
        self._read_marks: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------
    def edit(self, name: str, content: str, author: str = "anonymous") -> str:
        """Save a page edit; returns the revision number.

        WikiWikiWeb semantics: "multiple users... edit the content of
        documents dynamically", content may change anywhere on the page.
        """
        if not _WIKINAME_RE.fullmatch(name):
            raise WikiError(f"not a WikiName: {name!r}")
        archive = self._archives.get(name)
        if archive is None:
            archive = RcsArchive(name=name)
            self._archives[name] = archive
        revision, _changed = archive.checkin(
            content, date=self.clock.now, author=author, log=f"edit by {author}"
        )
        return revision

    def exists(self, name: str) -> bool:
        return name in self._archives

    def page_names(self) -> List[str]:
        return sorted(self._archives)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def raw(self, name: str, revision: Optional[str] = None) -> str:
        archive = self._archives.get(name)
        if archive is None:
            raise WikiError(f"no such page: {name}")
        try:
            return archive.checkout(revision)
        except UnknownRevision as exc:
            raise WikiError(f"no revision {exc} of {name}")

    def render(self, name: str, reader: Optional[str] = None) -> str:
        """The page as HTML: WikiNames become links (existing pages) or
        create-links (missing ones); reading records the reader's mark."""
        content = self.raw(name)
        rendered = _WIKINAME_RE.sub(self._linkify, content)
        info = self.info(name)
        if reader:
            self.mark_read(reader, name)
        return (
            f"<HTML><HEAD><TITLE>{name}</TITLE></HEAD><BODY>"
            f"<H1>{name}</H1>{rendered}<HR>"
            f"<P><I>Revision {info.revision}, "
            f"{format_timestamp(info.modified)}, by "
            f"{encode_entities(info.author)}.</I> "
            f'<A HREF="/wiki/diff?page={name}">[Changes]</A> '
            f'<A HREF="/wiki/RecentChanges">[RecentChanges]</A></P>'
            "</BODY></HTML>"
        )

    def _linkify(self, match: re.Match) -> str:
        name = match.group(1)
        if name in self._archives:
            return f'<A HREF="/wiki/{name}">{name}</A>'
        return f'{name}<A HREF="/wiki/edit?page={name}">?</A>'

    def info(self, name: str) -> WikiPageInfo:
        archive = self._archives.get(name)
        if archive is None or not archive.revisions():
            raise WikiError(f"no such page: {name}")
        head = archive.revisions()[-1]
        return WikiPageInfo(
            name=name, revision=head.number, modified=head.date,
            author=head.author,
        )

    # ------------------------------------------------------------------
    # RecentChanges
    # ------------------------------------------------------------------
    def recent_changes(self, since: Optional[int] = None) -> List[WikiPageInfo]:
        """Pages sorted by modification date, newest first."""
        infos = [self.info(name) for name in self._archives]
        if since is not None:
            infos = [info for info in infos if info.modified >= since]
        return sorted(infos, key=lambda info: (-info.modified, info.name))

    def recent_changes_page(self, since: Optional[int] = None) -> str:
        rows = "".join(
            f'<LI><A HREF="/wiki/{info.name}">{info.name}</A> &#183; '
            f"{format_timestamp(info.modified)} &#183; "
            f"{encode_entities(info.author)} "
            f'<A HREF="/wiki/diff?page={info.name}">[Diff]</A>'
            for info in self.recent_changes(since)
        )
        return (
            "<HTML><HEAD><TITLE>RecentChanges</TITLE></HEAD><BODY>"
            f"<H1>RecentChanges</H1><UL>{rows or '<LI>(no pages)'}</UL>"
            "</BODY></HTML>"
        )

    # ------------------------------------------------------------------
    # Differences
    # ------------------------------------------------------------------
    def diff(self, name: str, rev_old: Optional[str] = None,
             rev_new: Optional[str] = None) -> HtmlDiffResult:
        """HtmlDiff between two revisions (previous → head by default)."""
        archive = self._archives.get(name)
        if archive is None:
            raise WikiError(f"no such page: {name}")
        revisions = [info.number for info in archive.revisions()]
        if rev_new is None:
            rev_new = revisions[-1]
        if rev_old is None:
            index = revisions.index(rev_new)
            rev_old = revisions[index - 1] if index > 0 else rev_new
        old = self.raw(name, rev_old)
        new = self.raw(name, rev_new)
        return html_diff(old, new, options=self.diff_options)

    def diff_for_reader(self, reader: str, name: str) -> HtmlDiffResult:
        """The per-user extension: changes since this reader last read.

        "While the differences are not currently customized for each
        user, that would be a natural and simple extension."
        """
        marks = self._read_marks.get(reader, {})
        rev_old = marks.get(name)
        if rev_old is None:
            rev_old = self._archives[name].revisions()[0].number \
                if name in self._archives else None
        return self.diff(name, rev_old=rev_old)

    def mark_read(self, reader: str, name: str) -> None:
        info = self.info(name)
        self._read_marks.setdefault(reader, {})[name] = info.revision

    def unseen_changes(self, reader: str) -> List[WikiPageInfo]:
        """RecentChanges personalized: pages changed past the reader's
        mark (the integration the paper suggests for the AIDE report)."""
        marks = self._read_marks.get(reader, {})
        out = []
        for info in self.recent_changes():
            if marks.get(info.name) != info.revision:
                out.append(info)
        return out

    # ------------------------------------------------------------------
    # HTTP face
    # ------------------------------------------------------------------
    def mount(self, server) -> None:
        """Serve the wiki from an :class:`~repro.web.server.HttpServer`.

        Routes (all CGI, WikiWikiWeb style):

        * ``/wiki/view?page=Name[&reader=who]`` — rendered page;
        * ``/wiki/RecentChanges`` — the sorted change list;
        * ``/wiki/diff?page=Name[&r1=..&r2=..][&reader=who]`` — HtmlDiff
          (reader form: changes since that reader last read the page);
        * ``/wiki/edit`` (POST ``page=..&content=..&author=..``).
        """
        server.register_cgi("/wiki/view", self._cgi_view)
        server.register_cgi("/wiki/RecentChanges", self._cgi_recent)
        server.register_cgi("/wiki/diff", self._cgi_diff)
        server.register_cgi("/wiki/edit", self._cgi_edit)

    def _cgi_view(self, request, now):
        from ..web.cgi import parse_query_string
        from ..web.http import make_response

        params = parse_query_string(request.url.query)
        name = params.get("page", "")
        try:
            return make_response(
                200, self.render(name, reader=params.get("reader") or None)
            )
        except WikiError as exc:
            return make_response(404, f"<P>{encode_entities(str(exc))}</P>")

    def _cgi_recent(self, request, now):
        from ..web.http import make_response

        return make_response(200, self.recent_changes_page())

    def _cgi_diff(self, request, now):
        from ..web.cgi import parse_query_string
        from ..web.http import make_response

        params = parse_query_string(request.url.query)
        name = params.get("page", "")
        try:
            reader = params.get("reader")
            if reader:
                result = self.diff_for_reader(reader, name)
            else:
                result = self.diff(name, rev_old=params.get("r1"),
                                   rev_new=params.get("r2"))
            return make_response(200, result.html)
        except (WikiError, KeyError) as exc:
            return make_response(404, f"<P>{encode_entities(str(exc))}</P>")

    def _cgi_edit(self, request, now):
        from ..web.cgi import parse_query_string
        from ..web.http import make_response

        if request.method != "POST":
            return make_response(405, "<P>edit requires POST</P>")
        params = parse_query_string(request.body)
        name = params.get("page", "")
        content = params.get("content", "")
        author = params.get("author", "anonymous")
        try:
            revision = self.edit(name, content, author=author)
        except WikiError as exc:
            return make_response(400, f"<P>{encode_entities(str(exc))}</P>")
        return make_response(
            200, f'<P>Saved {name} as revision {revision}. '
                 f'<A HREF="/wiki/view?page={name}">View</A></P>'
        )


WebWeaver.WikiError = WikiError
__all__.append("WikiError")
