"""URL prioritization against information overload (paper Section 7).

"Merely sorting URLs by most recent modification dates is not
satisfactory when the number of URLs grows into the hundreds.  Instead,
we are moving toward a user-specified prioritization of URLs along the
lines of the Tapestry system."

The configuration mirrors the threshold file: perl-style patterns with
a numeric priority, first match wins.  The resulting callable plugs
into :class:`repro.core.w3newer.report.ReportOptions` ``priority``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List

__all__ = ["PriorityRule", "PriorityConfig", "parse_priority_config"]


@dataclass(frozen=True)
class PriorityRule:
    pattern: str
    priority: float
    compiled: re.Pattern

    def matches(self, url: str) -> bool:
        return self.compiled.match(url) is not None


class PriorityConfig:
    """Ordered pattern → priority rules; higher sorts earlier."""

    def __init__(self, rules: List[PriorityRule], default: float = 0.0) -> None:
        self.rules = rules
        self.default = default

    def priority_for(self, url: str) -> float:
        for rule in self.rules:
            if rule.matches(url):
                return rule.priority
        return self.default

    def as_function(self) -> Callable[[str], float]:
        return self.priority_for


def parse_priority_config(text: str) -> PriorityConfig:
    """``<pattern> <priority>`` lines; ``Default <n>`` sets the floor."""
    rules: List[PriorityRule] = []
    default = 0.0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"line {line_number}: expected '<pattern> <priority>': {line!r}"
            )
        pattern, value_text = parts
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"line {line_number}: bad priority {value_text!r}")
        if pattern.lower() == "default":
            default = value
            continue
        try:
            compiled = re.compile(pattern)
        except re.error as exc:
            raise ValueError(f"line {line_number}: bad pattern {pattern!r}: {exc}")
        rules.append(PriorityRule(pattern=pattern, priority=value,
                                  compiled=compiled))
    return PriorityConfig(rules=rules, default=default)
