"""POST-form snapshotting (paper Section 8.4).

"services that use POST cannot be accessed [by plain AIDE], because the
input to the services is not stored.  Both w3newer and snapshot would
have to be modified to support the POST protocol, in order to invoke a
service and see if the result has changed, and then to store away the
result and display the changes if it has...  It, in turn, would have to
make a copy of its input to pass along to the actual service."

A :class:`PostFormRegistry` stores the filled-out form (the paper's
proposed browser extension stores it in the bookmark file); remembering
or diffing a form replays the stored input against the service and
versions the *output* in the snapshot store under a synthetic key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.htmldiff.api import HtmlDiffResult, html_diff
from ..core.snapshot.store import RememberResult, SnapshotError, SnapshotStore
from ..web.cgi import encode_query_string
from ..web.http import NetworkError
from ..web.url import parse_url

__all__ = ["StoredForm", "PostFormRegistry"]


@dataclass(frozen=True)
class StoredForm:
    """A filled-out form: the FORM tag's action URL plus its input."""

    name: str
    action_url: str
    fields: tuple  # sorted (key, value) pairs

    @property
    def body(self) -> str:
        return encode_query_string(dict(self.fields))

    @property
    def synthetic_url(self) -> str:
        """The archive key: the action URL with the form input folded
        into a synthetic query (POST bodies have no URL of their own)."""
        separator = "&" if "?" in self.action_url else "?"
        return f"{self.action_url}{separator}aide-post={self.body}"


class PostFormRegistry:
    """Stored forms plus remember/diff over their POST results."""

    def __init__(self, store: SnapshotStore) -> None:
        self.store = store
        self.forms: Dict[str, StoredForm] = {}

    def save_form(self, name: str, action_url: str,
                  fields: Dict[str, str]) -> StoredForm:
        form = StoredForm(
            name=name,
            action_url=str(parse_url(action_url).normalized()),
            fields=tuple(sorted(fields.items())),
        )
        self.forms[name] = form
        return form

    # ------------------------------------------------------------------
    def _invoke(self, form: StoredForm) -> str:
        """Replay the stored input against the service."""
        try:
            result = self.store.agent.post(form.action_url, body=form.body)
        except NetworkError as exc:
            raise SnapshotError(f"POST to {form.action_url} failed: {exc}")
        if not result.response.ok:
            raise SnapshotError(
                f"POST to {form.action_url}: HTTP {result.response.status}"
            )
        return result.response.body

    def remember(self, user: str, form_name: str) -> RememberResult:
        """POST the stored input; version the response."""
        form = self._form(form_name)
        body = self._invoke(form)
        key = form.synthetic_url
        archive = self.store.archive_for(key)
        revision, changed = archive.checkin(
            body, date=self.store.clock.now, author=user,
            log=f"POST result of form {form.name}",
        )
        self.store.users.record(user, key, revision, self.store.clock.now)
        return RememberResult(
            url=key, revision=revision, changed=changed,
            fetched_bytes=len(body), when=self.store.clock.now,
        )

    def diff(self, user: str, form_name: str) -> HtmlDiffResult:
        """Changes in the service's output since the user last saved it."""
        form = self._form(form_name)
        key = form.synthetic_url
        seen = self.store.users.last_seen_version(user, key)
        if seen is None:
            raise SnapshotError(
                f"{user} has no saved result for form {form.name!r}"
            )
        archive = self.store.archive_for(key)
        old = archive.checkout(seen.revision)
        new = self._invoke(form)
        return html_diff(old, new, options=self.store.diff_options)

    def _form(self, name: str) -> StoredForm:
        form = self.forms.get(name)
        if form is None:
            raise SnapshotError(f"no stored form named {name!r}")
        return form
