"""Browser-side integration (paper Sections 6 and 8.4).

Two browser shortcomings shape AIDE's rough edges:

1. **History decoupling** (Section 6): "Viewing a page with HtmlDiff
   does not cause the browser to record that the page has just been
   seen; instead, the browser records the URL that was used to invoke
   HtmlDiff...  the user must view a page directly as well as via
   HtmlDiff."  The paper suggests client-side execution ("Java might be
   suitable for conveying that information to the server").
2. **Forms** (Section 8.4): "the browser could be modified to have
   better support for forms: it should store the filled-out version of
   a form in its bookmark file... [and] be able to pass a form directly
   to AIDE."

:class:`IntegratedBrowser` is that modified browser: an ordinary
user agent plus a history database, which — when the
``history_integration`` extension is on — recognizes AIDE diff URLs and
records the *underlying* page as seen; and a bookmark file that can
hold filled-out forms and replay them through a
:class:`~repro.aide.postforms.PostFormRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.w3newer.history import BrowserHistory
from ..memento.client import MementoClient, MementoClientError, MementoFetch
from ..simclock import SimClock
from ..web.cgi import encode_query_string, parse_query_string
from ..web.client import UserAgent
from ..web.http import Response, format_http_date
from ..web.url import parse_url

__all__ = ["IntegratedBrowser", "FormBookmark", "TimeTravelSession",
           "TimeTravelPage"]


@dataclass(frozen=True)
class FormBookmark:
    """A filled-out form saved in the bookmark file (§8.4's wish)."""

    name: str
    action_url: str
    fields: tuple  # sorted (key, value) pairs

    @property
    def body(self) -> str:
        return encode_query_string(dict(self.fields))


class IntegratedBrowser:
    """A browser with the AIDE-awareness the paper asks for."""

    def __init__(
        self,
        agent: UserAgent,
        clock: SimClock,
        history: Optional[BrowserHistory] = None,
        history_integration: bool = True,
        aide_script_paths: tuple = ("/cgi-bin/snapshot",),
    ) -> None:
        self.agent = agent
        self.clock = clock
        self.history = history if history is not None else BrowserHistory()
        #: The fix is an extension; turn it off to get 1995 behaviour.
        self.history_integration = history_integration
        self.aide_script_paths = aide_script_paths
        self.form_bookmarks: Dict[str, FormBookmark] = {}

    # ------------------------------------------------------------------
    # Browsing
    # ------------------------------------------------------------------
    def browse(self, url: str) -> Response:
        """Fetch a page and record history.

        For an AIDE diff/view URL, the stock browser records only the
        CGI URL; with the integration extension the underlying page is
        recorded as seen too, so w3newer stops re-reporting it.
        """
        result = self.agent.get(url)
        self.history.visit(url, self.clock.now)
        if self.history_integration:
            target = self._aide_target(url)
            if target is not None:
                self.history.visit(target, self.clock.now)
        return result.response

    def _aide_target(self, url: str) -> Optional[str]:
        parsed = parse_url(url)
        if parsed.path not in self.aide_script_paths:
            return None
        params = parse_query_string(parsed.query)
        if params.get("action") in ("diff", "view", "history"):
            return params.get("url") or None
        return None

    # ------------------------------------------------------------------
    # Form bookmarks (§8.4)
    # ------------------------------------------------------------------
    def bookmark_form(self, name: str, action_url: str,
                      fields: Dict[str, str]) -> FormBookmark:
        """"Store the filled-out version of a form in its bookmark
        file, so the user could jump directly to the output"."""
        bookmark = FormBookmark(
            name=name,
            action_url=str(parse_url(action_url).normalized()),
            fields=tuple(sorted(fields.items())),
        )
        self.form_bookmarks[name] = bookmark
        return bookmark

    def open_form_bookmark(self, name: str) -> Response:
        """Jump directly to the CGI output of a saved form."""
        bookmark = self._bookmark(name)
        result = self.agent.post(bookmark.action_url, body=bookmark.body)
        self.history.visit(bookmark.action_url, self.clock.now)
        return result.response

    def hand_form_to_aide(self, name: str, registry, user: str):
        """"Pass a form directly to AIDE... so that the output could be
        stored under RCS" — registers the saved form with the POST-form
        snapshot registry and remembers its current output."""
        bookmark = self._bookmark(name)
        registry.save_form(name, bookmark.action_url, dict(bookmark.fields))
        return registry.remember(user, name)

    def _bookmark(self, name: str) -> FormBookmark:
        bookmark = self.form_bookmarks.get(name)
        if bookmark is None:
            raise KeyError(f"no form bookmark named {name!r}")
        return bookmark


# ----------------------------------------------------------------------
# Datetime-pinned browsing (Memento §3: "navigating the past web")
# ----------------------------------------------------------------------
@dataclass
class TimeTravelPage:
    """One page of a pinned session: the memento plus its outlinks."""

    #: The original URL the user asked for.
    url: str
    #: The memento actually served (None when the archive had nothing
    #: old enough — a recorded *miss*, not an exception).
    memento: Optional[MementoFetch]
    #: Outgoing links of the memento body, as original-web URLs — the
    #: addresses the *next* negotiation will pin, not URI-Ms.
    links: List[str] = field(default_factory=list)

    @property
    def served(self) -> bool:
        return self.memento is not None

    @property
    def datetime(self) -> Optional[int]:
        return self.memento.datetime if self.memento else None


class TimeTravelSession:
    """Browse the archived web as it stood at one pinned instant.

    Every navigation — the entry page and every followed link — goes
    through the archive's TimeGate with ``Accept-Datetime`` set to the
    pin, so under the default ``past`` policy the session can *never*
    surface a page state newer than the pin: the reader sees the web
    of that day, spoiler-free.  Links inside a memento are the
    original web's addresses (the BASE rewrite keeps them resolvable),
    and following one re-negotiates rather than fetching the live page.

    A link whose URL the archive never captured (404) or only captured
    later than the pin (406 under ``past``) is recorded as a miss in
    :attr:`trail` — the dead ends of the archived web are part of the
    experience, not crashes.
    """

    def __init__(self, agent, endpoint: str, pin: int,
                 policy: str = "past", source: str = "archive") -> None:
        self.client = MementoClient(agent, endpoint, source=source)
        self.pin = pin
        self.policy = policy
        #: Every navigation in order: the served pages and the misses.
        self.trail: List[TimeTravelPage] = []
        self.current: Optional[TimeTravelPage] = None

    @property
    def pin_string(self) -> str:
        """The pinned instant as an HTTP date (what goes on the wire)."""
        return format_http_date(self.pin)

    # ------------------------------------------------------------------
    def browse(self, url: str) -> TimeTravelPage:
        """Negotiate ``url`` at the pin and make it the current page."""
        try:
            fetch = self.client.memento_at(url, self.pin, policy=self.policy)
        except MementoClientError:
            page = TimeTravelPage(url=url, memento=None)
        else:
            page = TimeTravelPage(
                url=url, memento=fetch,
                links=self._outlinks(fetch.body, url),
            )
        self.trail.append(page)
        self.current = page
        return page

    def follow(self, index: int) -> TimeTravelPage:
        """Follow the current page's ``index``-th link, pinned."""
        if self.current is None or not self.current.served:
            raise MementoClientError("no current page to follow links from")
        links = self.current.links
        if not links:
            raise MementoClientError(
                f"{self.current.url} has no followable links")
        return self.browse(links[index % len(links)])

    @staticmethod
    def _outlinks(body: str, base_url: str) -> List[str]:
        from .tracker import extract_links

        return extract_links(body, base_url)
