"""Server-side version control (paper Section 8.1).

"if a server runs HtmlDiff and some perl scripts, it can provide a
direct version-control interface and avoid the need to store copies of
its HTML documents elsewhere.  A CGI script (/cgi-bin/rlog) converts
the output of rlog into HTML... Another script (/cgi-bin/co) displays a
version of a document under RCS control, while still another
(/cgi-bin/rcsdiff) displays the differences.  If the file's name ends
in .html then HtmlDiff is used to display the differences, rather than
the rcsdiff program."
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.htmldiff.api import html_diff
from ..core.htmldiff.options import HtmlDiffOptions
from ..html.entities import encode_entities
from ..rcs.archive import RcsArchive, UnknownRevision
from ..rcs.rcsdiff import rcsdiff_text
from ..rcs.rlog import rlog_html
from ..web.cgi import parse_query_string
from ..web.http import Request, Response, make_response
from ..web.server import HttpServer

__all__ = ["ServerSideVersioning"]


class ServerSideVersioning:
    """Mounts rlog/co/rcsdiff CGIs over a server's own RCS archives."""

    def __init__(self, server: HttpServer,
                 diff_options: Optional[HtmlDiffOptions] = None) -> None:
        self.server = server
        self.diff_options = diff_options
        self.archives: Dict[str, RcsArchive] = {}
        server.register_cgi("/cgi-bin/rlog", self._rlog)
        server.register_cgi("/cgi-bin/co", self._co)
        server.register_cgi("/cgi-bin/rcsdiff", self._rcsdiff)

    # ------------------------------------------------------------------
    # Content management: the server checks its own documents in.
    # ------------------------------------------------------------------
    def publish(self, path: str, body: str, author: str = "webmaster",
                log: str = "") -> str:
        """Update a document: serve it AND check it into its archive.

        Returns the new revision number.  The page gets an unobtrusive
        footer linking to its own history (the paper's suggestion of a
        Last-Modified field that links to the rlog script).
        """
        archive = self.archives.get(path)
        if archive is None:
            archive = RcsArchive(name=path)
            self.archives[path] = archive
        revision, _changed = archive.checkin(
            body, date=self.server.clock.now, author=author, log=log
        )
        footer = (
            f'\n<P><I><A HREF="/cgi-bin/rlog?file={path}">'
            f"Last modified: revision {revision}</A></I></P>"
        )
        self.server.set_page(path, body + footer)
        return revision

    def archive_for(self, path: str) -> Optional[RcsArchive]:
        return self.archives.get(path)

    # ------------------------------------------------------------------
    # The three CGIs
    # ------------------------------------------------------------------
    def _lookup(self, params: Dict[str, str]):
        path = params.get("file", "")
        archive = self.archives.get(path)
        return path, archive

    def _rlog(self, request: Request, now: int) -> Response:
        params = parse_query_string(request.url.query)
        path, archive = self._lookup(params)
        if archive is None:
            return make_response(
                404, f"<P>No version history for {encode_entities(path)}</P>"
            )
        return make_response(200, rlog_html(archive, file_param=path))

    def _co(self, request: Request, now: int) -> Response:
        params = parse_query_string(request.url.query)
        path, archive = self._lookup(params)
        if archive is None:
            return make_response(404, f"<P>No archive for {encode_entities(path)}</P>")
        try:
            text = archive.checkout(params.get("rev"))
        except UnknownRevision as exc:
            return make_response(404, f"<P>No such revision: {exc}</P>")
        content_type = "text/html" if path.endswith(".html") else "text/plain"
        return make_response(200, text, content_type=content_type)

    def _rcsdiff(self, request: Request, now: int) -> Response:
        params = parse_query_string(request.url.query)
        path, archive = self._lookup(params)
        if archive is None:
            return make_response(404, f"<P>No archive for {encode_entities(path)}</P>")
        r1 = params.get("r1")
        r2 = params.get("r2")
        if not r1:
            return make_response(400, "<P>r1 is required</P>")
        try:
            if path.endswith(".html"):
                old = archive.checkout(r1)
                new = archive.checkout(r2)
                result = html_diff(old, new, options=self.diff_options)
                return make_response(200, result.html)
            text = rcsdiff_text(archive, r1, r2)
            return make_response(
                200, f"<PRE>{encode_entities(text)}</PRE>"
            )
        except UnknownRevision as exc:
            return make_response(404, f"<P>No such revision: {exc}</P>")
