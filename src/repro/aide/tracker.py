"""Server-side URL tracking (paper Section 8.3).

"w3newer could be run on the set of pages that have been saved by the
snapshot daemon.  Regardless of how many users have registered an
interest in a page, it need only be checked once; if changed, the new
version could be saved automatically.  Then a user could request a list
of all pages that have been saved away, and get an indication of which
pages have changed since they were saved by the user."

Also the crawler extension: "it could be further extended to be
integrated with a 'web crawler' and track modifications to pages
pointed to by pages specified by the user" — virtual-library pages and
collections of related pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.snapshot.store import SnapshotError, SnapshotStore
from ..core.w3newer.checker import content_checksum
from ..html.lexer import Tag, tokenize_html
from ..simclock import CronScheduler, SimClock
from ..web.http import NetworkError
from ..web.url import join_url, parse_url

__all__ = ["CentralTracker", "TrackerReportRow", "extract_links"]


def extract_links(html: str, base_url: str) -> List[str]:
    """Absolute HTTP link targets of a page, in document order."""
    base = parse_url(base_url).normalized()
    seen: Set[str] = set()
    links: List[str] = []
    for node in tokenize_html(html):
        if isinstance(node, Tag) and node.name == "A" and not node.closing:
            href = node.attr("HREF")
            if not href:
                continue
            resolved = join_url(base, href).normalized()
            if resolved.scheme != "http":
                continue
            text = str(resolved)
            if text not in seen:
                seen.add(text)
                links.append(text)
    return links


@dataclass
class TrackerReportRow:
    """One row of a user's centralized report."""

    url: str
    changed_since_seen: bool
    head_revision: Optional[str]
    last_changed: Optional[int]
    via: str = "subscribed"  # or "crawled from <root>"


class CentralTracker:
    """Polls each page once for all subscribers; auto-archives changes."""

    def __init__(self, store: SnapshotStore, clock: SimClock) -> None:
        self.store = store
        self.clock = clock
        #: user → the URLs they subscribed to directly.
        self.subscriptions: Dict[str, Set[str]] = {}
        #: root URL → (depth, same host only) crawl configuration.
        self.crawl_roots: Dict[str, tuple] = {}
        #: URL → root it was discovered under.
        self._crawl_origin: Dict[str, str] = {}
        self._checksums: Dict[str, str] = {}
        self._last_changed: Dict[str, int] = {}
        self.poll_count = 0

    # ------------------------------------------------------------------
    def subscribe(self, user: str, url: str) -> None:
        key = str(parse_url(url).normalized())
        self.subscriptions.setdefault(user, set()).add(key)

    def add_crawl_root(self, user: str, url: str, depth: int = 1,
                       same_host_only: bool = True) -> None:
        """Track a page AND the pages it links to (hierarchically).

        "a single entry in one's hotlist could result in notification
        whenever any of those pages is modified."
        """
        key = str(parse_url(url).normalized())
        self.subscribe(user, key)
        self.crawl_roots[key] = (depth, same_host_only)

    def tracked_urls(self) -> Set[str]:
        urls: Set[str] = set()
        for subscribed in self.subscriptions.values():
            urls.update(subscribed)
        urls.update(self._crawl_origin.keys())
        return urls

    # ------------------------------------------------------------------
    def poll(self) -> Dict[str, bool]:
        """One sweep: fetch every tracked URL once, expand crawl roots,
        archive changes.  Returns url → changed-this-sweep."""
        self.poll_count += 1
        changed: Dict[str, bool] = {}
        # Crawl expansion happens against the current head contents.
        for root, (depth, same_host) in list(self.crawl_roots.items()):
            self._expand_root(root, depth, same_host)
        for url in sorted(self.tracked_urls()):
            changed[url] = self._poll_one(url)
        return changed

    def _expand_root(self, root: str, depth: int, same_host: bool) -> None:
        frontier = [(root, 0)]
        visited = {root}
        root_host = parse_url(root).host
        while frontier:
            url, level = frontier.pop(0)
            if level >= depth:
                continue
            body = self._fetch_quiet(url)
            if body is None:
                continue
            for link in extract_links(body, url):
                if same_host and parse_url(link).host != root_host:
                    continue
                if link in visited:
                    continue
                visited.add(link)
                self._crawl_origin.setdefault(link, root)
                frontier.append((link, level + 1))

    def _fetch_quiet(self, url: str) -> Optional[str]:
        try:
            result = self.store.agent.get(url)
        except NetworkError:
            return None
        if not result.response.ok:
            return None
        return result.response.body

    def _poll_one(self, url: str) -> bool:
        body = self._fetch_quiet(url)
        if body is None:
            return False
        checksum = content_checksum(body)
        if self._checksums.get(url) == checksum:
            return False
        first_sighting = url not in self._checksums
        self._checksums[url] = checksum
        try:
            self.store.checkin_content("aide-tracker", url, body)
        except SnapshotError:
            return False
        if not first_sighting:
            self._last_changed[url] = self.clock.now
            return True
        return False

    def schedule(self, cron: CronScheduler, period: int):
        return cron.schedule(period, lambda now: self.poll(),
                             name="central-tracker")

    # ------------------------------------------------------------------
    def report_for(self, user: str) -> List[TrackerReportRow]:
        """Which tracked pages changed since this user last saw them?

        The decoupling caveat (Section 8.3) applies: the tracker cannot
        see the user's browser history, so "seen" means "remembered via
        the service", and direct browsing does not count.
        """
        rows: List[TrackerReportRow] = []
        direct = self.subscriptions.get(user, set())
        for url in sorted(direct | {
            u for u, root in self._crawl_origin.items() if root in direct
        }):
            archive = self.store.archives.get(url)
            head = archive.head_revision if archive else None
            seen = self.store.users.last_seen_version(user, url)
            last_changed = self._last_changed.get(url)
            if head is None:
                changed = False
            elif seen is None:
                changed = True  # never seen by this user
            else:
                changed = seen.revision != head
            via = "subscribed" if url in direct else (
                f"crawled from {self._crawl_origin.get(url, '?')}"
            )
            rows.append(
                TrackerReportRow(
                    url=url, changed_since_seen=changed,
                    head_revision=head, last_changed=last_changed, via=via,
                )
            )
        return rows

    def mark_seen(self, user: str, url: str) -> None:
        """The user caught up on a page via the service."""
        key = str(parse_url(url).normalized())
        archive = self.store.archives.get(key)
        if archive is None or archive.head_revision is None:
            return
        self.store.users.record(user, key, archive.head_revision, self.clock.now)
