"""AIDE integration: the three tools as one system, plus Section 8.

The :class:`Aide` facade stands up the deployment (Section 6); the rest
of the package is the extensions the paper describes: fixed-page
community archives (8.2), centralized tracking with a crawler (8.3),
server-side RCS CGIs (8.1), POST-form snapshotting (8.4), Tapestry-like
prioritization (Section 7), and the WebWeaver wiki (Section 1).
"""

from .browser import FormBookmark, IntegratedBrowser
from .engine import Aide, AideUser
from .harvest import ChangeNotice, DistributedRepository, RegionalCache
from .hosted import HostedReportRow, HostedTrackerService
from .fixedpages import FixedPageCollection, PollResult
from .postforms import PostFormRegistry, StoredForm
from .prioritize import PriorityConfig, PriorityRule, parse_priority_config
from .serverside import ServerSideVersioning
from .tracker import CentralTracker, TrackerReportRow, extract_links
from .webweaver import WebWeaver, WikiPageInfo

__all__ = [
    "FormBookmark",
    "IntegratedBrowser",
    "ChangeNotice",
    "DistributedRepository",
    "RegionalCache",
    "HostedReportRow",
    "HostedTrackerService",
    "Aide",
    "AideUser",
    "FixedPageCollection",
    "PollResult",
    "PostFormRegistry",
    "StoredForm",
    "PriorityConfig",
    "PriorityRule",
    "parse_priority_config",
    "ServerSideVersioning",
    "CentralTracker",
    "TrackerReportRow",
    "extract_links",
    "WebWeaver",
    "WikiPageInfo",
]
