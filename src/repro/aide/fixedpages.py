"""Fixed pages: community "What's New" service (paper Section 8.2).

"AIDE can provide a community of users with specialized 'What's New'
pages that report when any of a fixed set of URLs has been changed.
Rather than having users specify when to archive a new version, each
page is automatically archived as soon as a change is detected."

The collection polls its URL set (one conditional check per URL
regardless of audience size), auto-checks changed pages into the
snapshot store under a service identity, and renders the community
report with Diff/History links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.snapshot.store import SnapshotError, SnapshotStore
from ..core.w3newer.checker import content_checksum
from ..html.entities import encode_entities
from ..simclock import CronScheduler, SimClock, format_timestamp
from ..web.cgi import encode_query_string
from ..web.http import NetworkError

__all__ = ["FixedPageCollection", "PollResult"]

ARCHIVE_IDENTITY = "aide-archive"


@dataclass
class PollResult:
    """One polling sweep over the collection."""

    when: int
    checked: int = 0
    changed: List[str] = field(default_factory=list)
    errors: Dict[str, str] = field(default_factory=dict)


class FixedPageCollection:
    """A fixed URL set, auto-archived on every detected change."""

    def __init__(
        self,
        store: SnapshotStore,
        clock: SimClock,
        title: str = "What's New",
        snapshot_base: str = "/cgi-bin/snapshot",
    ) -> None:
        self.store = store
        self.clock = clock
        self.title = title
        self.snapshot_base = snapshot_base
        self.urls: List[str] = []
        self._checksums: Dict[str, str] = {}
        self._last_changed: Dict[str, int] = {}
        self.polls: List[PollResult] = []

    def add_url(self, url: str) -> None:
        if url not in self.urls:
            self.urls.append(url)

    # ------------------------------------------------------------------
    def poll(self) -> PollResult:
        """Fetch every URL; archive the ones whose content changed.

        Change detection is checksum-based so pages without
        Last-Modified (CGI output) participate too.
        """
        result = PollResult(when=self.clock.now)
        for url in self.urls:
            result.checked += 1
            try:
                fetch = self.store.agent.get(url)
            except NetworkError as exc:
                result.errors[url] = str(exc)
                continue
            if not fetch.response.ok:
                result.errors[url] = f"HTTP {fetch.response.status}"
                continue
            checksum = content_checksum(fetch.response.body)
            if self._checksums.get(url) == checksum:
                continue
            self._checksums[url] = checksum
            try:
                remembered = self.store.checkin_content(
                    ARCHIVE_IDENTITY, url, fetch.response.body
                )
            except SnapshotError as exc:
                result.errors[url] = str(exc)
                continue
            if remembered.changed or remembered.revision == "1.1":
                result.changed.append(url)
                self._last_changed[url] = self.clock.now
        self.polls.append(result)
        return result

    def schedule(self, cron: CronScheduler, period: int):
        return cron.schedule(period, lambda now: self.poll(),
                             name=f"fixed-pages:{self.title}")

    # ------------------------------------------------------------------
    def whats_new_page(self, since: Optional[int] = None) -> str:
        """The community report: recently changed pages, newest first,
        with Diff and History links into the snapshot service."""
        rows = []
        items = sorted(
            self._last_changed.items(), key=lambda kv: -kv[1]
        )
        for url, changed_at in items:
            if since is not None and changed_at < since:
                continue
            diff_q = encode_query_string(
                {"action": "diff", "url": url, "user": ARCHIVE_IDENTITY}
            )
            hist_q = encode_query_string(
                {"action": "history", "url": url, "user": ARCHIVE_IDENTITY}
            )
            rows.append(
                f'<LI><A HREF="{url}">{encode_entities(url)}</A> &#183; '
                f"changed {format_timestamp(changed_at)} "
                f'<A HREF="{self.snapshot_base}?{diff_q}">[Diff]</A> '
                f'<A HREF="{self.snapshot_base}?{hist_q}">[History]</A>'
            )
        body = "".join(rows) or "<LI>(nothing has changed yet)"
        return (
            f"<HTML><HEAD><TITLE>{encode_entities(self.title)}</TITLE></HEAD>"
            f"<BODY><H1>{encode_entities(self.title)}</H1>"
            f"<P>{len(self.urls)} pages tracked.</P><UL>{body}</UL>"
            "</BODY></HTML>"
        )

    # ------------------------------------------------------------------
    def archive_bytes(self) -> int:
        """Disk cost of the auto-archive (the Section 8.2 concern:
        wholesale-replacement pages balloon the archive)."""
        return sum(
            self.store.archive_for(url).size_bytes() for url in self.urls
        )
