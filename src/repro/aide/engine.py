"""The AIDE facade: w3newer + snapshot + HtmlDiff as one system.

Section 6: "There are two entry points to AIDE, one through w3newer and
one through snapshot."  :class:`Aide` stands up the whole deployment on
a simulated internet: the snapshot service mounted as a CGI on an AIDE
host, per-user w3newer trackers whose reports link into that CGI, and a
browser model per user so the history-integration wart is faithfully
reproduced (clicking Diff does *not* mark the page as seen; visiting it
directly does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.snapshot.service import SnapshotService
from ..core.snapshot.store import SnapshotStore
from ..core.w3newer.checker import CheckerFlags
from ..core.w3newer.history import BrowserHistory
from ..core.w3newer.hotlist import Hotlist
from ..core.w3newer.report import ReportOptions
from ..core.w3newer.runner import RunResult, W3Newer
from ..core.w3newer.statuscache import StatusCache
from ..core.w3newer.thresholds import ThresholdConfig
from ..obs import NOOP as NOOP_OBS
from ..simclock import SimClock
from ..web.cgi import encode_query_string
from ..web.client import UserAgent
from ..web.http import Response
from ..web.network import Network
from ..web.proxy import ProxyCache

__all__ = ["Aide", "AideUser"]


@dataclass
class AideUser:
    """One person using AIDE: their hotlist, history, and tracker."""

    name: str
    hotlist: Hotlist
    history: BrowserHistory
    tracker: W3Newer
    browser: UserAgent

    def visit(self, url: str, clock: SimClock) -> Response:
        """Browse to a page directly: fetches it AND updates history —
        the only way a page stops being reported as changed."""
        result = self.browser.get(url)
        self.history.visit(url, clock.now)
        return result.response


class Aide:
    """A complete AIDE deployment on a simulated internet."""

    SERVICE_HOST = "aide.research.att.com"
    SERVICE_PATH = "/cgi-bin/snapshot"

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        network: Optional[Network] = None,
        proxy_ttl: int = 3600,
        use_proxy: bool = True,
        obs=None,
    ) -> None:
        self.clock = clock or SimClock()
        self.network = network or Network(self.clock)
        #: One Observability instance for the whole deployment: the
        #: store, the CGI service, and every user's tracker share it.
        self.obs = obs if obs is not None else NOOP_OBS
        self.proxy = (
            ProxyCache(self.network, self.clock, ttl=proxy_ttl)
            if use_proxy else None
        )
        #: The service's own fetches go direct (it sits near the backbone).
        self.service_agent = UserAgent(self.network, self.clock,
                                       agent_name="AIDE-snapshot/1.0")
        self.store = SnapshotStore(self.clock, self.service_agent,
                                   obs=self.obs)
        self.service = SnapshotService(self.store, script_path=self.SERVICE_PATH)
        self.server = self.network.create_server(self.SERVICE_HOST)
        self.server.register_cgi(self.SERVICE_PATH, self.service)
        self.users: Dict[str, AideUser] = {}

    # ------------------------------------------------------------------
    def add_user(
        self,
        name: str,
        hotlist: Hotlist,
        config: Optional[ThresholdConfig] = None,
        flags: Optional[CheckerFlags] = None,
    ) -> AideUser:
        """Provision a user: browser, history, and a w3newer wired to
        the shared proxy and the snapshot service."""
        history = BrowserHistory()
        browser = UserAgent(self.network, self.clock, proxy=self.proxy,
                            agent_name="Mozilla/1.1N")
        agent = UserAgent(self.network, self.clock, proxy=self.proxy,
                          agent_name="w3newer/1.0")
        tracker = W3Newer(
            clock=self.clock,
            agent=agent,
            hotlist=hotlist,
            config=config,
            history=history,
            cache=StatusCache(),
            proxy=self.proxy,
            flags=flags,
            report_options=ReportOptions(
                snapshot_base=f"http://{self.SERVICE_HOST}{self.SERVICE_PATH}",
                user=name,
            ),
            obs=self.obs,
        )
        user = AideUser(name=name, hotlist=hotlist, history=history,
                        tracker=tracker, browser=browser)
        self.users[name] = user
        return user

    # ------------------------------------------------------------------
    # The three report links, exercised the way a browser would.
    # ------------------------------------------------------------------
    def _service_call(self, user: AideUser, params: Dict[str, str]) -> Response:
        query = encode_query_string(params)
        url = f"http://{self.SERVICE_HOST}{self.SERVICE_PATH}?{query}"
        return user.browser.get(url).response

    def remember(self, user_name: str, url: str) -> Response:
        user = self.users[user_name]
        return self._service_call(
            user, {"action": "remember", "url": url, "user": user_name}
        )

    def diff(self, user_name: str, url: str) -> Response:
        """Clicking Diff: shows the changes but — Section 6's wart —
        records only the CGI URL in the browser history, so w3newer
        keeps reporting the page as modified."""
        user = self.users[user_name]
        response = self._service_call(
            user, {"action": "diff", "url": url, "user": user_name}
        )
        # The browser history records the *CGI* URL, not the page.
        user.history.visit(
            f"http://{self.SERVICE_HOST}{self.SERVICE_PATH}", self.clock.now
        )
        return response

    def history_page(self, user_name: str, url: str) -> Response:
        user = self.users[user_name]
        return self._service_call(
            user, {"action": "history", "url": url, "user": user_name}
        )

    def run_w3newer(self, user_name: str) -> RunResult:
        return self.users[user_name].tracker.run()

    # ------------------------------------------------------------------
    # Optional services mounted onto the AIDE host
    # ------------------------------------------------------------------
    def enable_hosted_tracking(self, config=None):
        """Mount the §7 hosted w3newer at ``/cgi-bin/w3newer``."""
        from .hosted import HostedTrackerService

        service = HostedTrackerService(
            self.clock, self.service_agent, config=config,
            script_path="/cgi-bin/w3newer",
        )
        self.server.register_cgi("/cgi-bin/w3newer", service)
        return service

    def enable_wiki(self):
        """Mount a WebWeaver wiki on the AIDE host (``/wiki/...``)."""
        from .webweaver import WebWeaver

        weaver = WebWeaver(self.clock)
        weaver.mount(self.server)
        return weaver

    def enable_server_side_versioning(self, origin_host: str):
        """Give an origin server the §8.1 rlog/co/rcsdiff CGIs."""
        from .serverside import ServerSideVersioning

        server = self.network.server_for(origin_host)
        if server is None:
            raise ValueError(f"no such host: {origin_host}")
        return ServerSideVersioning(server)
