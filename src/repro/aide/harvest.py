"""Harvest-style lazy change notification (paper Section 3.1).

"Instead, one could envision using something like the Harvest
replication and caching services to notify interested parties in a lazy
fashion.  A user who expresses an interest in a page, or a browser that
is currently caching a page, could register an interest in the page
with its local caching service.  The caching service would in turn
register an interest with an Internet-wide, distributed service that
would make a best effort to notify the caching service of changes in a
timely fashion...  the mechanism for discovering when a page changes
could be left to a negotiation between the distributed repository and
the content provider: either the content provider notifies the
repository of changes, or the repository polls it periodically.  Either
way, there would not be a large number of clients polling each
interesting HTTP server."

The model:

* :class:`DistributedRepository` — the Internet-wide service.  Each
  tracked page has a discovery mode: ``provider-notify`` (the content
  provider calls :meth:`DistributedRepository.provider_changed`) or
  ``poll`` (the repository checks on its own schedule).  It keeps one
  replicated copy per page and best-effort-notifies subscribed caches.
* :class:`RegionalCache` — the user-side caching service.  Users
  register interest locally; the cache subscribes upstream once per
  page and queues notifications for its users to collect lazily.

Best effort is literal: a configurable, deterministic fraction of
notifications is dropped in transit; subscribers recover on the next
poll round or provider event (at-least-once over time, not per event).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.w3newer.checker import content_checksum
from ..simclock import CronScheduler, SimClock
from ..web.client import UserAgent
from ..web.http import NetworkError
from ..web.url import parse_url

__all__ = ["DistributedRepository", "RegionalCache", "ChangeNotice"]


@dataclass(frozen=True)
class ChangeNotice:
    """One change notification as delivered to a cache or user."""

    url: str
    changed_at: int
    delivered_at: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.changed_at


class DistributedRepository:
    """The Internet-wide replication + notification service."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        drop_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.clock = clock
        self.agent = agent
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._modes: Dict[str, str] = {}  # url -> "poll" | "provider-notify"
        self._replicas: Dict[str, str] = {}  # url -> replicated content
        self._checksums: Dict[str, str] = {}
        self._subscribers: Dict[str, List["RegionalCache"]] = {}
        self.poll_requests = 0
        self.notifications_sent = 0
        self.notifications_dropped = 0

    # ------------------------------------------------------------------
    def track(self, url: str, mode: str = "poll") -> None:
        """Begin tracking a page (negotiated with its provider)."""
        if mode not in ("poll", "provider-notify"):
            raise ValueError(f"unknown discovery mode: {mode}")
        key = str(parse_url(url).normalized())
        self._modes[key] = mode
        if key not in self._checksums:
            self._refresh(key, notify=False)

    def subscribe(self, url: str, cache: "RegionalCache") -> None:
        key = str(parse_url(url).normalized())
        subscribers = self._subscribers.setdefault(key, [])
        if cache not in subscribers:
            subscribers.append(cache)
        if key not in self._modes:
            self.track(key)

    def replica(self, url: str) -> Optional[str]:
        """The replicated page content — served without touching the
        origin ("pages would already be replicated, with server load
        distributed")."""
        return self._replicas.get(str(parse_url(url).normalized()))

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def provider_changed(self, url: str) -> None:
        """The content provider tells us a page changed (push mode)."""
        key = str(parse_url(url).normalized())
        if self._modes.get(key) != "provider-notify":
            raise ValueError(f"{key} is not in provider-notify mode")
        self._refresh(key, notify=True)

    def poll_round(self) -> int:
        """Poll every page in poll mode once; returns changes found."""
        changed = 0
        for url, mode in sorted(self._modes.items()):
            if mode != "poll":
                continue
            if self._refresh(url, notify=True):
                changed += 1
        return changed

    def schedule(self, cron: CronScheduler, period: int):
        return cron.schedule(period, lambda now: self.poll_round(),
                             name="harvest-repository")

    def _refresh(self, url: str, notify: bool) -> bool:
        try:
            result = self.agent.get(url)
        except NetworkError:
            return False
        if not result.response.ok:
            return False
        self.poll_requests += 1
        body = result.response.body
        checksum = content_checksum(body)
        previous = self._checksums.get(url)
        self._checksums[url] = checksum
        self._replicas[url] = body
        if previous is None or previous == checksum:
            return False
        if notify:
            self._notify(url)
        return True

    def _notify(self, url: str) -> None:
        for cache in self._subscribers.get(url, ()):
            self.notifications_sent += 1
            if self._rng.random() < self.drop_rate:
                self.notifications_dropped += 1
                continue  # best effort: this one is lost
            cache.deliver(ChangeNotice(
                url=url, changed_at=self.clock.now,
                delivered_at=self.clock.now,
            ))


class RegionalCache:
    """A local caching service holding its users' interests."""

    def __init__(self, name: str, repository: DistributedRepository,
                 clock: SimClock) -> None:
        self.name = name
        self.repository = repository
        self.clock = clock
        self._interests: Dict[str, Set[str]] = {}  # url -> users
        self._inboxes: Dict[str, List[ChangeNotice]] = {}
        self.notices_received = 0

    # ------------------------------------------------------------------
    def register_interest(self, user: str, url: str) -> None:
        """A user (or their browser's cache) cares about a page.

        The upstream subscription happens once per page, however many
        local users register — the fan-in the design is about.
        """
        key = str(parse_url(url).normalized())
        first = key not in self._interests
        self._interests.setdefault(key, set()).add(user)
        if first:
            self.repository.subscribe(key, self)

    def deliver(self, notice: ChangeNotice) -> None:
        """Upstream notification arrives; fan out to local inboxes."""
        self.notices_received += 1
        for user in self._interests.get(notice.url, ()):
            self._inboxes.setdefault(user, []).append(
                ChangeNotice(url=notice.url, changed_at=notice.changed_at,
                             delivered_at=self.clock.now)
            )

    def collect(self, user: str) -> List[ChangeNotice]:
        """The lazy part: the user picks up notices when they get
        around to it (e.g. from their next w3newer report)."""
        return self._inboxes.pop(user, [])

    def page(self, url: str) -> Optional[str]:
        """Serve a page from the replicated repository, not the origin."""
        return self.repository.replica(url)
