"""The :class:`Observability` facade: registry + tracer + journal.

One object threads through the whole deployment (``Aide(obs=...)``
fans it out to the store, the service, and every tracker).  Components
accept ``obs=None`` and fall back to the module-level :data:`NOOP`
singleton, whose handles are shared do-nothing objects — so an
uninstrumented deployment pays one attribute load and one no-op call
per instrumentation site, and produces byte-identical output either
way (the differential guarantee ``bench_observability`` gates).

``save(directory)`` persists one run's telemetry as three files:

* ``events.jsonl`` — the span/event stream (byte-reproducible for a
  fixed seed; ``aide trace`` renders it);
* ``metrics.json`` — the lossless registry snapshot (``aide metrics``
  renders it);
* ``metrics.prom`` — the Prometheus text exposition of the same
  snapshot.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence

from .events import EventJournal
from .export import to_json, to_prometheus
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = ["Observability", "NOOP", "noop"]


class Observability:
    """Everything one deployment records about itself."""

    def __init__(self, clock=None, seed: int = 0,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.seed = seed
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.journal = EventJournal(clock=clock, enabled=enabled)
        self.tracer = Tracer(clock=clock, seed=seed, journal=self.journal,
                             enabled=enabled)

    # ------------------------------------------------------------------
    # delegation sugar, so call sites need only one handle
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help=help)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        return self.registry.histogram(name, buckets=buckets, help=help)

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields) -> None:
        self.journal.emit(kind, **fields)

    def register_stats(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Adopt a legacy ``stats()`` provider as a registry collector."""
        self.registry.register_collector(prefix, fn)

    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    def save(self, directory: str) -> Dict[str, str]:
        """Write events.jsonl / metrics.json / metrics.prom; returns
        the path of each file written."""
        os.makedirs(directory, exist_ok=True)
        paths = {
            "events": os.path.join(directory, "events.jsonl"),
            "metrics": os.path.join(directory, "metrics.json"),
            "prometheus": os.path.join(directory, "metrics.prom"),
        }
        self.journal.write(paths["events"])
        snapshot = self.snapshot()
        with open(paths["metrics"], "w", encoding="utf-8") as handle:
            handle.write(to_json(snapshot))
        with open(paths["prometheus"], "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(snapshot))
        return paths

    @classmethod
    def disabled(cls) -> "Observability":
        """A fresh disabled instance (prefer :data:`NOOP` as a default)."""
        return cls(enabled=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (f"Observability({state}, seed={self.seed}, "
                f"{len(self.journal)} events)")


#: The shared do-nothing instance every component defaults to.
NOOP = Observability(enabled=False)


def noop() -> Observability:
    """The shared :data:`NOOP` instance (for call sites that want a
    callable default rather than the module constant)."""
    return NOOP
