"""The structured event journal: one append-only JSONL stream per run.

Every observable occurrence — a retry, a circuit opening, a
transaction commit, a finished span — is one record:

    {"kind": "resilience.retry", "seq": 12, "t": 86420, "host": ...}

``seq`` is the arrival order (total order within a run), ``t`` the
simulation time.  Records carry only JSON-scalar fields supplied by
the instrumented code; serialization sorts keys and uses compact
separators, so two runs of the same seeded scenario produce
byte-identical streams — the property the determinism tests pin.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["EventJournal"]


class EventJournal:
    """In-memory JSONL journal of structured run events."""

    def __init__(self, clock=None, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.records: List[Dict[str, object]] = []
        self._seq = 0

    def emit(self, kind: str, **fields) -> None:
        """Append one event; ``fields`` must be JSON-serializable."""
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "seq": self._seq,
            "t": self.clock.now if self.clock is not None else 0,
            "kind": kind,
        }
        record.update(fields)
        self._seq += 1
        self.records.append(record)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r["kind"] == kind]

    def to_jsonl(self) -> str:
        """The canonical byte-stable serialization."""
        if not self.records:
            return ""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records
        ) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
