"""Sim-clock tracing: nested spans with deterministic ids.

A :class:`Span` brackets one logical operation (a per-URL w3newer
check, a snapshot check-in transaction, an HtmlDiff phase).  Spans
nest: the tracer keeps a stack, so a ``snapshot.checkin`` opened
inside a ``w3newer.run`` records that run as its parent.

Two departures from wall-clock tracers, both deliberate:

* **Ids are a seeded sha256 chain**, not ``random``/``uuid``: each
  ``span()`` advances ``state = sha256(state + name)`` and takes the
  first 8 bytes.  Identical seeds and identical operation sequences
  produce identical ids, so traces are byte-reproducible across runs
  and safe to compare in differential tests — and, because no global
  RNG is consumed, opening a span can never perturb seeded workloads
  or ``SimScheduler`` interleavings.
* **Timestamps are simulation time.**  Operations that cost simulated
  seconds (retry backoffs, keep-alive waits, lock waits) show real
  durations; CPU-bound phases show zero and carry work counts
  (tokens, entries) as attributes instead.  Wall-clock timings are
  excluded on purpose: they would break byte-reproducibility.

Finished spans become ``kind="span"`` records in the shared
:class:`~repro.obs.events.EventJournal`, interleaved with plain events
in completion order.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from .events import EventJournal

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One in-flight (then finished) traced operation."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "end",
                 "attrs", "error")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: str, start: int,
                 attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[int] = None
        self.attrs = attrs
        self.error = ""

    def set(self, **attrs) -> None:
        """Attach (JSON-scalar) attributes to the span."""
        self.attrs.update(attrs)

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.error = exc_type.__name__
        self.tracer._finish(self)
        return False  # never swallow


class _NoopSpan:
    """Shared span stand-in when tracing is disabled."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = ""
    start = 0
    end = 0
    error = ""

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces nested spans on the sim clock with chained ids."""

    def __init__(self, clock=None, seed: int = 0,
                 journal: Optional[EventJournal] = None,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.seed = seed
        self.journal = journal
        self.enabled = enabled
        self._state = hashlib.sha256(
            f"aide-trace:{seed}".encode("utf-8")).digest()
        self._stack: List[Span] = []
        self.finished: List[Span] = []

    # ------------------------------------------------------------------
    def _next_id(self, name: str) -> str:
        self._state = hashlib.sha256(
            self._state + name.encode("utf-8")).digest()
        return self._state[:8].hex()

    def _now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as a context manager."""
        if not self.enabled:
            return NOOP_SPAN
        parent = self._stack[-1].span_id if self._stack else ""
        span = Span(self, name, self._next_id(name), parent,
                    self._now(), attrs)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._now()
        # Spans close LIFO under the context-manager discipline; an
        # out-of-order close (a span kept past its parent) still pops
        # everything above it so the stack cannot wedge.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.finished.append(span)
        if self.journal is not None:
            self.journal.emit(
                "span",
                name=span.name,
                span=span.span_id,
                parent=span.parent_id,
                start=span.start,
                end=span.end,
                error=span.error,
                attrs=dict(sorted(span.attrs.items())),
            )

    # ------------------------------------------------------------------
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None
