"""Exporters: the registry snapshot as Prometheus text or JSON.

Both render the flat ``name → value`` mapping produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.  The text format
follows the Prometheus exposition conventions (dotted names become
underscore names, histograms expand to ``_bucket``/``_sum``/``_count``
series); non-numeric collector values (host lists, state strings) are
skipped there but preserved in the JSON document, which is the
lossless form.

Output is byte-deterministic: the snapshot arrives sorted and both
exporters iterate it in order.
"""

from __future__ import annotations

import json
import re
from typing import Dict

__all__ = ["to_prometheus", "to_json"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus-style text exposition of a registry snapshot."""
    lines = []
    for name, value in snapshot.items():
        metric = _metric_name(name)
        if isinstance(value, dict) and value.get("kind") == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            for bound, count in value["buckets"]:
                lines.append(f'{metric}_bucket{{le="{bound}"}} {count}')
            lines.append(f"{metric}_sum {value['sum']}")
            lines.append(f"{metric}_count {value['count']}")
        elif isinstance(value, bool):
            lines.append(f"{metric} {int(value)}")
        elif isinstance(value, (int, float)):
            if isinstance(value, float):
                lines.append(f"{metric} {value:.6g}")
            else:
                lines.append(f"{metric} {value}")
        elif value is None:
            continue  # e.g. an unbounded retry budget
        else:
            continue  # lists/strings live in the JSON export only
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: Dict[str, object]) -> str:
    """The lossless JSON document (every collector value included)."""
    return json.dumps(snapshot, sort_keys=True, indent=2, default=str) + "\n"
