"""The metrics registry: counters, gauges, fixed-bucket histograms.

The paper evaluates AIDE operationally — Table 1 is per-URL check
costs, Section 7 is storage behavior — yet the reproduction grew its
instrumentation as eight disconnected ``stats()`` dicts.  This module
is the unifying substrate: one :class:`MetricsRegistry` holding every
counter under a hierarchical dotted name (``snapshot.wal.commits``,
``w3newer.fetch.bytes``), with the existing ``stats()`` providers
riding along as *collectors* (callables polled at snapshot time, so
the legacy dicts stay the source of truth and no counter is kept
twice).

Determinism rules (shared with the tracer):

* metric values derive only from work performed and the
  :class:`~repro.simclock.SimClock` — never ``time.time`` or
  ``random``;
* :meth:`MetricsRegistry.snapshot` iterates names sorted, so two runs
  of the same scenario export byte-identical text.

When a registry is *disabled*, ``counter()``/``gauge()``/
``histogram()`` hand back shared no-op singletons whose mutators do
nothing: instrumented code keeps one attribute load + one method call
on the hot path and nothing else.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "DEFAULT_BUCKETS",
]

#: Default histogram bounds, in simulated seconds: spans the paper's
#: operation costs (1s cheap ops through one-hour cron periods).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the latest reading)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit ``+Inf`` bucket.  Buckets are fixed at
    construction so exports are shape-stable across runs.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 help: str = "") -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, object]:
        """The export shape: cumulative ``le`` buckets + sum + count."""
        cumulative = 0
        buckets = []
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", self.count])
        return {"kind": "histogram", "buckets": buckets,
                "sum": self.sum, "count": self.count}


class _NoopCounter:
    """Shared do-nothing counter handed out by a disabled registry."""

    kind = "counter"
    name = ""
    help = ""
    value = 0
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    kind = "gauge"
    name = ""
    help = ""
    value = 0
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: int = 1) -> None:
        pass


class _NoopHistogram:
    kind = "histogram"
    name = ""
    help = ""
    sum = 0
    count = 0
    __slots__ = ()

    def observe(self, value) -> None:
        pass


NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


def _flatten(prefix: str, value, out: Dict[str, object]) -> None:
    """Recursively flatten a stats() dict under dotted ``prefix``."""
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = value


class MetricsRegistry:
    """All of a deployment's metrics, by hierarchical dotted name.

    Two populations:

    * **instruments** — counters/gauges/histograms created through
      :meth:`counter` / :meth:`gauge` / :meth:`histogram` and mutated
      by instrumented code;
    * **collectors** — legacy ``stats()`` callables registered under a
      prefix; polled lazily at :meth:`snapshot` time and flattened
      into dotted names, so the scattered dicts surface in the same
      namespace without double bookkeeping.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Tuple[str, Callable[[], dict]]] = []

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NOOP_COUNTER
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NOOP_GAUGE
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        if not self.enabled:
            return NOOP_HISTOGRAM
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(name, buckets=buckets, help=help)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, name: str, cls, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help=help)
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------
    # collectors (the legacy stats() surfaces)
    # ------------------------------------------------------------------
    def register_collector(self, prefix: str,
                           fn: Callable[[], dict]) -> None:
        """Poll ``fn()`` at snapshot time; flatten under ``prefix``.

        Re-registering a prefix replaces the previous collector (a
        rebuilt store re-registers itself without leaking the old one).
        """
        if not self.enabled:
            return
        self._collectors = [
            (p, f) for p, f in self._collectors if p != prefix
        ]
        self._collectors.append((prefix, fn))

    def collector_prefixes(self) -> List[str]:
        return sorted(prefix for prefix, _fn in self._collectors)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One deterministic flat mapping of name → value.

        Counters/gauges export their number, histograms their
        bucket/sum/count dict, collectors their flattened stats.  A
        collector key that collides with an instrument name wins (the
        legacy dict is the source of truth).  Keys come back sorted so
        serializations are byte-stable.
        """
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        for prefix, fn in self._collectors:
            _flatten(prefix, fn(), out)
        return dict(sorted(out.items()))
