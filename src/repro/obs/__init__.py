"""Unified observability: metrics registry, sim-clock tracing, and
structured run telemetry for the AIDE reproduction.

Quick start::

    from repro.obs import Observability

    obs = Observability(clock=clock, seed=7)
    aide = Aide(clock=clock, obs=obs)
    ...                       # run trackers, remember/diff pages
    obs.save("run-telemetry") # events.jsonl + metrics.json + metrics.prom

Everything is deterministic on purpose: span ids come from a seeded
sha256 chain, timestamps from the shared :class:`~repro.simclock.SimClock`,
and exports iterate sorted names — two runs of the same seeded
scenario produce byte-identical telemetry, and an instrumented run
produces byte-identical *output* (reports, archives) to an
uninstrumented one.
"""

from .events import EventJournal
from .export import to_json, to_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
)
from .runtime import NOOP, Observability, noop
from .trace import NOOP_SPAN, Span, Tracer

__all__ = [
    "Observability",
    "NOOP",
    "noop",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "EventJournal",
    "to_prometheus",
    "to_json",
]
