"""UNIX diff over HTML: the presentation baseline HtmlDiff displaces.

Section 2.3: "Line-based comparison utilities such as UNIX diff clearly
are ill-suited to the comparison of structured documents such as HTML."
This module makes that claim measurable: it diffs the raw HTML lines
and reports which *content* changes that misses or misreports, so the
S3 quality benchmark can count false positives (pure reformatting
flagged as change) and false negatives relative to HtmlDiff's
sentence-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..diffcore.huntmcilroy import hunt_mcilroy_pairs
from ..diffcore.textdiff import unified_diff
from ..html.entities import encode_entities

__all__ = ["LineDiffReport", "line_diff_html"]


@dataclass
class LineDiffReport:
    """What a line diff sees between two HTML sources."""

    old_lines: int
    new_lines: int
    deleted_lines: int
    added_lines: int
    unified: str

    @property
    def flags_change(self) -> bool:
        return self.deleted_lines > 0 or self.added_lines > 0

    @property
    def changed_fraction(self) -> float:
        total = self.old_lines + self.new_lines
        if total == 0:
            return 0.0
        return (self.deleted_lines + self.added_lines) / total


def line_diff_html(old_html: str, new_html: str) -> LineDiffReport:
    """Diff two HTML documents the way ``diff old.html new.html`` would."""
    old_lines = old_html.split("\n")
    new_lines = new_html.split("\n")
    pairs = hunt_mcilroy_pairs(old_lines, new_lines)
    common = len(pairs)
    return LineDiffReport(
        old_lines=len(old_lines),
        new_lines=len(new_lines),
        deleted_lines=len(old_lines) - common,
        added_lines=len(new_lines) - common,
        unified=unified_diff(old_lines, new_lines, "old.html", "new.html"),
    )


def render_as_page(report: LineDiffReport) -> str:
    """The best a line tool can offer the browser: a <PRE> dump.

    No merged context, no live links, raw markup shown as text — the
    presentation gap the merged page closes.
    """
    return (
        "<HTML><HEAD><TITLE>diff output</TITLE></HEAD><BODY><PRE>"
        + encode_entities(report.unified)
        + "</PRE></BODY></HTML>"
    )


__all__.append("render_as_page")
