"""w3new: the baseline w3newer was derived from (Cutter, 1995).

"To our knowledge, the tools described in Section 2.1 poll every URL
with the same frequency.  We modified w3new to make it more scalable."
The baseline therefore: no thresholds, no status cache, no proxy
consultation — every run HEADs every URL (falling back to GET+checksum
when Last-Modified is missing), and compares against the browser
history.  The S1 scalability benchmark measures exactly how many HTTP
requests this costs versus w3newer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.w3newer.checker import content_checksum
from ..core.w3newer.errors import CheckOutcome, CheckSource, UrlState
from ..core.w3newer.history import BrowserHistory
from ..core.w3newer.hotlist import Hotlist
from ..simclock import SimClock
from ..web.client import UserAgent
from ..web.http import NetworkError

__all__ = ["W3New"]


@dataclass
class _Baseline:
    checksum: Optional[str] = None


class W3New:
    """Poll-everything change tracker."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        hotlist: Hotlist,
        history: Optional[BrowserHistory] = None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.hotlist = hotlist
        # Explicit None check: an empty BrowserHistory is falsy.
        self.history = history if history is not None else BrowserHistory()
        self._baselines: Dict[str, _Baseline] = {}
        self.runs: List[List[CheckOutcome]] = []

    def run(self) -> List[CheckOutcome]:
        """Check every URL, every time."""
        outcomes = [self._check(entry.url) for entry in self.hotlist]
        self.runs.append(outcomes)
        return outcomes

    # ------------------------------------------------------------------
    def _check(self, url: str) -> CheckOutcome:
        last_seen = self.history.last_seen(url)
        try:
            result = self.agent.head(url)
        except NetworkError as exc:
            return CheckOutcome(url=url, state=UrlState.ERROR, error=str(exc),
                                last_seen=last_seen, http_requests=1)
        requests = 1 + len(result.redirects)
        response = result.response
        if not response.ok:
            return CheckOutcome(
                url=url, state=UrlState.ERROR,
                error=f"HTTP {response.status}", last_seen=last_seen,
                http_requests=requests,
            )
        mod = response.last_modified
        if mod is not None:
            if last_seen is None:
                state = UrlState.NEVER_SEEN
            elif mod > last_seen:
                state = UrlState.CHANGED
            else:
                state = UrlState.SEEN
            return CheckOutcome(
                url=url, state=state, source=CheckSource.HEAD,
                modification_date=mod, last_seen=last_seen,
                http_requests=requests,
            )
        # No Last-Modified: GET and checksum the whole page, every run.
        try:
            got = self.agent.get(url)
        except NetworkError as exc:
            return CheckOutcome(url=url, state=UrlState.ERROR, error=str(exc),
                                last_seen=last_seen, http_requests=requests + 1)
        requests += 1 + len(got.redirects)
        checksum = content_checksum(got.response.body)
        baseline = self._baselines.setdefault(url, _Baseline())
        previous = baseline.checksum
        baseline.checksum = checksum
        if previous is None:
            state = UrlState.NEVER_SEEN if last_seen is None else UrlState.SEEN
        elif checksum != previous:
            state = UrlState.CHANGED if last_seen is not None else UrlState.NEVER_SEEN
        else:
            state = UrlState.SEEN if last_seen is not None else UrlState.NEVER_SEEN
        return CheckOutcome(
            url=url, state=state, source=CheckSource.CHECKSUM,
            last_seen=last_seen, http_requests=requests,
        )
