"""Smart Bookmarks / Netscape SmartMarks (First Floor Software, 1995).

Section 2.1: bookmarks are "automatically polled to determine if they
have been modified.  In addition, content providers can optionally
embed bulletins in their pages, which allow short messages about a page
to be displayed in a page that refers to it."

The bulletin extension is modelled as a ``<META NAME="bulletin">`` tag
the poller extracts along with the HEAD information.  The two failure
modes the paper calls out are reproduced measurably:

* timeliness — the bulletin reflects what the *maintainer* considers
  new, not what this user has or hasn't seen;
* opacity — "a bulletin that announces that '10 new links have been
  added' will not point the user to the specific locations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.w3newer.history import BrowserHistory
from ..core.w3newer.hotlist import Hotlist
from ..html.lexer import Tag, tokenize_html
from ..simclock import SimClock
from ..web.client import UserAgent
from ..web.http import NetworkError

__all__ = ["SmartMarks", "SmartMarkRow", "extract_bulletin"]


def extract_bulletin(html: str) -> Optional[str]:
    """The page's embedded bulletin, if the provider supplied one."""
    for node in tokenize_html(html):
        if (
            isinstance(node, Tag)
            and node.name == "META"
            and (node.attr("NAME") or "").lower() == "bulletin"
        ):
            return node.attr("CONTENT")
    return None


@dataclass
class SmartMarkRow:
    """One bookmark's polled status."""

    url: str
    title: str
    changed: bool
    modification_date: Optional[int]
    bulletin: Optional[str] = None
    error: str = ""


class SmartMarks:
    """Bookmark-integrated poller with bulletin display."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        hotlist: Hotlist,
        history: Optional[BrowserHistory] = None,
    ) -> None:
        self.clock = clock
        self.agent = agent
        self.hotlist = hotlist
        # Explicit None check: an empty BrowserHistory is falsy.
        self.history = history if history is not None else BrowserHistory()

    def poll(self) -> List[SmartMarkRow]:
        """Check every bookmark (no thresholds — same frequency for all)."""
        rows = []
        for entry in self.hotlist:
            rows.append(self._poll_one(entry.url, entry.display_title()))
        return rows

    def _poll_one(self, url: str, title: str) -> SmartMarkRow:
        last_seen = self.history.last_seen(url)
        try:
            head = self.agent.head(url)
        except NetworkError as exc:
            return SmartMarkRow(url=url, title=title, changed=False,
                                modification_date=None, error=str(exc))
        if not head.response.ok:
            return SmartMarkRow(
                url=url, title=title, changed=False, modification_date=None,
                error=f"HTTP {head.response.status}",
            )
        mod = head.response.last_modified
        changed = mod is not None and (last_seen is None or mod > last_seen)
        bulletin = None
        if changed:
            # Fetch the page to pick up the provider's bulletin, if any.
            try:
                got = self.agent.get(url)
                if got.response.ok:
                    bulletin = extract_bulletin(got.response.body)
            except NetworkError:
                pass
        return SmartMarkRow(url=url, title=title, changed=changed,
                            modification_date=mod, bulletin=bulletin)

    def render(self, rows: List[SmartMarkRow]) -> str:
        """The bookmark list with change flags and bulletins — what the
        user sees; note there is no pointer to *where* pages changed."""
        items = []
        for row in rows:
            flag = "<B>[changed]</B> " if row.changed else ""
            bulletin = f"<BR><I>{row.bulletin}</I>" if row.bulletin else ""
            error = f" ({row.error})" if row.error else ""
            items.append(
                f'<LI>{flag}<A HREF="{row.url}">{row.title}</A>{error}{bulletin}'
            )
        return "<UL>" + "\n".join(items) + "</UL>"
