"""URL-minder: the centralized checksum-and-email service (1995).

Section 2.1: "URL-minder... runs as a service on the W3 itself and
sends email when a page changes.  Unlike the tools that run on the
user's host... URL-minder acts on URLs provided explicitly by a user
via an HTML form.  Centralizing the update checks on a W3 server has
the advantage of polling hosts only once regardless of the number of
users interested...  URL-minder uses a checksum of the content of a
page... [and] checks pages with an arbitrary frequency that is
guaranteed to be at least as often as some threshold, such as a week."

The deficiency AIDE fixes is also faithful: the email says *that* the
page changed, never *how*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..core.w3newer.checker import content_checksum
from ..simclock import WEEK, CronScheduler, SimClock, format_timestamp
from ..web.client import UserAgent
from ..web.http import NetworkError

__all__ = ["UrlMinder", "Email"]


@dataclass(frozen=True)
class Email:
    """A change notification.  Note what is absent: any description of
    the modification — the deficiency motivating HtmlDiff."""

    to: str
    url: str
    sent_at: int

    @property
    def body(self) -> str:
        return (
            f"The URL-minder has detected a change in the Web page\n"
            f"   {self.url}\n"
            f"as of {format_timestamp(self.sent_at)}.\n"
            "Visit the page to see what is different.\n"
        )


class UrlMinder:
    """Centralized checksum poller with email notifications."""

    def __init__(self, clock: SimClock, agent: UserAgent,
                 poll_period: int = WEEK) -> None:
        self.clock = clock
        self.agent = agent
        self.poll_period = poll_period
        self._subscribers: Dict[str, Set[str]] = {}  # url -> users
        self._checksums: Dict[str, str] = {}
        self.outbox: List[Email] = []
        self.polls = 0

    # ------------------------------------------------------------------
    def register(self, user_email: str, url: str) -> None:
        """The HTML-form registration ("cumbersome", but here we are)."""
        self._subscribers.setdefault(url, set()).add(user_email)

    def subscriber_count(self, url: str) -> int:
        return len(self._subscribers.get(url, ()))

    # ------------------------------------------------------------------
    def poll(self) -> int:
        """One sweep: each URL fetched once regardless of subscribers.

        Returns the number of change emails sent.
        """
        self.polls += 1
        sent = 0
        for url, users in sorted(self._subscribers.items()):
            try:
                result = self.agent.get(url)
            except NetworkError:
                continue
            if not result.response.ok:
                continue
            checksum = content_checksum(result.response.body)
            previous = self._checksums.get(url)
            self._checksums[url] = checksum
            if previous is not None and checksum != previous:
                for user in sorted(users):
                    self.outbox.append(
                        Email(to=user, url=url, sent_at=self.clock.now)
                    )
                    sent += 1
        return sent

    def schedule(self, cron: CronScheduler):
        return cron.schedule(self.poll_period, lambda now: self.poll(),
                             name="url-minder")
