"""The systems AIDE is compared against.

w3new (poll everything — what w3newer descends from), URL-minder
(centralized checksum + email), Smart Bookmarks (HEAD polling +
provider bulletins), and plain UNIX diff as an HTML presentation.
"""

from .linediff import LineDiffReport, line_diff_html, render_as_page
from .smartmarks import SmartMarkRow, SmartMarks, extract_bulletin
from .urlminder import Email, UrlMinder
from .w3new import W3New

__all__ = [
    "LineDiffReport",
    "line_diff_html",
    "render_as_page",
    "SmartMarkRow",
    "SmartMarks",
    "extract_bulletin",
    "Email",
    "UrlMinder",
    "W3New",
]
