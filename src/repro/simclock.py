"""Simulated time for the AIDE reproduction.

The paper's tools live on wall-clock time: w3newer thresholds are written
as ``2d`` or ``12h`` (Table 1), staleness is "one week", cron drives
periodic runs, and RCS revisions carry datestamps.  Reproducing week-long
polling experiments against a real clock is impossible in-process, so all
components take a :class:`SimClock` and never consult the OS clock.

Durations are plain integers (seconds) decorated with the paper's
``NdMh``-style spelling via :func:`parse_duration` / :func:`format_duration`.
``Timestamp`` is seconds since the simulation epoch (we render it as a
1990s-style date purely for cosmetic fidelity in reports).
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "NEVER",
    "parse_duration",
    "format_duration",
    "format_timestamp",
    "parse_timestamp",
    "timestamp_from_civil",
    "MONTH_NAMES",
    "SimClock",
    "CronScheduler",
    "CronJob",
]

SECOND = 1
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Sentinel duration meaning "do not ever check" (Table 1's ``never``).
NEVER = -1

#: The simulation epoch rendered as a date.  Chosen to sit inside the
#: paper's deployment window (second half of 1995).
_EPOCH_LABEL = (1995, 9, 1)

_DURATION_RE = re.compile(
    r"^\s*(?:(?P<weeks>\d+)w)?\s*(?:(?P<days>\d+)d)?\s*(?:(?P<hours>\d+)h)?"
    r"\s*(?:(?P<minutes>\d+)m)?\s*(?:(?P<seconds>\d+)s)?\s*$",
    re.IGNORECASE,
)

_MONTH_LENGTHS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
_MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
#: Public alias — HTTP date parsers (RFC 850 / asctime tolerance in
#: :mod:`repro.web.http`) resolve month names against the same table
#: the formatter draws from.
MONTH_NAMES = _MONTH_NAMES
_DAY_NAMES = ("Fri", "Sat", "Sun", "Mon", "Tue", "Wed", "Thu")


def parse_duration(text: str) -> int:
    """Parse a Table 1 threshold spelling into seconds.

    Accepts combinations of ``w``/``d``/``h``/``m``/``s`` units (the paper
    shows ``2d``, ``7d``, ``12h``, ``1d``), the literal ``0`` meaning
    "check on every run", and ``never`` meaning "never check".

    >>> parse_duration("2d") == 2 * DAY
    True
    >>> parse_duration("1d12h") == DAY + 12 * HOUR
    True
    >>> parse_duration("never") == NEVER
    True
    """
    stripped = text.strip().lower()
    if stripped == "never":
        return NEVER
    if stripped in {"0", "0s"}:
        return 0
    if not stripped:
        raise ValueError("empty duration")
    match = _DURATION_RE.match(stripped)
    if not match or not any(match.groupdict().values()):
        # A bare integer is taken as seconds, matching cron-ish configs.
        if stripped.isdigit():
            return int(stripped)
        raise ValueError(f"unparseable duration: {text!r}")
    parts = {k: int(v) for k, v in match.groupdict().items() if v}
    return (
        parts.get("weeks", 0) * WEEK
        + parts.get("days", 0) * DAY
        + parts.get("hours", 0) * HOUR
        + parts.get("minutes", 0) * MINUTE
        + parts.get("seconds", 0) * SECOND
    )


def format_duration(seconds: int) -> str:
    """Render seconds back into the compact ``NdMh`` form.

    >>> format_duration(2 * DAY)
    '2d'
    >>> format_duration(NEVER)
    'never'
    >>> format_duration(0)
    '0'
    """
    if seconds == NEVER:
        return "never"
    if seconds == 0:
        return "0"
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    out = []
    for unit, label in ((DAY, "d"), (HOUR, "h"), (MINUTE, "m"), (SECOND, "s")):
        count, seconds = divmod(seconds, unit)
        if count:
            out.append(f"{count}{label}")
    return "".join(out)


def _civil_from_offset(days: int) -> Tuple[int, int, int]:
    """Convert a day offset from the epoch into (year, month, day)."""
    year, month, day = _EPOCH_LABEL
    # Walk forward a day at a time; simulations span months, not millennia.
    while days > 0:
        month_len = _MONTH_LENGTHS[month - 1]
        if month == 2 and year % 4 == 0 and (year % 100 != 0 or year % 400 == 0):
            month_len = 29
        remaining_in_month = month_len - day
        if days <= remaining_in_month:
            return year, month, day + days
        days -= remaining_in_month + 1
        day = 1
        month += 1
        if month > 12:
            month = 1
            year += 1
    return year, month, day


def format_timestamp(ts: int) -> str:
    """Render a simulation timestamp as an HTTP-date-like string.

    The format mirrors RFC 1123 dates as sent in ``Last-Modified``
    headers, e.g. ``Fri, 01 Sep 1995 00:00:00 GMT``.
    """
    if ts < 0:
        raise ValueError(f"negative timestamp: {ts}")
    days, rem = divmod(ts, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes, seconds = divmod(rem, MINUTE)
    year, month, day = _civil_from_offset(days)
    weekday = _DAY_NAMES[days % 7]
    return (
        f"{weekday}, {day:02d} {_MONTH_NAMES[month - 1]} {year} "
        f"{hours:02d}:{minutes:02d}:{seconds:02d} GMT"
    )


_HTTP_DATE_RE = re.compile(
    r"^\s*(?:\w{3}),\s+(\d{1,2})\s+(\w{3})\s+(\d{4})\s+"
    r"(\d{2}):(\d{2}):(\d{2})\s+GMT\s*$"
)


def timestamp_from_civil(
    year: int, month: int, day: int,
    hours: int = 0, minutes: int = 0, seconds: int = 0,
) -> Optional[int]:
    """Convert a civil date into a simulation timestamp.

    None for out-of-range fields, impossible calendar dates, or dates
    before the simulation epoch (1 Sep 1995).  The shared tail of every
    HTTP date parser — RFC 1123 here, and the tolerant RFC 850/asctime
    variants in :func:`repro.web.http.parse_http_date`.
    """
    if not 1 <= month <= 12:
        return None
    if hours > 23 or minutes > 59 or seconds > 59:
        return None
    if min(hours, minutes, seconds, day) < 0:
        return None
    # Count days from the epoch (1 Sep 1995) to (year, month, day).
    e_year, e_month, e_day = _EPOCH_LABEL
    if (year, month, day) < (e_year, e_month, e_day):
        return None
    days = 0
    y, m, d = e_year, e_month, e_day
    while (y, m) != (year, month):
        month_len = _MONTH_LENGTHS[m - 1]
        if m == 2 and y % 4 == 0 and (y % 100 != 0 or y % 400 == 0):
            month_len = 29
        days += month_len - d + 1
        d = 1
        m += 1
        if m > 12:
            m = 1
            y += 1
    if day > (_MONTH_LENGTHS[month - 1] + (
        1 if month == 2 and year % 4 == 0
        and (year % 100 != 0 or year % 400 == 0) else 0
    )):
        return None
    days += day - d
    return days * DAY + hours * HOUR + minutes * MINUTE + seconds * SECOND


def parse_timestamp(text: str) -> Optional[int]:
    """Parse an RFC-1123 date back into a simulation timestamp.

    The inverse of :func:`format_timestamp`; None for unparseable input
    or for dates before the simulation epoch (1 Sep 1995) — real 1995
    servers emitted all three HTTP date formats plus garbage, and a
    tracker must shrug at anything it cannot read.  (The tolerant
    all-three-formats parser is :func:`repro.web.http.parse_http_date`,
    which funnels into :func:`timestamp_from_civil` like this one.)
    """
    match = _HTTP_DATE_RE.match(text or "")
    if not match:
        return None
    day = int(match.group(1))
    month_name = match.group(2).capitalize()
    if month_name not in _MONTH_NAMES:
        return None
    month = _MONTH_NAMES.index(month_name) + 1
    year = int(match.group(3))
    hours, minutes, seconds = (int(match.group(i)) for i in (4, 5, 6))
    return timestamp_from_civil(year, month, day, hours, minutes, seconds)


class SimClock:
    """A monotonically advancing simulated clock.

    Every subsystem (web servers, proxy caches, w3newer, the snapshot
    service, RCS datestamps) shares one instance so that "one week ago"
    means the same thing everywhere.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulation time in seconds since the epoch."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        self._now += seconds
        return self._now

    def advance_to(self, when: int) -> int:
        """Jump forward to an absolute time (no-op if already past it)."""
        if when > self._now:
            self._now = when
        return self._now

    def httpdate(self) -> str:
        """The current time as an HTTP date string."""
        return format_timestamp(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self._now}: {self.httpdate()})"


@dataclass(order=True)
class CronJob:
    """A recurring job on the simulated timeline (sorted by next firing)."""

    next_fire: int
    sequence: int
    period: int = field(compare=False)
    action: Callable[[int], None] = field(compare=False)
    name: str = field(compare=False, default="")
    enabled: bool = field(compare=False, default=True)


class CronScheduler:
    """A minimal cron: fixed-period jobs driven by :class:`SimClock`.

    The paper invokes w3newer "probably by a crontab entry" and the
    snapshot daemon archives fixed pages periodically; this scheduler
    plays that role.  ``run_until`` advances the clock job by job, firing
    each action with the current simulation time.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[CronJob] = []
        self._sequence = 0

    def schedule(
        self,
        period: int,
        action: Callable[[int], None],
        name: str = "",
        first_fire: Optional[int] = None,
    ) -> CronJob:
        """Register a job firing every ``period`` seconds.

        ``first_fire`` defaults to one period from now, matching cron's
        behaviour of not firing at registration time.
        """
        if period <= 0:
            raise ValueError("cron period must be positive")
        fire = first_fire if first_fire is not None else self.clock.now + period
        job = CronJob(
            next_fire=fire,
            sequence=self._sequence,
            period=period,
            action=action,
            name=name,
        )
        self._sequence += 1
        heapq.heappush(self._heap, job)
        return job

    def cancel(self, job: CronJob) -> None:
        """Disable a job; it is dropped lazily when it next surfaces."""
        job.enabled = False

    def run_until(self, deadline: int) -> int:
        """Fire every due job up to and including ``deadline``.

        Returns the number of job firings.  The clock is advanced to each
        firing time and finally to the deadline itself.
        """
        fired = 0
        while self._heap and self._heap[0].next_fire <= deadline:
            job = heapq.heappop(self._heap)
            if not job.enabled:
                continue
            self.clock.advance_to(job.next_fire)
            job.action(self.clock.now)
            fired += 1
            job.next_fire += job.period
            job.sequence = self._sequence
            self._sequence += 1
            heapq.heappush(self._heap, job)
        self.clock.advance_to(deadline)
        return fired

    def pending(self) -> Iterator[CronJob]:
        """Iterate over enabled jobs (unordered)."""
        return (job for job in self._heap if job.enabled)
