"""Memento (RFC 7089) interop for the snapshot archives.

The paper's AIDE can address a stored page only by revision number
through its own CGI.  This package makes *datetime* a first-class
address across every layer, the way "Memento: Time Travel for the Web"
(PAPERS.md) standardized it:

* :mod:`.core` — the protocol vocabulary: datetime negotiation
  policies (one shared resolver that :meth:`RcsArchive.revision_at`
  and every endpoint reuse), ``Link`` header serialization with the
  ``timegate``/``timemap``/``memento``/``first``/``last``/``prev``/
  ``next`` relations, and ``application/link-format`` TimeMap bodies;
* :mod:`.endpoints` — the server side: TimeGate (302 to the nearest
  revision), per-URL TimeMap, and URI-M memento endpoints mounted on
  both the CGI :class:`~repro.core.snapshot.service.SnapshotService`
  and the sharded :class:`~repro.serve.server.DiffServer`;
* :mod:`.client` — a :class:`MementoClient` that walks a *remote*
  archive's TimeGates and TimeMaps over any agent (including
  :class:`~repro.web.resilience.ResilientAgent`);
* :mod:`.federation` — merged local + remote TimeMaps and
  cross-archive diffs via :func:`~repro.core.htmldiff.api.html_diff`.

Only :mod:`.core` is imported here: it has no dependency on the store
or the web client, so low layers (``rcs.archive``) can import the
shared resolver without a cycle.  Import ``.endpoints`` / ``.client`` /
``.federation`` explicitly where needed.
"""

from .core import (
    ACCEPT_DATETIME,
    LINK_FORMAT,
    MEMENTO_DATETIME,
    LinkEntry,
    Memento,
    NegotiationError,
    TimeMap,
    format_link_header,
    format_timemap,
    memento_uri,
    parse_link_header,
    parse_timemap,
    resolve_datetime,
    timegate_uri,
    timemap_uri,
    validate_policy,
)

__all__ = [
    "ACCEPT_DATETIME",
    "LINK_FORMAT",
    "MEMENTO_DATETIME",
    "LinkEntry",
    "Memento",
    "NegotiationError",
    "TimeMap",
    "format_link_header",
    "format_timemap",
    "memento_uri",
    "parse_link_header",
    "parse_timemap",
    "resolve_datetime",
    "timegate_uri",
    "timemap_uri",
    "validate_policy",
]
