"""Server-side Memento endpoints over a snapshot store.

Three CGI actions, mounted by
:class:`~repro.core.snapshot.service.SnapshotService` (and therefore by
every shard of the :class:`~repro.serve.server.DiffServer`):

* ``action=timegate&url=U`` — datetime content negotiation: a **302**
  to the URI-M of the revision :func:`~repro.memento.core.
  resolve_datetime` selects for the request's ``Accept-Datetime``
  header, with ``Vary: accept-datetime`` and a ``Link`` header naming
  the original, the TimeMap, and the first/last mementos;
* ``action=timemap&url=U`` — the ``application/link-format`` (or
  ``format=json``) listing of every archived revision;
* ``action=memento&url=U&rev=R`` — one archived revision (the URI-M),
  BASE-rewritten exactly like ``action=view`` so a TimeGate redirect
  and a direct ``view_at`` produce byte-identical bodies, stamped with
  ``Memento-Datetime`` and ``first``/``last``/``prev``/``next``
  navigation links.

Negotiation failures are verdicts, not crashes: an empty archive is a
404, a malformed ``Accept-Datetime`` is a 400, a policy that cannot be
satisfied (``exact`` miss, or ``past`` with nothing archived that
early) is a **406 Not Acceptable**, and a URL whose only history is a
quarantine-journal entry re-raises the stored
:class:`~repro.core.snapshot.store.ContentQuarantined` verdict so the
service's 422 path renders it.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..core.snapshot.store import ContentQuarantined, SnapshotError
from ..web.http import (
    Request,
    Response,
    format_http_date,
    make_response,
    parse_http_date,
)
from .core import (
    ACCEPT_DATETIME,
    LINK_FORMAT,
    MEMENTO_DATETIME,
    LinkEntry,
    Memento,
    NegotiationError,
    TimeMap,
    format_link_header,
    format_timemap,
    memento_uri,
    timegate_uri,
    timemap_uri,
    validate_policy,
)

__all__ = ["MementoEndpoints", "MementoHttpError", "MEMENTO_ACTIONS"]

#: The CGI actions this module serves (routing tables key off this).
MEMENTO_ACTIONS = ("timegate", "timemap", "memento")


class MementoHttpError(Exception):
    """A negotiation problem with a definite HTTP status (400/406).

    The service layer renders it through its standard error page, so
    the body shape matches every other refusal the CGI emits.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def parse_datetime_value(text: str) -> Optional[int]:
    """An ``Accept-Datetime``/CLI datetime: any HTTP date format, or a
    bare simulation timestamp (the sim tools' native spelling)."""
    ts = parse_http_date(text)
    if ts is not None:
        return ts
    stripped = (text or "").strip()
    if stripped.isdigit():
        return int(stripped)
    return None


class MementoEndpoints:
    """The three Memento actions bound to one store + script path."""

    def __init__(
        self,
        store,
        script_path: str = "/cgi-bin/snapshot",
        default_policy: str = "past",
    ) -> None:
        self.store = store
        self.script_path = script_path
        self.default_policy = validate_policy(default_policy)
        obs = store.obs
        self._c_timegate = obs.counter("memento.timegate.requests")
        self._c_redirects = obs.counter("memento.timegate.redirects")
        self._c_refused = obs.counter("memento.timegate.refused")
        self._c_timemap = obs.counter("memento.timemap.requests")
        self._c_memento = obs.counter("memento.memento.requests")

    # ------------------------------------------------------------------
    # Shared lookups
    # ------------------------------------------------------------------
    def _archive(self, url: str):
        """The URL's archive, or the appropriate refusal.

        No archive and a quarantine-journal entry → the stored 422
        verdict (the URL's only history is "we refused it"); no archive
        at all → the familiar 404.
        """
        key = self.store._canonical(url)
        archive = self.store.archives.get(key)
        if archive is not None and archive.revision_count > 0:
            return key, archive
        quarantine = getattr(self.store, "quarantine", None)
        if quarantine is not None:
            entry = quarantine.get(key)
            if entry is not None:
                raise ContentQuarantined(key, entry.guard, entry.detail)
        raise SnapshotError(f"no mementos of {key} — Remember it first")

    def timemap_for(self, url: str) -> TimeMap:
        """The store's TimeMap of ``url`` (CGI-style URIs)."""
        key, archive = self._archive(url)
        mementos = [
            Memento(
                datetime=info.date,
                uri=memento_uri(self.script_path, key, info.number),
                revision=info.number,
                source="local",
            )
            for info in archive.revisions()
        ]
        return TimeMap(
            original=key,
            timegate=timegate_uri(self.script_path, key),
            timemap=timemap_uri(self.script_path, key),
            mementos=sorted(mementos),
        )

    # ------------------------------------------------------------------
    # TimeGate
    # ------------------------------------------------------------------
    def timegate(
        self,
        url: str,
        request: Request,
        policy: Optional[str] = None,
    ) -> Response:
        """Negotiate in the datetime dimension: 302 to a URI-M."""
        self._c_timegate.inc()
        key, archive = self._archive(url)
        try:
            chosen_policy = validate_policy(policy or self.default_policy)
        except NegotiationError as exc:
            raise MementoHttpError(400, str(exc))
        header = request.headers.get(ACCEPT_DATETIME)
        if header is None:
            # "If the request does not include an Accept-Datetime
            # header, the TimeGate must respond with the most recent
            # memento" — no negotiation, no policy involvement.
            info = archive.revisions()[-1]
        else:
            target = parse_datetime_value(header)
            if target is None:
                raise MementoHttpError(
                    400, f"malformed Accept-Datetime {header!r}"
                )
            info = archive.revision_at(target, policy=chosen_policy)
            if info is None:
                self._c_refused.inc()
                raise MementoHttpError(
                    406,
                    f"no memento of {key} satisfies "
                    f"{chosen_policy}-policy negotiation for "
                    f"{format_http_date(target)}",
                )
        self._c_redirects.inc()
        location = memento_uri(self.script_path, key, info.number)
        response = make_response(
            302,
            f"<P>Memento for {key}: revision {info.number} "
            f"({info.date_string}).</P>",
            location=location,
        )
        response.headers.set("Vary", "accept-datetime")
        response.headers.set(
            "Link", format_link_header(self._gate_links(key, archive))
        )
        return response

    def _gate_links(self, key: str, archive) -> List[LinkEntry]:
        revisions = archive.revisions()
        first, last = revisions[0], revisions[-1]
        entries = [
            LinkEntry(key, "original"),
            LinkEntry(timemap_uri(self.script_path, key), "timemap",
                      type=LINK_FORMAT),
            LinkEntry(memento_uri(self.script_path, key, first.number),
                      "first memento", datetime=first.date),
        ]
        if last.number != first.number:
            entries.append(
                LinkEntry(memento_uri(self.script_path, key, last.number),
                          "last memento", datetime=last.date)
            )
        return entries

    # ------------------------------------------------------------------
    # TimeMap
    # ------------------------------------------------------------------
    def timemap(self, url: str, fmt: str = "link") -> Response:
        """The URI-T listing, in link-format or JSON."""
        self._c_timemap.inc()
        timemap = self.timemap_for(url)
        if fmt == "json":
            payload = {
                "original": timemap.original,
                "timegate": timemap.timegate,
                "timemap": timemap.timemap,
                "mementos": [
                    {
                        "uri": m.uri,
                        "revision": m.revision,
                        "datetime": m.datetime,
                        "datetime_http": m.datetime_string,
                    }
                    for m in timemap.mementos
                ],
            }
            return make_response(200, json.dumps(payload, indent=2,
                                                 sort_keys=True),
                                 content_type="application/json")
        if fmt != "link":
            raise MementoHttpError(400, f"unknown timemap format {fmt!r}")
        return make_response(200, format_timemap(timemap),
                             content_type=LINK_FORMAT)

    # ------------------------------------------------------------------
    # Memento (URI-M)
    # ------------------------------------------------------------------
    def memento(self, url: str, revision: Optional[str],
                padding: str = "") -> Response:
        """One archived revision with its Memento headers."""
        self._c_memento.inc()
        key, archive = self._archive(url)
        if not revision:
            raise MementoHttpError(400, "missing the rev parameter")
        # view() renders the body — BASE rewrite included — through the
        # exact code path action=view uses, so a TimeGate redirect is
        # byte-identical to the view_at the negotiation stands in for.
        text = self.store.view(key, revision)
        try:
            info = archive.info(revision)
        except KeyError:
            raise SnapshotError(f"no such revision of {key}: {revision}")
        response = make_response(200, padding + text)
        response.headers.set(MEMENTO_DATETIME, format_http_date(info.date))
        entries = [
            LinkEntry(key, "original"),
            LinkEntry(timegate_uri(self.script_path, key), "timegate"),
            LinkEntry(timemap_uri(self.script_path, key), "timemap",
                      type=LINK_FORMAT),
        ]
        revisions = archive.revisions()
        index = next(
            (i for i, rev in enumerate(revisions)
             if rev.number == info.number), 0,
        )
        first, last = revisions[0], revisions[-1]
        if first.number != info.number:
            entries.append(
                LinkEntry(memento_uri(self.script_path, key, first.number),
                          "first memento", datetime=first.date))
        if last.number != info.number:
            entries.append(
                LinkEntry(memento_uri(self.script_path, key, last.number),
                          "last memento", datetime=last.date))
        if index > 0:
            prev = revisions[index - 1]
            entries.append(
                LinkEntry(memento_uri(self.script_path, key, prev.number),
                          "prev memento", datetime=prev.date))
        if index + 1 < len(revisions):
            nxt = revisions[index + 1]
            entries.append(
                LinkEntry(memento_uri(self.script_path, key, nxt.number),
                          "next memento", datetime=nxt.date))
        response.headers.set("Link", format_link_header(entries))
        return response
