"""Cross-archive federation: one timeline from several archives.

The paper's AIDE is a single-site service; the Memento literature's
point (PAPERS.md: "Memento: Time Travel for the Web") is that *every*
archive holding captures of a URL contributes to one logical history.
This layer merges the local store's TimeMap with any number of remote
archives' TimeMaps (fetched by :class:`~repro.memento.client.
MementoClient`), answers datetime negotiation over the merged timeline
with the same :func:`~repro.memento.core.resolve_datetime` semantics
every other layer uses, and diffs a local revision against a remote
memento with the same :func:`~repro.core.htmldiff.api.html_diff` the
snapshot service runs — so a federated comparison is byte-identical to
the diff the remote itself would have rendered for that pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.htmldiff.api import html_diff
from .client import MementoClient, MementoClientError, MementoFetch
from .core import Memento, TimeMap
from .endpoints import MementoEndpoints

__all__ = ["ArchiveFederation", "FederatedDiff"]


@dataclass
class FederatedDiff:
    """A cross-archive comparison and its provenance."""

    url: str
    #: The local revision number compared.
    local_revision: str
    #: The remote memento that was fetched for the other side.
    remote: MementoFetch
    #: The HtmlDiff markup of local → remote.
    html: str
    #: Where the remote side came from (the client's source label).
    source: str = "remote"


class ArchiveFederation:
    """The local archive plus remote peers, as one timeline."""

    def __init__(self, endpoints: MementoEndpoints,
                 peers: Optional[List[MementoClient]] = None) -> None:
        self.endpoints = endpoints
        self.peers: List[MementoClient] = list(peers or [])

    def add_peer(self, peer: MementoClient) -> None:
        """Register another remote archive to federate with."""
        self.peers.append(peer)

    # ------------------------------------------------------------------
    def merged_timemap(self, url: str) -> TimeMap:
        """Local + every peer's mementos of ``url``, one sorted map.

        A peer that has never archived the URL (or is down hard enough
        for its resilient agent to give up) simply contributes nothing;
        federation degrades to whatever subset of archives answers.
        The local TimeMap's URI-G/URI-T identify the merged map — the
        local archive is the one answering for it.
        """
        local: Optional[TimeMap] = None
        mementos: List[Memento] = []
        try:
            local = self.endpoints.timemap_for(url)
            mementos.extend(local.mementos)
        except Exception:
            local = None
        for peer in self.peers:
            try:
                mementos.extend(peer.timemap(url).mementos)
            except Exception:
                # A refusing (404) or unreachable peer contributes
                # nothing; the merged map is whatever subset answered.
                continue
        if local is None:
            # Purely remote history: keep the first peer's identity.
            base = TimeMap(original=url, timegate="", timemap="")
        else:
            base = local
        # De-duplicate on (datetime, uri): the same capture learned
        # twice (e.g. a peer that mirrors us) collapses to one entry.
        unique = sorted(set(mementos))
        return TimeMap(original=base.original or url,
                       timegate=base.timegate, timemap=base.timemap,
                       mementos=unique)

    def best_at(self, url: str, target: int,
                policy: str = "past") -> Optional[Memento]:
        """Negotiate over the *merged* timeline."""
        return self.merged_timemap(url).at(target, policy)

    # ------------------------------------------------------------------
    def cross_diff(self, url: str, local_revision: str, target: int,
                   policy: str = "past") -> FederatedDiff:
        """Diff a local revision against a remote memento at ``target``.

        Both sides are served the way a browser would see them — the
        local revision through ``store.view`` (BASE-rewritten) and the
        remote through TimeGate negotiation, whose URI-M body carries
        the same BASE directive for the same original URL — so the
        rewrite lines cancel and the markup shows *content* changes.
        The markup is produced by the same ``html_diff`` the snapshot
        service uses, so diffing the same pair of texts directly gives
        identical bytes.
        """
        store = self.endpoints.store
        local_text = store.view(url, local_revision)
        remote = self._remote_at(url, target, policy)
        result = html_diff(local_text, remote.body,
                           options=getattr(store, "diff_options", None))
        return FederatedDiff(
            url=url,
            local_revision=local_revision,
            remote=remote,
            html=result.html,
            source=_source_of(remote, self.peers),
        )

    def _remote_at(self, url: str, target: int, policy: str) -> MementoFetch:
        last_error: Optional[Exception] = None
        for peer in self.peers:
            try:
                return peer.memento_at(url, target, policy=policy)
            except MementoClientError as exc:
                last_error = exc
                continue
        if last_error is not None:
            raise last_error
        raise MementoClientError(f"no federation peers hold {url}")


def _source_of(fetch: MementoFetch, peers: List[MementoClient]) -> str:
    """Which peer served a fetch, judged by endpoint prefix."""
    for peer in peers:
        if fetch.uri.startswith(peer.endpoint.rsplit("/", 1)[0]):
            return peer.source
    return "remote"
