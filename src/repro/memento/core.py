"""Memento protocol core (RFC 7089): vocabulary, negotiation, links.

Everything here is pure data-in/data-out — no store, no network — so
it is shared by all four parties of a Memento conversation:

* the archive (:meth:`~repro.rcs.archive.RcsArchive.revision_at`
  delegates its boundary semantics to :func:`resolve_datetime`);
* the server endpoints (:mod:`repro.memento.endpoints`);
* the client (:mod:`repro.memento.client`) parsing what a *different*
  implementation serialized;
* the federation layer merging TimeMaps from several archives.

Datetime values on the wire are RFC 1123 HTTP dates
(:func:`repro.web.http.format_http_date`); in memory they are plain
simulation timestamps, like everywhere else in the reproduction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..web.http import format_http_date, parse_http_date

__all__ = [
    "ACCEPT_DATETIME",
    "MEMENTO_DATETIME",
    "LINK_FORMAT",
    "POLICIES",
    "NegotiationError",
    "validate_policy",
    "resolve_datetime",
    "LinkEntry",
    "format_link_header",
    "parse_link_header",
    "Memento",
    "TimeMap",
    "format_timemap",
    "parse_timemap",
    "timegate_uri",
    "timemap_uri",
    "memento_uri",
]

#: Request header carrying the desired datetime (RFC 7089 §2.1.1).
ACCEPT_DATETIME = "Accept-Datetime"
#: Response header stamping a memento's archival datetime (§2.1.1).
MEMENTO_DATETIME = "Memento-Datetime"
#: Media type of a serialized TimeMap (§5).
LINK_FORMAT = "application/link-format"

#: Negotiation policies, the centralized ``view_at`` semantics:
#:
#: * ``past``  — newest memento at or before the target; nothing that
#:   old → no match.  Exactly the paper's §2.2 time travel and the
#:   spoiler-avoidance pin (never serve anything newer than asked).
#: * ``nearest`` — minimal ``|datetime - target|``; ties and
#:   before-first-memento resolve to the *older* side (still never
#:   skipping past the pin by more than the gap demands).  RFC 7089's
#:   recommended TimeGate behaviour.
#: * ``exact`` — only a memento stamped at precisely the target.
POLICIES = ("past", "nearest", "exact")


class NegotiationError(ValueError):
    """An unusable negotiation input (unknown policy, bad datetime)."""


def validate_policy(policy: str) -> str:
    """Return ``policy`` if it is a known negotiation policy, else
    raise :class:`NegotiationError` naming the valid ones."""
    if policy not in POLICIES:
        raise NegotiationError(
            f"unknown negotiation policy {policy!r} (want one of "
            f"{', '.join(POLICIES)})"
        )
    return policy


def resolve_datetime(
    dates: Sequence[int],
    target: int,
    policy: str = "past",
    monotonic: Optional[bool] = None,
) -> Optional[int]:
    """Index into ``dates`` of the memento the policy selects, or None.

    ``dates`` is a sequence of datestamps in *revision order* (oldest
    checked in first).  When they are non-decreasing the resolution
    bisects; a history whose clock ran backwards (Section 4.1's
    non-monotonic timestamps) falls back to one linear scan with the
    same last-match-wins semantics the paper's scan had.  Pass
    ``monotonic`` when the caller already tracks it (the archive
    does); None re-derives it.

    Boundary semantics, pinned deliberately:

    * an exact-timestamp hit returns that revision under every policy
      (the *newest* one, if several share the stamp);
    * ``target`` before the first date → None under ``past``/``exact``
      and the **first** revision under ``nearest``;
    * ``nearest`` ties (equidistant neighbours) resolve to the older
      revision.
    """
    validate_policy(policy)
    if not dates:
        return None
    if monotonic is None:
        monotonic = all(a <= b for a, b in zip(dates, dates[1:]))

    if monotonic:
        from bisect import bisect_right

        pos = bisect_right(dates, target)
        past_index = pos - 1 if pos else None
    else:
        past_index = None
        for index, date in enumerate(dates):
            if date <= target:
                past_index = index

    if policy == "past":
        return past_index
    if policy == "exact":
        if monotonic:
            if past_index is not None and dates[past_index] == target:
                return past_index
            return None
        # Out-of-order stamps: an exact hit may not be the scan's
        # "past" winner; look for the stamp itself, newest-revision
        # first (same shared-stamp tie-break as the monotonic path).
        for index in range(len(dates) - 1, -1, -1):
            if dates[index] == target:
                return index
        return None
    # nearest
    if past_index is None:
        # Everything is newer than the target: the first revision is
        # the closest from the only available side.
        if monotonic:
            return 0
        return min(range(len(dates)), key=lambda i: (dates[i], i))
    if dates[past_index] == target:
        return past_index
    if monotonic:
        after_index = past_index + 1 if past_index + 1 < len(dates) else None
    else:
        after_index = None
        best_after = None
        for index, date in enumerate(dates):
            if date > target and (best_after is None or date < best_after):
                best_after = date
                after_index = index
    if after_index is None:
        return past_index
    before_gap = target - dates[past_index]
    after_gap = dates[after_index] - target
    # The tie goes to the older side: a pinned viewer would rather see
    # a slightly stale page than one from the future.
    return past_index if before_gap <= after_gap else after_index


# ----------------------------------------------------------------------
# Link headers (RFC 5988 syntax, RFC 7089 relations)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkEntry:
    """One link-value: ``<target>; rel="..."`` plus optional params."""

    target: str
    rel: str
    #: ``datetime="..."`` attribute (mementos only), as a sim timestamp.
    datetime: Optional[int] = None
    #: ``type="..."`` attribute (the timemap link advertises
    #: ``application/link-format``).
    type: Optional[str] = None

    def format(self) -> str:
        parts = [f"<{self.target}>", f'rel="{self.rel}"']
        if self.datetime is not None:
            parts.append(f'datetime="{format_http_date(self.datetime)}"')
        if self.type is not None:
            parts.append(f'type="{self.type}"')
        return "; ".join(parts)


def format_link_header(entries: Sequence[LinkEntry]) -> str:
    """Serialize link-values into one ``Link`` header string."""
    return ", ".join(entry.format() for entry in entries)


#: The comma-splitting happened already (quote-aware), so the params
#: portion of one link-value is simply everything after ``<target>``.
_LINK_VALUE_RE = re.compile(r"\s*<([^>]*)>\s*(.*)$", re.S)
_LINK_PARAM_RE = re.compile(r';\s*([A-Za-z][A-Za-z0-9-]*)\s*=\s*(?:"([^"]*)"|([^;,\s]+))')


def _split_link_values(text: str) -> List[str]:
    """Split a Link header (or link-format body) on the commas that
    separate link-values — not the commas inside quoted datetimes."""
    values: List[str] = []
    depth_quote = False
    current = []
    for ch in text:
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            values.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        values.append("".join(current))
    return [value for value in (v.strip() for v in values) if value]


def parse_link_header(text: str) -> List[LinkEntry]:
    """Parse a ``Link`` header (or TimeMap body) into entries.

    Tolerant the way a client must be: unknown parameters are ignored,
    a link-value with several ``rel`` tokens (``rel="original
    timegate"``) yields one entry per token, unparseable datetimes
    leave ``datetime=None``.
    """
    entries: List[LinkEntry] = []
    for value in _split_link_values(text or ""):
        match = _LINK_VALUE_RE.match(value)
        if not match:
            continue
        target = match.group(1).strip()
        params: Dict[str, str] = {}
        for pmatch in _LINK_PARAM_RE.finditer(match.group(2) or ""):
            name = pmatch.group(1).lower()
            params.setdefault(name, pmatch.group(2) or pmatch.group(3) or "")
        rels = params.get("rel", "").split()
        if not target or not rels:
            continue
        datetime_ts = parse_http_date(params.get("datetime"))
        for rel in rels:
            entries.append(LinkEntry(
                target=target, rel=rel, datetime=datetime_ts,
                type=params.get("type"),
            ))
    return entries


# ----------------------------------------------------------------------
# Mementos and TimeMaps
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Memento:
    """One archived state of the original resource.

    Ordering is (datetime, uri) so merged TimeMaps sort stably; the
    ``revision`` is the local archive's trunk number when known and
    ``""`` for mementos learned from a remote TimeMap.
    """

    datetime: int
    uri: str
    revision: str = ""
    #: Which archive holds it — ``"local"`` or the remote's label;
    #: federation fills this in when merging.
    source: str = field(default="local", compare=False)

    @property
    def datetime_string(self) -> str:
        return format_http_date(self.datetime)


@dataclass
class TimeMap:
    """Everything known about one original resource's mementos."""

    original: str
    timegate: str
    timemap: str
    mementos: List[Memento] = field(default_factory=list)

    @property
    def first(self) -> Optional[Memento]:
        return self.mementos[0] if self.mementos else None

    @property
    def last(self) -> Optional[Memento]:
        return self.mementos[-1] if self.mementos else None

    def sorted(self) -> "TimeMap":
        """A copy with mementos in (datetime, uri) order — the order a
        serialized TimeMap lists them in."""
        return replace(self, mementos=sorted(self.mementos))

    def at(self, target: int, policy: str = "past") -> Optional[Memento]:
        """The memento the negotiation policy selects, or None.

        The same :func:`resolve_datetime` the archive and the TimeGate
        use — a client negotiating locally over a fetched TimeMap gets
        the byte-identical answer the server would have redirected to.
        """
        ordered = sorted(self.mementos)
        index = resolve_datetime(
            [m.datetime for m in ordered], target, policy, monotonic=True
        )
        return ordered[index] if index is not None else None

    def neighbours(
        self, memento: Memento
    ) -> Tuple[Optional[Memento], Optional[Memento]]:
        """(prev, next) mementos around ``memento`` in datetime order."""
        ordered = sorted(self.mementos)
        try:
            index = ordered.index(memento)
        except ValueError:
            return None, None
        prev_m = ordered[index - 1] if index > 0 else None
        next_m = ordered[index + 1] if index + 1 < len(ordered) else None
        return prev_m, next_m


def format_timemap(timemap: TimeMap) -> str:
    """Serialize a TimeMap as an ``application/link-format`` body.

    One link-value per line (the trailing comma separates them), the
    RFC 7089 §5 shape: original, self, timegate, then every memento
    with its datetime; the oldest and newest also carry ``first`` /
    ``last`` relations.
    """
    ordered = sorted(timemap.mementos)
    entries: List[LinkEntry] = [
        LinkEntry(timemap.original, "original"),
        LinkEntry(timemap.timemap, "self", type=LINK_FORMAT),
        LinkEntry(timemap.timegate, "timegate"),
    ]
    for index, memento in enumerate(ordered):
        rels = []
        if index == 0:
            rels.append("first")
        if index == len(ordered) - 1:
            rels.append("last")
        rels.append("memento")
        entries.append(LinkEntry(memento.uri, " ".join(rels),
                                 datetime=memento.datetime))
    return ",\n".join(entry.format() for entry in entries) + "\n"


def parse_timemap(body: str, source: str = "remote") -> TimeMap:
    """Parse an ``application/link-format`` TimeMap body.

    The inverse of :func:`format_timemap`, but tolerant of any RFC 7089
    serialization: relations may come in any order, ``first``/``last``
    markers are advisory (the datetimes are authoritative), and the
    revision number is recovered from CGI-style URI-Ms when present
    (``...&rev=1.7``) so a local client round-trips losslessly.
    """
    original = timegate = timemap_uri = ""
    mementos: List[Memento] = []
    for entry in parse_link_header(body):
        if entry.rel == "original":
            original = original or entry.target
        elif entry.rel == "timegate":
            timegate = timegate or entry.target
        elif entry.rel == "self":
            timemap_uri = timemap_uri or entry.target
        elif entry.rel == "memento" and entry.datetime is not None:
            mementos.append(Memento(
                datetime=entry.datetime,
                uri=entry.target,
                revision=_revision_of_uri(entry.target),
                source=source,
            ))
    return TimeMap(
        original=original, timegate=timegate, timemap=timemap_uri,
        mementos=sorted(set(mementos)),
    )


_REV_PARAM_RE = re.compile(r"[?&]rev=([^&]+)")


def _revision_of_uri(uri: str) -> str:
    match = _REV_PARAM_RE.search(uri)
    return match.group(1) if match else ""


# ----------------------------------------------------------------------
# CGI URI templates
# ----------------------------------------------------------------------
def _query(params: Dict[str, str]) -> str:
    from ..web.cgi import encode_query_string

    return encode_query_string(params)


def timegate_uri(script: str, url: str) -> str:
    """URI-G for ``url`` on a snapshot service at ``script``."""
    return f"{script}?{_query({'action': 'timegate', 'url': url})}"


def timemap_uri(script: str, url: str) -> str:
    """URI-T for ``url`` on a snapshot service at ``script``."""
    return f"{script}?{_query({'action': 'timemap', 'url': url})}"


def memento_uri(script: str, url: str, revision: str) -> str:
    """URI-M of one archived revision of ``url``."""
    return f"{script}?{_query({'action': 'memento', 'url': url, 'rev': revision})}"
