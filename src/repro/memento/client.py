"""Client side of the Memento conversation.

A :class:`MementoClient` speaks RFC 7089 *to a remote archive* over
any agent with the ``get(url, headers=...)`` surface — the plain
:class:`~repro.web.client.UserAgent` or the retrying, circuit-breaking
:class:`~repro.web.resilience.ResilientAgent` — and never touches the
remote's store objects: everything it knows arrives as link-format
bodies and ``Memento-Datetime`` headers, exactly what a 2010s Memento
client got from a real archive.

The agent's redirect-following does the heavy lifting: a TimeGate
negotiation is one ``GET`` with an ``Accept-Datetime`` header, and the
302 lands the client on the memento automatically, with the hop
recorded in the :class:`~repro.web.client.FetchResult` trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..web.http import format_http_date, parse_http_date
from ..web.url import join_url, parse_url
from .core import (
    ACCEPT_DATETIME,
    MEMENTO_DATETIME,
    TimeMap,
    parse_link_header,
    parse_timemap,
    timegate_uri,
    timemap_uri,
    validate_policy,
)

__all__ = ["MementoClient", "MementoFetch", "MementoClientError"]


class MementoClientError(Exception):
    """The remote archive refused or garbled a Memento exchange."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class MementoFetch:
    """One retrieved memento: the body plus its protocol metadata."""

    #: The original resource (URI-R) the memento is a capture of.
    original: str
    #: The URI-M the negotiation (or TimeMap walk) landed on.
    uri: str
    #: The capture instant, from the ``Memento-Datetime`` header.
    datetime: Optional[int]
    body: str
    #: Redirect hops the agent followed (the TimeGate 302, typically).
    redirects: List[str] = field(default_factory=list)
    #: Link-header relations the memento carried (first/last/prev/next).
    links: list = field(default_factory=list)

    @property
    def datetime_string(self) -> str:
        return format_http_date(self.datetime) if self.datetime is not None else ""


class MementoClient:
    """Datetime negotiation against one remote archive.

    ``endpoint`` is the archive's snapshot script as an absolute URL
    (``http://archive.example/cgi-bin/snapshot``); the relative URI-Ms
    a remote TimeMap lists are resolved against it.
    """

    def __init__(self, agent, endpoint: str, source: str = "remote",
                 timeout: Optional[int] = None) -> None:
        self.agent = agent
        self.endpoint = str(parse_url(endpoint).normalized())
        #: Label stamped on every memento learned from this archive.
        self.source = source
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _absolute(self, uri: str) -> str:
        """Resolve a (possibly relative) URI against the endpoint."""
        return str(join_url(parse_url(self.endpoint), uri).normalized())

    def _get(self, uri: str, headers=None):
        return self.agent.get(self._absolute(uri), timeout=self.timeout,
                              headers=headers)

    # ------------------------------------------------------------------
    def timemap(self, url: str) -> TimeMap:
        """Fetch and parse the remote's TimeMap of ``url``."""
        result = self._get(timemap_uri(self.endpoint, url))
        response = result.response
        if response.status != 200:
            raise MementoClientError(
                f"TimeMap of {url} from {self.endpoint}: HTTP "
                f"{response.status}", status=response.status,
            )
        timemap = parse_timemap(response.body, source=self.source)
        timemap.mementos = [
            # Remote URI-Ms come out relative to the remote script;
            # absolutize so a federation layer can fetch them directly.
            type(m)(datetime=m.datetime, uri=self._absolute(m.uri),
                    revision=m.revision, source=m.source)
            for m in timemap.mementos
        ]
        return timemap

    def memento_at(self, url: str, target: int,
                   policy: str = "past") -> MementoFetch:
        """Negotiate: the remote's memento of ``url`` at ``target``.

        One GET on the URI-G with ``Accept-Datetime``; the agent
        follows the 302 to the URI-M.  A 406 (nothing satisfies the
        policy) or 404 (never archived there) raises
        :class:`MementoClientError` with the status attached, so a
        federation layer can fall through to another archive.
        """
        validate_policy(policy)
        gate = timegate_uri(self.endpoint, url)
        if policy != "past":
            gate += f"&policy={policy}"
        headers = _headers_with(ACCEPT_DATETIME, format_http_date(target))
        return self._finish(url, self._get(gate, headers=headers))

    def newest(self, url: str) -> MementoFetch:
        """The remote's most recent memento (no Accept-Datetime)."""
        return self._finish(url, self._get(timegate_uri(self.endpoint, url)))

    def fetch(self, uri_m: str, original: str = "") -> MementoFetch:
        """Retrieve one URI-M learned from a TimeMap."""
        return self._finish(original, self._get(uri_m))

    # ------------------------------------------------------------------
    def _finish(self, url: str, result) -> MementoFetch:
        response = result.response
        if response.status != 200:
            raise MementoClientError(
                f"memento of {url} from {self.endpoint}: HTTP "
                f"{response.status}", status=response.status,
            )
        return MementoFetch(
            original=url,
            uri=str(result.url),
            datetime=parse_http_date(response.headers.get(MEMENTO_DATETIME)),
            body=response.body,
            redirects=list(result.redirects),
            links=parse_link_header(response.headers.get("Link", "")),
        )


def _headers_with(name: str, value: str):
    """A fresh Headers carrying one field (import kept local so this
    module stays usable by agents with duck-typed header classes)."""
    from ..web.http import Headers

    headers = Headers()
    headers.set(name, value)
    return headers
