"""Comparison algorithms underlying AIDE.

HtmlDiff runs a weighted Hirschberg LCS over HTML tokens, accelerated
by patience-style anchor decomposition; RCS deltas and the rcsdiff CGI
use Hunt–McIlroy line diffs; Myers is included as the modern ablation
comparator.
"""

from .anchor import anchor_chain, anchored_lcs_pairs, unique_anchors
from .huntmcilroy import hunt_mcilroy_length, hunt_mcilroy_pairs
from .lcs import (
    Match,
    lcs_length,
    lcs_pairs,
    similarity_ratio,
    trim_common_affixes,
    weighted_lcs_pairs,
    weighted_lcs_score,
)
from .myers import myers_edit_distance, myers_pairs
from .textdiff import (
    EditCommand,
    EditScript,
    apply_edit_script,
    make_edit_script,
    script_size,
    unified_diff,
)

__all__ = [
    "Match",
    "anchor_chain",
    "anchored_lcs_pairs",
    "unique_anchors",
    "lcs_length",
    "lcs_pairs",
    "similarity_ratio",
    "trim_common_affixes",
    "weighted_lcs_pairs",
    "weighted_lcs_score",
    "hunt_mcilroy_length",
    "hunt_mcilroy_pairs",
    "myers_edit_distance",
    "myers_pairs",
    "EditCommand",
    "EditScript",
    "apply_edit_script",
    "make_edit_script",
    "script_size",
    "unified_diff",
]
