"""Anchor decomposition: patience-style speedup for the weighted LCS.

Successive revisions of a real page share long runs of sentences that
occur exactly once in both versions.  Such *unique* tokens are almost
certainly aligned with each other in the optimal correspondence, so we
can commit to them up front ("anchors"), then run the quadratic
weighted-LCS core only on the short stretches between consecutive
anchors.  On page revisions produced by localized edits this turns the
O(n·m) Hirschberg core into near-linear work, the same decomposition
patience diff and sentence-alignment pipelines use.

The decomposition:

1. Collect every key that occurs exactly once in A *and* exactly once
   in B; each such occurrence pair is an anchor candidate with the
   weight of its exact match.
2. Candidates must be used monotonically; pick the chain with the
   greatest total weight (a heaviest-increasing-subsequence over the
   B positions, Fenwick-tree prefix maxima, O(k log k)).
3. Solve each inter-anchor gap independently with
   :func:`~repro.diffcore.lcs.weighted_lcs_pairs`.

Anchoring is a heuristic: an adversarial transposition *around* an
anchor can cost weight relative to the unconstrained optimum.  The
htmldiff differential tests verify that on realistic revision
workloads the anchored result carries the same total weight — and
renders byte-identically — as the reference path.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

from .lcs import Match, trim_common_affixes, weighted_lcs_pairs

__all__ = ["unique_anchors", "anchor_chain", "anchored_lcs_pairs"]

T = TypeVar("T")

WeightFn = Callable[[T, T], float]
KeyFn = Callable[[T], Hashable]


def _identity(x: T) -> Hashable:
    return x


def unique_anchors(
    a: Sequence[T], b: Sequence[T], key: Optional[KeyFn] = None
) -> List[Tuple[int, int]]:
    """(i, j) pairs whose key occurs exactly once in each sequence.

    Returned in increasing ``i`` order; the ``j`` values are in
    whatever order the unique keys appear in ``b`` (not necessarily
    monotone — that is :func:`anchor_chain`'s job).
    """
    key = key or _identity
    # None marks a key seen more than once.
    pos_a: Dict[Hashable, Optional[int]] = {}
    for i, item in enumerate(a):
        k = key(item)
        pos_a[k] = i if k not in pos_a else None
    pos_b: Dict[Hashable, Optional[int]] = {}
    for j, item in enumerate(b):
        k = key(item)
        pos_b[k] = j if k not in pos_b else None
    out = []
    for k, i in pos_a.items():
        if i is None:
            continue
        j = pos_b.get(k)
        if j is not None:
            out.append((i, j))
    out.sort()
    return out


def anchor_chain(candidates: Sequence[Tuple[int, int, float]]) -> List[Tuple[int, int, float]]:
    """Heaviest strictly-monotone subchain of anchor candidates.

    ``candidates`` are (i, j, weight) triples sorted by ``i`` with
    distinct ``i`` and distinct ``j`` (guaranteed by key uniqueness).
    Maximizes total weight over chains with increasing ``j`` using a
    Fenwick tree of prefix maxima over the ``j`` ranks.
    """
    k = len(candidates)
    if k <= 1:
        return list(candidates)
    ranks = {j: r for r, j in enumerate(sorted(c[1] for c in candidates), start=1)}
    # tree[r] holds (best chain weight, candidate index) over a rank range.
    tree: List[Tuple[float, int]] = [(0.0, -1)] * (k + 1)
    parent = [-1] * k
    totals = [0.0] * k
    best_total = 0.0
    best_end = -1
    for idx, (_i, j, w) in enumerate(candidates):
        r = ranks[j]
        # Prefix max over ranks < r: the heaviest chain we can extend.
        prev_total, prev_idx = 0.0, -1
        q = r - 1
        while q > 0:
            if tree[q][0] > prev_total:
                prev_total, prev_idx = tree[q]
            q -= q & -q
        totals[idx] = prev_total + w
        parent[idx] = prev_idx
        if totals[idx] > best_total:
            best_total, best_end = totals[idx], idx
        # Publish at rank r.
        q = r
        while q <= k:
            if totals[idx] > tree[q][0]:
                tree[q] = (totals[idx], idx)
            q += q & -q
    chain: List[Tuple[int, int, float]] = []
    idx = best_end
    while idx >= 0:
        chain.append(candidates[idx])
        idx = parent[idx]
    chain.reverse()
    return chain


#: When the inter-anchor gaps still cover more than this fraction of
#: the core's DP area, anchoring is not paying for itself (the pages
#: are mostly unrelated, as in a wholesale rewrite) — fall back to the
#: plain solver, whose behavior the decomposition is measured against.
_GAP_AREA_LIMIT = 0.5


def _solve_gap(
    ga: Sequence[T], gb: Sequence[T], weight: WeightFn
) -> List[Match]:
    """Weighted LCS of one inter-anchor gap."""
    if not ga or not gb:
        return []
    return weighted_lcs_pairs(ga, gb, weight)


def anchored_lcs_pairs(
    a: Sequence[T],
    b: Sequence[T],
    weight: WeightFn,
    key: Optional[KeyFn] = None,
    min_anchor_weight: float = 0.0,
) -> List[Match]:
    """:func:`weighted_lcs_pairs` accelerated by anchor decomposition.

    ``key`` maps an item to the hashable identity used for uniqueness
    detection; two items with equal keys must be an exact match under
    ``weight`` (``weight(x, y) == weight(x, x) > 0``).  With ``key``
    omitted the items themselves are the keys.

    Only candidates whose exact-match weight exceeds
    ``min_anchor_weight`` may anchor.  Committing an anchor is a bet
    that no crossing matches out-weigh it; a light unique token (an
    ``<HR>`` in a rewritten page, say) loses that bet to a single heavy
    fuzzy sentence match, so the htmldiff matcher sets the floor to
    exclude weight-1 break markups and lets only multi-word sentences
    pin the alignment.

    Falls back to the plain solver when anchors are absent or too
    sparse to shrink the problem, so it is never worse than one extra
    O(n + m) scan.
    """
    if not a or not b:
        return []
    # Identical ends are trimmed exactly as in weighted_lcs_pairs —
    # crucially BEFORE anchoring, so both solvers resolve repeated
    # tokens at the document edges to the same occurrences (the suffix
    # loop claims the *latest* ones).
    out: List[Match] = []
    prefix, suffix = trim_common_affixes(
        a, b, lambda x, y: weight(x, y) > 0.0 and x == y
    )
    for i in range(prefix):
        out.append((i, i, weight(a[i], b[i])))
    core_a = a[prefix:len(a) - suffix]
    core_b = b[prefix:len(b) - suffix]
    candidates = []
    floor = max(min_anchor_weight, 0.0)
    for i, j in unique_anchors(core_a, core_b, key):
        w = weight(core_a[i], core_b[j])
        if w > floor:
            candidates.append((i, j, w))
    chain = anchor_chain(candidates) if candidates else []
    core_pairs = (
        _chain_and_gaps(core_a, core_b, chain, weight)
        if chain
        else weighted_lcs_pairs(core_a, core_b, weight)
    )
    for i, j, w in core_pairs:
        out.append((prefix + i, prefix + j, w))
    for k in range(suffix):
        i = len(a) - suffix + k
        j = len(b) - suffix + k
        out.append((i, j, weight(a[i], b[j])))
    return out


def _chain_and_gaps(
    core_a: Sequence[T],
    core_b: Sequence[T],
    chain: List[Tuple[int, int, float]],
    weight: WeightFn,
) -> List[Match]:
    """Commit the anchor chain and solve the gaps — unless the gaps
    are so large that decomposition buys nothing."""
    gap_area = 0
    prev_i = prev_j = 0
    for i, j, _w in chain:
        gap_area += (i - prev_i) * (j - prev_j)
        prev_i, prev_j = i + 1, j + 1
    gap_area += (len(core_a) - prev_i) * (len(core_b) - prev_j)
    core_area = len(core_a) * len(core_b)
    if core_area and gap_area > _GAP_AREA_LIMIT * core_area:
        return weighted_lcs_pairs(core_a, core_b, weight)
    out: List[Match] = []
    prev_i = prev_j = 0
    for i, j, w in chain:
        for gi, gj, gw in _solve_gap(core_a[prev_i:i], core_b[prev_j:j], weight):
            out.append((prev_i + gi, prev_j + gj, gw))
        out.append((i, j, w))
        prev_i, prev_j = i + 1, j + 1
    for gi, gj, gw in _solve_gap(core_a[prev_i:], core_b[prev_j:], weight):
        out.append((prev_i + gi, prev_j + gj, gw))
    return out
