"""Longest common subsequence solvers.

HtmlDiff (paper Section 5.1) applies "Hirshberg's solution to the longest
common subsequence (LCS) problem (with several speed optimizations)" to
token sequences, with a *weighted* notion of matching: sentence-breaking
markups match identically with weight 1, while sentences match fuzzily
with weight equal to the size of their word-level LCS.

This module provides:

* :func:`lcs_pairs` — classic unweighted LCS over hashable tokens, in
  linear space (Hirschberg's divide and conquer).
* :func:`weighted_lcs_pairs` — the generalized weighted variant used by
  HtmlDiff, also linear-space.
* :func:`lcs_length` / :func:`similarity_ratio` — cheap scalar metrics
  used by the two-step sentence matcher.

The "several speed optimizations" the paper alludes to are reproduced as:
common prefix/suffix trimming before the quadratic core, an early exit
for equal or disjoint sequences, and the linear-space score rows.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "Match",
    "lcs_pairs",
    "lcs_length",
    "weighted_lcs_pairs",
    "weighted_lcs_score",
    "similarity_ratio",
    "trim_common_affixes",
    "canonicalize_pairs",
]

T = TypeVar("T")

#: A single correspondence: (index in A, index in B, match weight).
Match = Tuple[int, int, float]

WeightFn = Callable[[T, T], float]


def trim_common_affixes(
    a: Sequence[T], b: Sequence[T], equal: Callable[[T, T], bool]
) -> Tuple[int, int]:
    """Return (prefix_len, suffix_len) shared by ``a`` and ``b``.

    Trimming the guaranteed-common ends before running the quadratic LCS
    core is the cheapest and most effective of the speed optimizations:
    successive page versions usually share large head and tail regions.
    The suffix never overlaps the prefix.
    """
    n, m = len(a), len(b)
    prefix = 0
    limit = min(n, m)
    while prefix < limit and equal(a[prefix], b[prefix]):
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and equal(a[n - 1 - suffix], b[m - 1 - suffix])
    ):
        suffix += 1
    return prefix, suffix


def _equal_weight(x: T, y: T) -> float:
    return 1.0 if x == y else 0.0


def lcs_length(a: Sequence[T], b: Sequence[T]) -> int:
    """Length of the LCS of two sequences, in O(min(n,m)) space.

    Used by the sentence matcher, where only the *size* of the word-level
    common subsequence matters (the ``W`` in the paper's ``2W/L`` rule).
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return 0
    prefix, suffix = trim_common_affixes(a, b, lambda x, y: x == y)
    core_a = a[prefix:len(a) - suffix]
    core_b = b[prefix:len(b) - suffix]
    if not core_a or not core_b:
        return prefix + suffix
    prev = [0] * (len(core_b) + 1)
    for item_a in core_a:
        cur = [0] * (len(core_b) + 1)
        for j, item_b in enumerate(core_b, start=1):
            if item_a == item_b:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = cur[j - 1] if cur[j - 1] >= prev[j] else prev[j]
        prev = cur
    return prefix + suffix + prev[-1]


def similarity_ratio(a: Sequence[T], b: Sequence[T]) -> float:
    """The paper's ``2W / L`` measure.

    ``W`` is the LCS length of the two sequences and ``L`` the sum of
    their lengths.  1.0 means identical, 0.0 means nothing in common.
    Two empty sequences are defined as identical.
    """
    total = len(a) + len(b)
    if total == 0:
        return 1.0
    return 2.0 * lcs_length(a, b) / total


def _forward_scores(
    a: Sequence[T], b: Sequence[T], weight: WeightFn
) -> List[float]:
    """Last row of the weighted-LCS DP table for ``a`` vs ``b``.

    The inner loop is the hottest code in HtmlDiff, so it avoids
    per-row list allocation (two reused buffers) and per-cell index
    arithmetic (the diagonal and left cells ride along as locals);
    the ``weight`` callback is the remaining per-cell cost, which the
    token matcher keeps cheap via id interning and its exact-equality
    fast lane.
    """
    m = len(b)
    prev = [0.0] * (m + 1)
    if not a:
        return prev
    cur = [0.0] * (m + 1)
    for item_a in a:
        diag = prev[0]
        left = 0.0
        j = 0
        for item_b in b:
            j += 1
            up = prev[j]
            best = up if up >= left else left
            w = weight(item_a, item_b)
            if w > 0.0:
                cand = diag + w
                if cand > best:
                    best = cand
            cur[j] = best
            diag = up
            left = best
        prev, cur = cur, prev
    return prev


def weighted_lcs_score(
    a: Sequence[T], b: Sequence[T], weight: WeightFn
) -> float:
    """Total weight of the heaviest common subsequence."""
    if not a or not b:
        return 0.0
    return _forward_scores(a, b, weight)[-1]


def _best_single_row(
    a_item: T, b: Sequence[T], weight: WeightFn
) -> List[Match]:
    """Base case: one token of A against all of B — pick the heaviest."""
    best_j = -1
    best_w = 0.0
    for j, item_b in enumerate(b):
        w = weight(a_item, item_b)
        if w > best_w:
            best_w = w
            best_j = j
    if best_j < 0:
        return []
    return [(0, best_j, best_w)]


def _hirschberg(
    a: Sequence[T],
    b: Sequence[T],
    weight: WeightFn,
    a_off: int,
    b_off: int,
    out: List[Match],
) -> None:
    """Linear-space divide-and-conquer weighted LCS (Hirschberg 1977)."""
    if not a or not b:
        return
    if len(a) == 1:
        for i, j, w in _best_single_row(a[0], b, weight):
            out.append((a_off + i, b_off + j, w))
        return
    mid = len(a) // 2
    forward = _forward_scores(a[:mid], b, weight)
    backward = _forward_scores(a[mid:][::-1], b[::-1], weight)
    # Choose the split of B maximizing forward[k] + backward[m-k].
    m = len(b)
    best_k = 0
    best_score = float("-inf")
    for k in range(m + 1):
        score = forward[k] + backward[m - k]
        if score > best_score:
            best_score = score
            best_k = k
    _hirschberg(a[:mid], b[:best_k], weight, a_off, b_off, out)
    _hirschberg(a[mid:], b[best_k:], weight, a_off + mid, b_off + best_k, out)


def weighted_lcs_pairs(
    a: Sequence[T], b: Sequence[T], weight: WeightFn
) -> List[Match]:
    """Heaviest common subsequence as explicit (i, j, weight) matches.

    ``weight(x, y)`` must return a non-negative weight; 0 means the
    tokens do not match.  Matches are returned in increasing order of
    both indices.  Runs in O(n*m) time and O(min over recursion) space.

    Precondition for the affix-trimming optimization: an identical token
    pair must score at least as high as any other pairing of either
    token (``weight(x, x) >= weight(x, y)`` for all ``y``).  HtmlDiff's
    weights satisfy this — an identical sentence match has weight equal
    to the sentence's full length, the ceiling for any fuzzy match — and
    under it trimming is provably lossless (exchange argument).
    """
    out: List[Match] = []
    if not a or not b:
        return out
    # Speed optimization: peel identical ends with full weight.
    prefix, suffix = trim_common_affixes(a, b, lambda x, y: weight(x, y) > 0.0 and x == y)
    for i in range(prefix):
        out.append((i, i, weight(a[i], b[i])))
    core_a = a[prefix:len(a) - suffix]
    core_b = b[prefix:len(b) - suffix]
    _hirschberg(core_a, core_b, weight, prefix, prefix, out)
    # The core matches carry A-offsets starting at ``prefix`` and the
    # same for B (the prefix lengths are equal by construction).
    for k in range(suffix):
        i = len(a) - suffix + k
        j = len(b) - suffix + k
        out.append((i, j, weight(a[i], b[j])))
    out.sort()
    return out


def canonicalize_pairs(
    a: Sequence[T],
    b: Sequence[T],
    pairs: Sequence[Match],
    key: Optional[Callable[[T], Hashable]] = None,
) -> List[Match]:
    """Slide every match to the earliest equal-key occurrences.

    A heaviest common subsequence is rarely unique: pages are full of
    repeated tokens (``<P>``, ``</LI>``, ...), and any solver breaks
    the resulting ties by accidents of its recursion order.  Two exact
    algorithms — or one algorithm with and without a decomposition
    speedup — can then return different, equally-heavy alignments.

    This pass quotients those accidents away.  Scanning the matches in
    order, each pair is moved to the first positions (after the
    previous pair) holding the *same keys* as the matched items.  Keys
    determine weights, so the result is a common subsequence of the
    same total weight; and any two solutions that pair the same key
    sequence — differing only in *which* occurrence of a repeated
    token they picked — canonicalize to the same alignment.  O((n + m)
    + k log n) with per-key position lists and bisection.
    """
    if not pairs:
        return list(pairs)
    if key is None:
        key = lambda x: x  # noqa: E731 - identity
    pos_a: Dict[Hashable, List[int]] = {}
    for i, x in enumerate(a):
        pos_a.setdefault(key(x), []).append(i)
    pos_b: Dict[Hashable, List[int]] = {}
    for j, y in enumerate(b):
        pos_b.setdefault(key(y), []).append(j)
    out: List[Match] = []
    prev_i = prev_j = -1
    for i, j, w in pairs:
        occ_a = pos_a[key(a[i])]
        occ_b = pos_b[key(b[j])]
        # First occurrence after the previous pair; (i, j) itself
        # qualifies, so the bisect always lands on an index <= it.
        ci = occ_a[bisect_left(occ_a, prev_i + 1)]
        cj = occ_b[bisect_left(occ_b, prev_j + 1)]
        out.append((ci, cj, w))
        prev_i, prev_j = ci, cj
    return out


def lcs_pairs(a: Sequence[T], b: Sequence[T]) -> List[Match]:
    """Unweighted LCS as (i, j, 1.0) matches (equality-based)."""
    return weighted_lcs_pairs(a, b, _equal_weight)
