"""Hunt–McIlroy differential file comparison.

The paper cites Hunt & McIlroy (Bell Labs CSTR #41, 1975) as the
algorithm behind UNIX ``diff``, which AIDE uses in two places: RCS
stores reverse deltas computed by ``diff``, and the ``rcsdiff`` CGI
falls back to plain text diffs for non-HTML files.  The algorithm is
also the baseline HtmlDiff is contrasted with ("line-based comparison
utilities such as UNIX diff clearly are ill-suited...").

The classic formulation finds the LCS of two line sequences by
considering only *candidate* matches: for each line of A, the positions
in B holding an equal line, processed so that a longest chain of
strictly increasing (i, j) pairs emerges.  Complexity is
O((R + N) log N) where R is the number of matching pairs — fast on
typical text where most lines are unique.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Hashable, List, Sequence, Tuple

__all__ = ["hunt_mcilroy_pairs", "hunt_mcilroy_length"]


def _candidate_chain(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> List[Tuple[int, int]]:
    """Longest chain of matching (i, j) pairs via patience-style LIS.

    For each position ``i`` in A we enumerate the positions of equal
    lines in B in *decreasing* order; a longest strictly-increasing
    subsequence over the j-values then yields the LCS.  This is the
    Hunt–Szymanski refinement of Hunt–McIlroy and has the same output.
    """
    occurrences: Dict[Hashable, List[int]] = {}
    for j, line in enumerate(b):
        occurrences.setdefault(line, []).append(j)

    # tails[k] = smallest j ending an increasing chain of length k+1
    tails: List[int] = []
    # For reconstruction: choice[k] holds (i, j, parent_index_in_links)
    links: List[Tuple[int, int, int]] = []
    tail_link: List[int] = []  # index into links for each tails slot

    for i, line in enumerate(a):
        positions = occurrences.get(line)
        if not positions:
            continue
        for j in reversed(positions):
            k = bisect_left(tails, j)
            parent = tail_link[k - 1] if k > 0 else -1
            links.append((i, j, parent))
            if k == len(tails):
                tails.append(j)
                tail_link.append(len(links) - 1)
            else:
                tails[k] = j
                tail_link[k] = len(links) - 1

    if not tails:
        return []
    chain: List[Tuple[int, int]] = []
    cursor = tail_link[-1]
    while cursor != -1:
        i, j, parent = links[cursor]
        chain.append((i, j))
        cursor = parent
    chain.reverse()
    return chain


def hunt_mcilroy_pairs(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> List[Tuple[int, int]]:
    """Matched (index_in_a, index_in_b) pairs of an LCS of ``a`` and ``b``."""
    if not a or not b:
        return []
    # Common-affix trimming keeps the candidate set small on typical
    # successive-version inputs.
    n, m = len(a), len(b)
    prefix = 0
    limit = min(n, m)
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    while suffix < limit - prefix and a[n - 1 - suffix] == b[m - 1 - suffix]:
        suffix += 1
    core = _candidate_chain(a[prefix:n - suffix], b[prefix:m - suffix])
    pairs = [(i, i) for i in range(prefix)]
    pairs.extend((i + prefix, j + prefix) for i, j in core)
    pairs.extend(
        (n - suffix + k, m - suffix + k) for k in range(suffix)
    )
    return pairs


def hunt_mcilroy_length(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """LCS length via the candidate-chain method."""
    return len(hunt_mcilroy_pairs(a, b))
