"""Myers O(ND) greedy edit distance plus a linear-space pair recovery.

Not cited by the paper (it predates widespread adoption of Myers's
algorithm in diff tools), but included as the modern comparator for the
S4 ablation benchmark: it shows where the paper's Hirschberg choice sits
against the algorithm later diff implementations converged on.
Equality-based only — the weighted sentence matching of HtmlDiff needs
the DP formulation in :mod:`repro.diffcore.lcs`.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

__all__ = ["myers_edit_distance", "myers_pairs"]


def myers_edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Length of the shortest edit script (insertions + deletions).

    The classic greedy forward pass: O((N+M) * D) time, O(N+M) space,
    where D is the edit distance — very fast when versions are similar,
    which is exactly the successive-page-version workload.
    """
    n, m = len(a), len(b)
    max_d = n + m
    if max_d == 0:
        return 0
    v = [0] * (2 * max_d + 1)
    for d in range(max_d + 1):
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1 + max_d] < v[k + 1 + max_d]):
                x = v[k + 1 + max_d]
            else:
                x = v[k - 1 + max_d] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k + max_d] = x
            if x >= n and y >= m:
                return d
    return max_d  # pragma: no cover - loop always terminates earlier


def myers_pairs(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> List[Tuple[int, int]]:
    """Matched (i, j) pairs of an LCS, recovered in linear space.

    Affix trimming plus Hirschberg-style splitting on the score rows;
    small cores fall through to a direct DP traceback.  Output pairs are
    strictly increasing in both coordinates.
    """
    out: List[Tuple[int, int]] = []
    _recurse(a, b, 0, 0, out)
    return out


def _recurse(
    a: Sequence[Hashable],
    b: Sequence[Hashable],
    a_off: int,
    b_off: int,
    out: List[Tuple[int, int]],
) -> None:
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return
    prefix = 0
    limit = min(n, m)
    while prefix < limit and a[prefix] == b[prefix]:
        out.append((a_off + prefix, b_off + prefix))
        prefix += 1
    suffix = 0
    while suffix < limit - prefix and a[n - 1 - suffix] == b[m - 1 - suffix]:
        suffix += 1
    core_a = a[prefix:n - suffix]
    core_b = b[prefix:m - suffix]
    if core_a and core_b:
        if len(core_a) * len(core_b) <= 4096:
            _dp_pairs(core_a, core_b, a_off + prefix, b_off + prefix, out)
        else:
            mid = len(core_a) // 2
            forward = _score_row(core_a[:mid], core_b)
            backward = _score_row(core_a[mid:][::-1], core_b[::-1])
            mlen = len(core_b)
            best_k, best = 0, -1
            for k in range(mlen + 1):
                score = forward[k] + backward[mlen - k]
                if score > best:
                    best, best_k = score, k
            _recurse(
                core_a[:mid], core_b[:best_k],
                a_off + prefix, b_off + prefix, out,
            )
            _recurse(
                core_a[mid:], core_b[best_k:],
                a_off + prefix + mid, b_off + prefix + best_k, out,
            )
    for k in range(suffix):
        out.append((a_off + n - suffix + k, b_off + m - suffix + k))


def _score_row(a: Sequence[Hashable], b: Sequence[Hashable]) -> List[int]:
    """Last row of the LCS-length DP table."""
    prev = [0] * (len(b) + 1)
    for item in a:
        cur = [0]
        for j in range(1, len(b) + 1):
            if item == b[j - 1]:
                cur.append(prev[j - 1] + 1)
            else:
                cur.append(cur[j - 1] if cur[j - 1] >= prev[j] else prev[j])
        prev = cur
    return prev


def _dp_pairs(
    a: Sequence[Hashable],
    b: Sequence[Hashable],
    a_off: int,
    b_off: int,
    out: List[Tuple[int, int]],
) -> None:
    """Full-table DP with traceback, for small cores only."""
    n, m = len(a), len(b)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = table[i]
        prev = table[i - 1]
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                row[j] = prev[j - 1] + 1
            else:
                row[j] = row[j - 1] if row[j - 1] >= prev[j] else prev[j]
    i, j = n, m
    stack: List[Tuple[int, int]] = []
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1] and table[i][j] == table[i - 1][j - 1] + 1:
            stack.append((a_off + i - 1, b_off + j - 1))
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    out.extend(reversed(stack))
