"""Line-level edit scripts: the machinery under RCS deltas and rcsdiff.

RCS (Tichy 1985) stores each non-head revision as a *reverse delta*: an
edit script that, applied to the newer text, reconstructs the older one.
The scripts use the classic ``diff -n`` command set — ``aN M`` (append M
lines after line N) and ``dN M`` (delete M lines starting at line N) —
which this module reproduces, along with a unified-diff renderer for the
``rcsdiff`` CGI of Section 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .huntmcilroy import hunt_mcilroy_pairs

__all__ = [
    "EditCommand",
    "EditScript",
    "make_edit_script",
    "apply_edit_script",
    "script_size",
    "unified_diff",
]


@dataclass(frozen=True)
class EditCommand:
    """One ``diff -n`` command.

    ``kind`` is ``'a'`` (append ``len(lines)`` lines after source line
    ``line``, 1-based, 0 meaning "before everything") or ``'d'`` (delete
    ``count`` lines starting at source line ``line``, 1-based).
    """

    kind: str  # 'a' or 'd'
    line: int
    count: int
    lines: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("a", "d"):
            raise ValueError(f"bad edit command kind: {self.kind!r}")
        if self.kind == "a" and len(self.lines) != self.count:
            raise ValueError("append command count disagrees with payload")
        if self.kind == "d" and self.lines:
            raise ValueError("delete command carries no payload")

    def serialize(self) -> str:
        """Render in the RCS delta text format."""
        head = f"{self.kind}{self.line} {self.count}"
        if self.kind == "a":
            return "\n".join([head, *self.lines])
        return head


EditScript = List[EditCommand]


def make_edit_script(old: Sequence[str], new: Sequence[str]) -> EditScript:
    """Compute the edit script turning ``old`` into ``new``.

    Commands are emitted top-to-bottom and reference *original* line
    numbers of ``old``, matching the RCS convention (so they must be
    applied with the offset bookkeeping in :func:`apply_edit_script`).
    """
    pairs = hunt_mcilroy_pairs(list(old), list(new))
    script: EditScript = []
    ai = bi = 0
    for pi, pj in pairs + [(len(old), len(new))]:
        deleted = pi - ai
        inserted_lines = tuple(new[bi:pj])
        if deleted:
            script.append(EditCommand("d", ai + 1, deleted))
        if inserted_lines:
            # Insert after the last surviving old line, i.e. after
            # original line ``pi`` once the deletions above are applied.
            script.append(EditCommand("a", pi, len(inserted_lines), inserted_lines))
        ai = pi + 1
        bi = pj + 1
    return script


def apply_edit_script(old: Sequence[str], script: EditScript) -> List[str]:
    """Apply an edit script produced by :func:`make_edit_script`.

    Raises :class:`ValueError` if a command references lines outside the
    source — corrupted archives must fail loudly, not reconstruct junk.
    """
    result: List[str] = []
    cursor = 0  # index into ``old`` of the next uncopied line
    for cmd in script:
        if cmd.kind == "d":
            anchor = cmd.line - 1
            if anchor < cursor or anchor + cmd.count > len(old):
                raise ValueError(f"delete out of range: {cmd}")
            result.extend(old[cursor:anchor])
            cursor = anchor + cmd.count
        else:
            anchor = cmd.line  # append AFTER this 1-based line
            if anchor < cursor or anchor > len(old):
                raise ValueError(f"append out of range: {cmd}")
            result.extend(old[cursor:anchor])
            cursor = anchor
            result.extend(cmd.lines)
    result.extend(old[cursor:])
    return result


def script_size(script: EditScript) -> int:
    """Bytes needed to store a script in the RCS text format.

    This is the quantity the Section 7 storage experiment measures:
    per-revision archive growth is (roughly) the serialized script size.
    """
    return sum(len(cmd.serialize()) + 1 for cmd in script)


def unified_diff(
    old: Sequence[str],
    new: Sequence[str],
    old_label: str = "old",
    new_label: str = "new",
    context: int = 3,
) -> str:
    """A unified diff of two line sequences (for the rcsdiff CGI).

    Matches the familiar ``diff -u`` presentation: ``---``/``+++``
    headers, ``@@`` hunk markers, prefixed body lines.
    """
    pairs = hunt_mcilroy_pairs(list(old), list(new))

    # Build a flat op list: (' ', i, j) / ('-', i, -1) / ('+', -1, j)
    ops: List[Tuple[str, int, int]] = []
    ai = bi = 0
    for i, j in pairs + [(len(old), len(new))]:
        while ai < i:
            ops.append(("-", ai, -1))
            ai += 1
        while bi < j:
            ops.append(("+", -1, bi))
            bi += 1
        if i < len(old):
            ops.append((" ", i, j))
            ai, bi = i + 1, j + 1

    if all(op[0] == " " for op in ops):
        return ""

    lines = [f"--- {old_label}", f"+++ {new_label}"]
    # Group ops into hunks with ``context`` lines of surrounding match.
    hunk_ranges: List[Tuple[int, int]] = []
    idx = 0
    while idx < len(ops):
        if ops[idx][0] == " ":
            idx += 1
            continue
        start = idx
        end = idx
        scan = idx
        gap = 0
        while scan < len(ops) and gap <= 2 * context:
            if ops[scan][0] != " ":
                end = scan
                gap = 0
            else:
                gap += 1
            scan += 1
        hunk_ranges.append((max(0, start - context), min(len(ops), end + context + 1)))
        idx = end + 1

    # Merge overlapping hunks.
    merged: List[Tuple[int, int]] = []
    for lo, hi in hunk_ranges:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
        else:
            merged.append((lo, hi))

    for lo, hi in merged:
        chunk = ops[lo:hi]
        old_start = next((i for op, i, _ in chunk if op in (" ", "-")), 0) + 1
        new_start = next((j for op, _, j in chunk if op in (" ", "+")), 0) + 1
        old_count = sum(1 for op, _, _ in chunk if op in (" ", "-"))
        new_count = sum(1 for op, _, _ in chunk if op in (" ", "+"))
        lines.append(f"@@ -{old_start},{old_count} +{new_start},{new_count} @@")
        for op, i, j in chunk:
            if op == " ":
                lines.append(" " + old[i])
            elif op == "-":
                lines.append("-" + old[i])
            else:
                lines.append("+" + new[j])
    return "\n".join(lines) + "\n"
