"""AIDE: the AT&T Internet Difference Engine.

A full reproduction of *Tracking and Viewing Changes on the Web*
(Douglis & Ball, 1996 USENIX Technical Conference): w3newer, snapshot,
and HtmlDiff, with every substrate they rely on — a simulated web, an
RCS reimplementation, an HTML lexer, and the comparison algorithms —
plus the extensions of Sections 7–8 and the baselines of Section 2.

Quickstart::

    from repro import Aide, Hotlist, html_diff

    aide = Aide()
    server = aide.network.create_server("www.example.com")
    server.set_page("/", "<P>hello world.</P>")
    user = aide.add_user("fred@att.com", Hotlist.from_lines("http://www.example.com/"))
    aide.clock.advance(3 * 24 * 3600)
    report = aide.run_w3newer("fred@att.com")
    print(report.report_html)
"""

from .aide.engine import Aide, AideUser
from .core.htmldiff.api import HtmlDiffResult, html_diff
from .core.htmldiff.options import HtmlDiffOptions, PresentationMode
from .core.snapshot.service import SnapshotService
from .core.snapshot.store import SnapshotStore
from .core.w3newer.hotlist import Hotlist, HotlistEntry
from .core.w3newer.runner import RunResult, W3Newer
from .core.w3newer.thresholds import ThresholdConfig, parse_threshold_config
from .simclock import DAY, HOUR, WEEK, CronScheduler, SimClock
from .web.network import Network

__version__ = "1.0.0"

__all__ = [
    "Aide",
    "AideUser",
    "HtmlDiffResult",
    "html_diff",
    "HtmlDiffOptions",
    "PresentationMode",
    "SnapshotService",
    "SnapshotStore",
    "Hotlist",
    "HotlistEntry",
    "RunResult",
    "W3Newer",
    "ThresholdConfig",
    "parse_threshold_config",
    "DAY",
    "HOUR",
    "WEEK",
    "CronScheduler",
    "SimClock",
    "Network",
    "__version__",
]
