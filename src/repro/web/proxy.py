"""A proxy-caching server (the AT&T-wide proxy of the paper).

w3newer consults "a modification date stored in a proxy-caching
server's cache" before ever touching the origin, and the paper warns
that "proxy-caching servers are sometimes overloaded to the point of
timing out large numbers of requests".  Both behaviours live here:

* TTL-based freshness with If-Modified-Since revalidation on expiry,
* an inspection API (:meth:`cached_last_modified`) used by the checker,
* an ``overloaded`` switch making the proxy time out every request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simclock import SimClock
from .http import Headers, Request, Response, TimeoutError_
from .network import Network
from .url import Url

__all__ = ["ProxyCache", "CacheEntry"]


@dataclass
class CacheEntry:
    """One cached entity."""

    response: Response
    fetched_at: int
    last_modified: Optional[int]


def _cache_key(url: Url) -> str:
    normal = url.normalized()
    return f"{normal.host}{normal.request_path}"


class ProxyCache:
    """TTL cache in front of the network, HTTP/1.0 style."""

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        ttl: int = 3600,
        capacity_bytes: int = 0,
    ) -> None:
        self.network = network
        self.clock = clock
        self.ttl = ttl
        #: 0 means unbounded; otherwise LRU eviction keeps the cached
        #: body bytes under this limit (1995 proxies were disk-bound —
        #: the "insufficient locality" the paper observed on the
        #: AT&T-wide proxy is partly an artifact of such limits).
        self.capacity_bytes = capacity_bytes
        self.overloaded = False
        #: 0 = unlimited.  Otherwise the proxy times out requests beyond
        #: this many in a single simulated instant — the paper's
        #: "proxy-caching servers are sometimes overloaded to the point
        #: of timing out large numbers of requests, and a background
        #: task that retrieves many URLs in a short time can aggravate
        #: their condition".
        self.requests_per_instant_limit = 0
        self._instant: int = -1
        self._instant_requests = 0
        self._cache: Dict[str, CacheEntry] = {}
        self._lru: List[str] = []  # least-recently-used first
        self.hits = 0
        self.misses = 0
        self.revalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Inspection (w3newer's second modification-date source)
    # ------------------------------------------------------------------
    def cached_last_modified(self, url: Url) -> Optional[Tuple[int, int]]:
        """(last_modified, cached_at) for a cached page, else None.

        ``cached_at`` lets the caller judge staleness: the paper only
        trusts proxy data "current with respect to the threshold".
        """
        entry = self._cache.get(_cache_key(url))
        if entry is None or entry.last_modified is None:
            return None
        return entry.last_modified, entry.fetched_at

    def contains(self, url: Url) -> bool:
        return _cache_key(url) in self._cache

    def evict(self, url: Url) -> None:
        key = _cache_key(url)
        self._cache.pop(key, None)
        if key in self._lru:
            self._lru.remove(key)

    @property
    def cached_bytes(self) -> int:
        return sum(len(e.response.body) for e in self._cache.values())

    # ------------------------------------------------------------------
    # Proxying
    # ------------------------------------------------------------------
    def request(self, request: Request) -> Response:
        """Serve from cache when fresh; otherwise go to the origin.

        Only GET responses with status 200 are cached.  POST and HEAD
        pass straight through (HTTP/1.0 proxies did not cache HEAD).
        """
        if self.overloaded:
            raise TimeoutError_("proxy overloaded")
        if self.requests_per_instant_limit > 0:
            if self.clock.now != self._instant:
                self._instant = self.clock.now
                self._instant_requests = 0
            self._instant_requests += 1
            if self._instant_requests > self.requests_per_instant_limit:
                raise TimeoutError_(
                    "proxy overloaded by burst traffic "
                    f"({self._instant_requests} requests this instant)"
                )
        if request.method != "GET":
            return self.network.request(request)

        key = _cache_key(request.url)
        entry = self._cache.get(key)
        now = self.clock.now

        if entry is not None and now - entry.fetched_at < self.ttl:
            self.hits += 1
            self._touch(key)
            return self._copy(entry.response)

        if entry is not None and entry.last_modified is not None:
            # Stale: revalidate with a conditional GET.
            self.revalidations += 1
            conditional = Request(
                method="GET",
                url=request.url,
                headers=self._conditional_headers(entry),
                timeout=request.timeout,
            )
            response = self.network.request(conditional)
            if response.status == 304:
                entry.fetched_at = now
                return self._copy(entry.response)
            if response.status == 200:
                self._store(key, response, now)
            return self._copy(response)

        self.misses += 1
        response = self.network.request(request)
        if response.status == 200:
            self._store(key, response, now)
        return self._copy(response)

    def _conditional_headers(self, entry: CacheEntry) -> Headers:
        headers = Headers()
        if entry.last_modified is not None:
            headers.set("X-Sim-If-Modified-Since", str(entry.last_modified))
            headers.set("If-Modified-Since", str(entry.last_modified))
        return headers

    def _store(self, key: str, response: Response, now: int) -> None:
        self._cache[key] = CacheEntry(
            response=self._copy(response),
            fetched_at=now,
            last_modified=response.last_modified,
        )
        self._touch(key)
        self._enforce_capacity(key)

    def _touch(self, key: str) -> None:
        if key in self._lru:
            self._lru.remove(key)
        self._lru.append(key)

    def _enforce_capacity(self, protected: str) -> None:
        """Evict least-recently-used entries past the byte budget.

        The just-stored entry is never evicted, even when it alone
        exceeds the budget — a proxy that cannot cache a page simply
        holds it for the in-flight response.
        """
        if self.capacity_bytes <= 0:
            return
        while self.cached_bytes > self.capacity_bytes and len(self._cache) > 1:
            victim = next(k for k in self._lru if k != protected)
            self._lru.remove(victim)
            self._cache.pop(victim, None)
            self.evictions += 1

    @staticmethod
    def _copy(response: Response) -> Response:
        return Response(
            status=response.status,
            headers=response.headers.copy(),
            body=response.body,
        )
