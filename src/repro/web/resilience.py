"""Retry/backoff, circuit breakers, and the resilient user agent.

Section 3.1 is about surviving a hostile web: moved and vanished pages,
overloaded proxies, dead networks.  The base :class:`~.client.UserAgent`
reports each of those faithfully and immediately — one transport error
per request — which is exactly right for the paper's measurements and
exactly wrong for a production tracker polling hundreds of flaky hosts.
This module adds the missing layer:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  spent on the shared :class:`~repro.simclock.SimClock` (waiting takes
  simulated time, like everything else), plus a global retry budget
  that bounds request amplification, and 503/``Retry-After`` awareness
  so an overloaded host's own advice is honored;
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine, one per host: after enough consecutive failures the host is
  short-circuited without touching the wire, and a single probe after
  the reset timeout decides whether it has recovered;
* :class:`ResilientAgent` — a drop-in wrapper around ``UserAgent``
  (same ``get``/``head``/``post``/``fetch_robots`` surface) composing
  the two, with a ``stats()`` dict of counters in the same style as the
  snapshot store's layers.

Differential guarantee: with a fault-free network and any policy, every
first attempt succeeds, so the wrapper issues exactly the requests the
bare agent would — no hidden traffic, byte-identical downstream output.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..obs import NOOP as NOOP_OBS
from .client import FetchResult, UserAgent, robots_from_response
from .http import (
    ConnectionRefused,
    Headers,
    NetworkError,
    NetworkUnreachable,
    TimeoutError_,
)
from .robots import RobotsFile
from .url import Url, parse_url

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilientAgent",
           "CircuitOpen", "RetriesExhausted"]


class CircuitOpen(NetworkError):
    """Short-circuited: the host's breaker is open, nothing was sent."""

    def __init__(self, host: str) -> None:
        super().__init__(f"circuit open for {host}; request short-circuited")
        self.host = host


class RetriesExhausted(NetworkError):
    """Every allowed attempt failed; ``cause`` is the last error."""

    def __init__(self, host: str, attempts: int, cause: NetworkError) -> None:
        super().__init__(
            f"{host}: {attempts} attempt(s) failed; last error: {cause}"
        )
        self.host = host
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on one request.

    Backoff for attempt *n* (1-based) is ``base_delay * multiplier**
    (n-1)`` capped at ``max_delay``, plus a deterministic jitter in
    ``[0, jitter]`` hashed from ``(seed, host, attempt)`` — two runs of
    the same scenario wait the same simulated seconds, but two hosts
    retried in the same instant do not thundering-herd in lockstep.

    ``budget`` bounds the *total* retries an agent may spend over its
    lifetime (None = unbounded): with B exhausted, failures surface
    immediately, which is what caps retry amplification under a
    systemic outage.  ``retry_on_503`` treats an overloaded host's 503
    as transient, waiting at least its ``Retry-After`` if advertised.
    """

    max_attempts: int = 3
    base_delay: int = 2
    multiplier: int = 2
    max_delay: int = 60
    jitter: int = 1
    budget: Optional[int] = None
    retry_on_503: bool = True
    retry_dns: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be >= 0")

    def retryable(self, exc: NetworkError) -> bool:
        """Is this transport error worth a second attempt?

        Timeouts, refused connections, and unreachable networks are
        transient by nature; DNS failures usually mean "renamed or
        deactivated" (Section 3.1) and are only retried when
        ``retry_dns`` is set.
        """
        if isinstance(exc, (TimeoutError_, ConnectionRefused,
                            NetworkUnreachable)):
            return True
        if self.retry_dns and isinstance(exc, NetworkError):
            return True
        return False

    def backoff(self, host: str, attempt: int) -> int:
        """Seconds to wait after failed attempt number ``attempt``."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.seed}:{host}:{attempt}".encode("utf-8")).digest()
            delay += int.from_bytes(digest[:4], "big") % (self.jitter + 1)
        return delay


class CircuitBreaker:
    """Per-host closed/open/half-open breaker on the sim clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, requests are refused without touching the wire.  After
    ``reset_timeout`` seconds the breaker half-opens: the next request
    is a probe whose outcome either closes the circuit or re-opens it
    for another full timeout.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, clock, failure_threshold: int = 5,
                 reset_timeout: int = 300) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[int] = None
        self.opens = 0

    def allow(self) -> bool:
        """May a request go out right now?  (Open → half-open happens
        here, when the reset timeout has elapsed.)"""
        if self.state == self.OPEN:
            if self.clock.now - self.opened_at >= self.reset_timeout:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> bool:
        """Note a failure; True when this one opened the circuit."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open.
            self.state = self.OPEN
            self.opened_at = self.clock.now
            self.opens += 1
            return True
        if (self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.opened_at = self.clock.now
            self.opens += 1
            return True
        return False


class ResilientAgent:
    """A :class:`UserAgent` wrapped in retries and circuit breakers.

    Drop-in: the w3newer checker and the snapshot store only use
    ``get``/``head``/``post``/``fetch_robots``, all present here with
    identical signatures.  Failures surface as:

    * :class:`CircuitOpen` — the host's breaker refused the request
      outright (zero wire traffic);
    * :class:`RetriesExhausted` — every allowed attempt failed (the
      last underlying error rides along as ``cause``);
    * the original :class:`NetworkError` — non-retryable failures
      (DNS, by default) pass straight through on the first attempt.

    Degraded-mode callers (the checker's STALE fallback) bump the
    ``fallbacks`` counter through :meth:`record_fallback` so one
    ``stats()`` dict tells the whole resilience story.
    """

    def __init__(
        self,
        agent: UserAgent,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: int = 300,
        obs=None,
    ) -> None:
        self.agent = agent
        self.clock = agent.clock
        self.policy = policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.retries = 0
        self.short_circuits = 0
        self.fallbacks = 0
        self._budget_left = self.policy.budget
        self.obs = obs if obs is not None else NOOP_OBS
        self.obs.register_stats("web.resilience", self.stats)

    # ------------------------------------------------------------------
    # Passthroughs, so the wrapper is a true drop-in
    # ------------------------------------------------------------------
    @property
    def network(self):
        return self.agent.network

    @property
    def proxy(self):
        return self.agent.proxy

    @property
    def agent_name(self) -> str:
        return self.agent.agent_name

    @property
    def politeness(self):
        """The wrapped agent's per-host request accounting log."""
        return self.agent.politeness

    @politeness.setter
    def politeness(self, log) -> None:
        self.agent.politeness = log

    # ------------------------------------------------------------------
    def breaker_for(self, host: str) -> CircuitBreaker:
        key = host.lower()
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.clock,
                failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset,
            )
            self._breakers[key] = breaker
        return breaker

    def record_fallback(self) -> None:
        """A caller served stale data instead of failing outright."""
        self.fallbacks += 1
        self.obs.event("resilience.fallback")

    @property
    def breaker_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def open_hosts(self) -> list:
        """Hosts currently short-circuited (open, timeout not elapsed)."""
        return sorted(
            host for host, b in self._breakers.items()
            if b.state == CircuitBreaker.OPEN
            and self.clock.now - b.opened_at < b.reset_timeout
        )

    def stats(self) -> Dict[str, object]:
        """Counters in the same shape as the snapshot layers'."""
        return {
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "short_circuits": self.short_circuits,
            "fallbacks": self.fallbacks,
            "budget_remaining": self._budget_left,
            "open_hosts": self.open_hosts(),
        }

    # ------------------------------------------------------------------
    def _budget_allows(self) -> bool:
        return self._budget_left is None or self._budget_left > 0

    def _spend_retry(self, host: str, attempt: int,
                     minimum_wait: int = 0) -> None:
        delay = max(self.policy.backoff(host, attempt), minimum_wait)
        self.obs.event("resilience.retry", host=host, attempt=attempt,
                       delay=delay)
        if delay:
            self.clock.advance(delay)
        self.retries += 1
        if self._budget_left is not None:
            self._budget_left -= 1

    def _execute(self, host: str, thunk) -> FetchResult:
        breaker = self.breaker_for(host)
        if not breaker.allow():
            self.short_circuits += 1
            self.obs.event("resilience.short_circuit", host=host)
            raise CircuitOpen(host)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = thunk()
            except NetworkError as exc:
                if breaker.record_failure():
                    self.obs.event("resilience.breaker_open", host=host)
                if not self.policy.retryable(exc):
                    raise
                exhausted = (
                    attempt >= self.policy.max_attempts
                    or not self._budget_allows()
                    or not breaker.allow()
                )
                if exhausted:
                    raise RetriesExhausted(host, attempt, exc)
                self._spend_retry(host, attempt)
                continue
            response = result.response
            if response.status == 503 and self.policy.retry_on_503:
                if breaker.record_failure():
                    self.obs.event("resilience.breaker_open", host=host)
                if (attempt >= self.policy.max_attempts
                        or not self._budget_allows()
                        or not breaker.allow()):
                    # Out of attempts: the 503 is the answer; the
                    # caller sees the HTTP error, not an exception.
                    return result
                retry_after = response.headers.get("Retry-After")
                try:
                    minimum = int(retry_after) if retry_after else 0
                except ValueError:
                    minimum = 0
                self._spend_retry(host, attempt, minimum_wait=minimum)
                continue
            if response.status == 503:
                if breaker.record_failure():
                    self.obs.event("resilience.breaker_open", host=host)
            else:
                breaker.record_success()
            return result

    def _host_of(self, url: Union[str, Url]) -> str:
        if isinstance(url, str):
            url = parse_url(url)
        return url.host.lower()

    # ------------------------------------------------------------------
    # The UserAgent surface
    # ------------------------------------------------------------------
    def get(self, url: Union[str, Url], timeout: Optional[int] = None,
            headers: Optional[Headers] = None) -> FetchResult:
        return self._execute(
            self._host_of(url),
            lambda: self.agent.get(url, timeout=timeout, headers=headers),
        )

    def head(self, url: Union[str, Url],
             timeout: Optional[int] = None) -> FetchResult:
        return self._execute(
            self._host_of(url), lambda: self.agent.head(url, timeout=timeout)
        )

    def post(self, url: Union[str, Url], body: str,
             timeout: Optional[int] = None) -> FetchResult:
        return self._execute(
            self._host_of(url),
            lambda: self.agent.post(url, body, timeout=timeout),
        )

    def fetch_robots(self, host: str,
                     timeout: Optional[int] = None) -> RobotsFile:
        """Like :meth:`UserAgent.fetch_robots`, but each underlying GET
        rides the retry/breaker machinery."""
        result = self.get(f"http://{host}/robots.txt", timeout=timeout)
        return robots_from_response(host, result.response)
