"""The simulated internet: routing plus fault injection.

A :class:`Network` owns the map from host names to
:class:`~repro.web.server.HttpServer` instances and decides, per
request, whether transport succeeds.  Every failure mode Section 3.1
enumerates is injectable:

* systemic: the whole network unreachable (local connectivity loss);
* per-host: DNS failure (server renamed/deactivated), connection
  refused (host down), slow responses that overrun client timeouts.

Faults are scripted through a :class:`FaultPlan` — a per-host schedule
of :class:`FaultRule` entries.  Beyond the paper's static switches
(which remain as trivial always-on rules behind :meth:`Network.kill_dns`
and friends), a plan can express the *hostile* web the resilience layer
is built against: intermittent failures with a per-request probability,
outage windows (down from t1 to t2), slow-response spikes, overloaded
servers answering 503 with a ``Retry-After``, and flaky-then-recover
hosts.  All randomness is derived from the plan's seed plus a per-host
draw counter, so a chaos scenario replays identically run after run.

The network also keeps a request log so benchmarks can count exactly
how many HTTP requests each tracking strategy issues — the paper's
scalability argument is about precisely this number.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simclock import SimClock
from .http import (
    ConnectionRefused,
    DnsError,
    Headers,
    NetworkUnreachable,
    Request,
    Response,
    TimeoutError_,
)
from .server import HttpServer

__all__ = ["Network", "RequestRecord", "FaultPlan", "FaultRule"]

#: Everything a rule can break.  ``dns``/``refused``/``timeout`` map to
#: the transport exceptions; ``slow`` adds seconds to the server's
#: response delay; ``overloaded`` short-circuits into an HTTP 503.
FAULT_KINDS = ("dns", "refused", "timeout", "slow", "overloaded")


@dataclass(frozen=True)
class RequestRecord:
    """One entry in the network's request log."""

    time: int
    method: str
    host: str
    path: str
    status: Optional[int]  # None when transport failed
    error: Optional[str] = None


@dataclass
class FaultRule:
    """One scripted fault: what breaks, when, and how often.

    ``start``/``end`` bound the active window ([start, end), ``None``
    meaning unbounded on that side); ``probability`` below 1.0 makes the
    fault intermittent — each request inside the window draws against
    it.  ``delay`` is the extra response time for ``slow`` rules;
    ``retry_after`` is the header an ``overloaded`` host advertises.
    """

    kind: str
    start: Optional[int] = None
    end: Optional[int] = None
    probability: float = 1.0
    delay: int = 0
    retry_after: Optional[int] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def active_at(self, now: int) -> bool:
        if self.start is not None and now < self.start:
            return False
        if self.end is not None and now >= self.end:
            return False
        return True


class FaultPlan:
    """A seed-deterministic schedule of per-host faults.

    Rules are kept per host (plus the ``"*"`` wildcard, matched after
    host-specific rules); the first active rule whose probability draw
    fires decides the request's fate.  Draws consume a per-host counter
    hashed with the seed, so two runs of the same scenario — or the
    same scenario replayed after a checkpointed abort — observe the
    same fault sequence.

    The empty plan is guaranteed inert: no rules means no draws and no
    behavioural difference from the pre-fault-plan network.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: Dict[str, List[FaultRule]] = {}
        self._draws: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Scripting
    # ------------------------------------------------------------------
    def add_rule(self, host: str, rule: FaultRule) -> FaultRule:
        self._rules.setdefault(host.lower(), []).append(rule)
        return rule

    def outage(self, host: str, kind: str = "refused",
               start: Optional[int] = None, end: Optional[int] = None,
               tag: str = "") -> FaultRule:
        """Host hard-down (deterministically) inside [start, end)."""
        return self.add_rule(host, FaultRule(kind=kind, start=start, end=end,
                                             tag=tag))

    def intermittent(self, host: str, probability: float,
                     kind: str = "timeout", start: Optional[int] = None,
                     end: Optional[int] = None, tag: str = "") -> FaultRule:
        """Each request inside the window fails with ``probability``."""
        return self.add_rule(host, FaultRule(
            kind=kind, start=start, end=end, probability=probability, tag=tag))

    def flaky_until(self, host: str, recover_at: int, probability: float,
                    kind: str = "timeout", tag: str = "") -> FaultRule:
        """Flaky-then-recover: intermittent failures until ``recover_at``."""
        return self.intermittent(host, probability, kind=kind,
                                 end=recover_at, tag=tag)

    def slowdown(self, host: str, delay: int, start: Optional[int] = None,
                 end: Optional[int] = None, probability: float = 1.0,
                 tag: str = "") -> FaultRule:
        """A slow-response spike: ``delay`` extra seconds per response."""
        return self.add_rule(host, FaultRule(
            kind="slow", start=start, end=end, probability=probability,
            delay=delay, tag=tag))

    def overloaded(self, host: str, probability: float = 1.0,
                   retry_after: Optional[int] = None,
                   start: Optional[int] = None, end: Optional[int] = None,
                   tag: str = "") -> FaultRule:
        """The host sheds load: HTTP 503, optionally with Retry-After."""
        return self.add_rule(host, FaultRule(
            kind="overloaded", start=start, end=end, probability=probability,
            retry_after=retry_after, tag=tag))

    def clear(self, host: Optional[str] = None, kind: Optional[str] = None,
              tag: Optional[str] = None) -> int:
        """Remove matching rules; ``None`` matches anything.  Returns
        how many rules were dropped."""
        removed = 0
        hosts = [host.lower()] if host is not None else list(self._rules)
        for key in hosts:
            rules = self._rules.get(key, [])
            kept = [r for r in rules
                    if (kind is not None and r.kind != kind)
                    or (tag is not None and r.tag != tag)]
            if kind is None and tag is None:
                kept = []
            removed += len(rules) - len(kept)
            if kept:
                self._rules[key] = kept
            else:
                self._rules.pop(key, None)
        return removed

    def is_trivial(self) -> bool:
        """True when the plan cannot affect any request."""
        return not self._rules

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _chance(self, host: str) -> float:
        """The next deterministic uniform draw in [0, 1) for ``host``."""
        count = self._draws.get(host, 0) + 1
        self._draws[host] = count
        digest = hashlib.sha256(
            f"{self.seed}:{host}:{count}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def fault_for(self, host: str, now: int) -> Optional[FaultRule]:
        """The fault (if any) this request observes.

        Host-specific rules are consulted before wildcard rules; within
        a list, scripting order.  Probabilistic rules each consume one
        deterministic draw, whether or not they fire.
        """
        host = host.lower()
        for key in (host, "*"):
            for rule in self._rules.get(key, ()):
                if not rule.active_at(now):
                    continue
                if rule.probability >= 1.0:
                    return rule
                if self._chance(host) < rule.probability:
                    return rule
        return None


class Network:
    """Routes requests to virtual hosts, injecting configured faults."""

    def __init__(self, clock: SimClock,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.clock = clock
        self._hosts: Dict[str, HttpServer] = {}
        self.plan = fault_plan if fault_plan is not None else FaultPlan()
        self.unreachable = False
        self.log: List[RequestRecord] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_server(self, server: HttpServer) -> HttpServer:
        self._hosts[server.host.lower()] = server
        return server

    def create_server(self, host: str, response_delay: int = 0) -> HttpServer:
        server = HttpServer(host, self.clock, response_delay=response_delay)
        return self.add_server(server)

    def server_for(self, host: str) -> Optional[HttpServer]:
        return self._hosts.get(host.lower())

    # ------------------------------------------------------------------
    # Fault injection (the paper's static switches, as trivial plans)
    # ------------------------------------------------------------------
    def kill_dns(self, host: str) -> None:
        """Host name stops resolving."""
        self.plan.outage(host, kind="dns", tag="toggle:dns")

    def restore_dns(self, host: str) -> None:
        self.plan.clear(host, tag="toggle:dns")

    def refuse_connections(self, host: str) -> None:
        """Host resolves but the server process is down."""
        self.plan.outage(host, kind="refused", tag="toggle:refused")

    def accept_connections(self, host: str) -> None:
        self.plan.clear(host, tag="toggle:refused")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, request: Request) -> Response:
        """Deliver a request, or raise a :class:`NetworkError`."""
        host = request.url.host.lower()
        path = request.url.request_path

        def _log(status: Optional[int], error: Optional[str] = None) -> None:
            self.log.append(
                RequestRecord(
                    time=self.clock.now,
                    method=request.method,
                    host=host,
                    path=path,
                    status=status,
                    error=error,
                )
            )

        if self.unreachable:
            _log(None, "network unreachable")
            raise NetworkUnreachable("network is unreachable")
        fault = self.plan.fault_for(host, self.clock.now)
        if fault is not None and fault.kind == "dns":
            _log(None, "dns")
            raise DnsError(f"cannot resolve {host}")
        if host not in self._hosts:
            _log(None, "dns")
            raise DnsError(f"cannot resolve {host}")
        if fault is not None and fault.kind == "refused":
            _log(None, "refused")
            raise ConnectionRefused(f"{host} refused the connection")
        if fault is not None and fault.kind == "timeout":
            # Injected at the transport: the packets never arrive, so
            # unlike a slow server the origin does no work at all.
            _log(None, "timeout")
            raise TimeoutError_(
                f"{host} did not respond within {request.timeout}s"
            )
        if fault is not None and fault.kind == "overloaded":
            headers = Headers()
            headers.set("Content-Type", "text/html")
            if fault.retry_after is not None:
                headers.set("Retry-After", str(fault.retry_after))
            response = Response(status=503, headers=headers,
                                body="<P>Service overloaded</P>")
            _log(503)
            return response
        server = self._hosts[host]
        delay = server.response_delay
        if fault is not None and fault.kind == "slow":
            delay += fault.delay
        if delay > request.timeout:
            # The client hangs up before the server answers.  The
            # server still did the work (and its counters show it).
            server.request_count += 1
            _log(None, "timeout")
            raise TimeoutError_(
                f"{host} did not respond within {request.timeout}s"
            )
        response = server.handle(request)
        _log(response.status)
        return response

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def requests_since(self, when: int) -> List[RequestRecord]:
        return [record for record in self.log if record.time >= when]

    def request_counts_by_host(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.log:
            counts[record.host] = counts.get(record.host, 0) + 1
        return counts

    def reset_log(self) -> None:
        self.log.clear()
