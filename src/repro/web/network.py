"""The simulated internet: routing plus fault injection.

A :class:`Network` owns the map from host names to
:class:`~repro.web.server.HttpServer` instances and decides, per
request, whether transport succeeds.  Every failure mode Section 3.1
enumerates is injectable:

* systemic: the whole network unreachable (local connectivity loss);
* per-host: DNS failure (server renamed/deactivated), connection
  refused (host down), slow responses that overrun client timeouts.

The network also keeps a request log so benchmarks can count exactly
how many HTTP requests each tracking strategy issues — the paper's
scalability argument is about precisely this number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simclock import SimClock
from .http import (
    ConnectionRefused,
    DnsError,
    NetworkUnreachable,
    Request,
    Response,
    TimeoutError_,
)
from .server import HttpServer

__all__ = ["Network", "RequestRecord"]


@dataclass(frozen=True)
class RequestRecord:
    """One entry in the network's request log."""

    time: int
    method: str
    host: str
    path: str
    status: Optional[int]  # None when transport failed
    error: Optional[str] = None


class Network:
    """Routes requests to virtual hosts, injecting configured faults."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._hosts: Dict[str, HttpServer] = {}
        self._dns_dead: set = set()
        self._refusing: set = set()
        self.unreachable = False
        self.log: List[RequestRecord] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_server(self, server: HttpServer) -> HttpServer:
        self._hosts[server.host.lower()] = server
        return server

    def create_server(self, host: str, response_delay: int = 0) -> HttpServer:
        server = HttpServer(host, self.clock, response_delay=response_delay)
        return self.add_server(server)

    def server_for(self, host: str) -> Optional[HttpServer]:
        return self._hosts.get(host.lower())

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill_dns(self, host: str) -> None:
        """Host name stops resolving."""
        self._dns_dead.add(host.lower())

    def restore_dns(self, host: str) -> None:
        self._dns_dead.discard(host.lower())

    def refuse_connections(self, host: str) -> None:
        """Host resolves but the server process is down."""
        self._refusing.add(host.lower())

    def accept_connections(self, host: str) -> None:
        self._refusing.discard(host.lower())

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, request: Request) -> Response:
        """Deliver a request, or raise a :class:`NetworkError`."""
        host = request.url.host.lower()
        path = request.url.request_path

        def _log(status: Optional[int], error: Optional[str] = None) -> None:
            self.log.append(
                RequestRecord(
                    time=self.clock.now,
                    method=request.method,
                    host=host,
                    path=path,
                    status=status,
                    error=error,
                )
            )

        if self.unreachable:
            _log(None, "network unreachable")
            raise NetworkUnreachable("network is unreachable")
        if host in self._dns_dead or host not in self._hosts:
            _log(None, "dns")
            raise DnsError(f"cannot resolve {host}")
        if host in self._refusing:
            _log(None, "refused")
            raise ConnectionRefused(f"{host} refused the connection")
        server = self._hosts[host]
        if server.response_delay > request.timeout:
            # The client hangs up before the server answers.  The
            # server still did the work (and its counters show it).
            server.request_count += 1
            _log(None, "timeout")
            raise TimeoutError_(
                f"{host} did not respond within {request.timeout}s"
            )
        response = server.handle(request)
        _log(response.status)
        return response

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def requests_since(self, when: int) -> List[RequestRecord]:
        return [record for record in self.log if record.time >= when]

    def request_counts_by_host(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.log:
            counts[record.host] = counts.get(record.host, 0) + 1
        return counts

    def reset_log(self) -> None:
        self.log.clear()
