"""Synthetic web sites: the cast of the paper's examples.

Table 1 and the Experiences section name a specific menagerie —
Yahoo category pages, anything under ``att.com``, the NCSA Mosaic
"What's New" page, a mobile-computing page on a nonstandard port, and
the Dilbert comic that "will always be different".  The benchmarks need
those archetypes, so this module builds deterministic stand-ins:

* :func:`build_yahoo` — a directory hierarchy whose category pages gain
  links over time;
* :func:`build_att_intranet` — a handful of fast-changing local pages;
* :func:`build_virtual_library` — one page with many outbound links
  (Section 8.3's "Virtual Library pages" case);
* :func:`build_whats_new` — a page whose entire contents are replaced
  on every update (Section 8.2's automatic-archival worst case);
* :class:`DilbertSite` — new content every day, never worth checking;
* :func:`usenix_home_v1` / ``..._v2`` — two versions of a USENIX-like
  home page, the raw material for reproducing Figure 2.
"""

from __future__ import annotations

import random
from typing import List

from ..simclock import DAY, SimClock, format_timestamp
from .network import Network
from .server import HttpServer

__all__ = [
    "build_yahoo",
    "build_att_intranet",
    "build_virtual_library",
    "build_whats_new",
    "DilbertSite",
    "usenix_home_v1",
    "usenix_home_v2",
]

_WORDS = (
    "systems research internet software engineering networks mobile "
    "computing distributed file caching protocol analysis conference "
    "workshop proceedings tutorial technical session communication"
).split()


def _paragraph(rng: random.Random, sentences: int = 3) -> str:
    out = []
    for _ in range(sentences):
        length = rng.randint(5, 12)
        words = [rng.choice(_WORDS) for _ in range(length)]
        words[0] = words[0].capitalize()
        out.append(" ".join(words) + ".")
    return " ".join(out)


def build_yahoo(network: Network, categories: int = 10, seed: int = 42) -> HttpServer:
    """``www.yahoo.com`` with a root directory and category pages.

    Category pages are link lists — the shape that grows "a number of
    links added at a time" (Section 2.1's Virtual Library complaint).
    """
    rng = random.Random(seed)
    server = network.server_for("www.yahoo.com") or network.create_server("www.yahoo.com")
    names = [f"category{i}" for i in range(categories)]
    index_items = "".join(
        f'<LI><A HREF="/{name}/">{name.capitalize()}</A>' for name in names
    )
    server.set_page(
        "/",
        "<HTML><HEAD><TITLE>Yahoo</TITLE></HEAD><BODY>"
        f"<H1>Yahoo Directory</H1><UL>{index_items}</UL></BODY></HTML>",
    )
    for name in names:
        links = "".join(
            f'<LI><A HREF="http://site{rng.randint(0, 999)}.com/">'
            f"{_paragraph(rng, 1)}</A>"
            for _ in range(rng.randint(4, 9))
        )
        server.set_page(
            f"/{name}/",
            f"<HTML><HEAD><TITLE>Yahoo: {name}</TITLE></HEAD><BODY>"
            f"<H1>{name.capitalize()}</H1><UL>{links}</UL></BODY></HTML>",
        )
    return server


def build_att_intranet(network: Network, pages: int = 5, seed: int = 7) -> HttpServer:
    """``www.research.att.com`` — local pages, checked on every run
    (Table 1 gives the att.com pattern threshold 0)."""
    rng = random.Random(seed)
    server = network.server_for("www.research.att.com") or network.create_server(
        "www.research.att.com"
    )
    server.set_page(
        "/",
        "<HTML><HEAD><TITLE>AT&amp;T Research</TITLE></HEAD><BODY>"
        "<H1>AT&amp;T Bell Laboratories Research</H1>"
        f"<P>{_paragraph(rng)}</P></BODY></HTML>",
    )
    for i in range(pages):
        server.set_page(
            f"/projects/project{i}.html",
            f"<HTML><HEAD><TITLE>Project {i}</TITLE></HEAD><BODY>"
            f"<H1>Project {i}</H1><P>{_paragraph(rng)}</P></BODY></HTML>",
        )
    return server


def build_virtual_library(
    server: HttpServer, path: str, subject: str, link_count: int, seed: int = 3
) -> List[str]:
    """A W3 Virtual Library page: many links within one subject area.

    Returns the link URLs so experiments can follow them (the
    centralized tracker of Section 8.3 does exactly that).
    """
    rng = random.Random(seed)
    urls = [
        f"http://vlib-member{rng.randint(0, 9999)}.org/{subject}/{i}.html"
        for i in range(link_count)
    ]
    items = "".join(
        f'<LI><A HREF="{url}">{subject} resource {i}</A>'
        for i, url in enumerate(urls)
    )
    server.set_page(
        path,
        f"<HTML><HEAD><TITLE>Virtual Library: {subject}</TITLE></HEAD><BODY>"
        f"<H1>The {subject.capitalize()} Virtual Library</H1>"
        f"<UL>{items}</UL></BODY></HTML>",
    )
    return urls


def build_whats_new(server: HttpServer, path: str, clock: SimClock,
                    entries: int = 8, seed: int = 11) -> None:
    """The Mosaic-style "What's New" page: wholesale replacement.

    Call again (same arguments advance the seed via the clock) to
    replace the entire contents, the case where "there is no use for
    HtmlDiff" and archives balloon (Section 8.2).
    """
    rng = random.Random(seed + clock.now)
    items = "".join(
        f"<LI>{format_timestamp(clock.now)} &#183; {_paragraph(rng, 1)}"
        for _ in range(entries)
    )
    server.set_page(
        path,
        "<HTML><HEAD><TITLE>What's New</TITLE></HEAD><BODY>"
        f"<H1>What's New with NCSA Mosaic</H1><UL>{items}</UL></BODY></HTML>",
    )


class DilbertSite:
    """``www.unitedmedia.com/comics/dilbert/`` — different every day.

    Table 1 assigns it ``never``: "it will always be different", so any
    polling is pure junk-notification fuel.
    """

    PATH = "/comics/dilbert/"

    def __init__(self, network: Network, clock: SimClock) -> None:
        self.clock = clock
        self.server = network.server_for("www.unitedmedia.com") or network.create_server(
            "www.unitedmedia.com"
        )
        self.publish_today()

    def publish_today(self) -> None:
        day = self.clock.now // DAY
        self.server.set_page(
            self.PATH,
            "<HTML><HEAD><TITLE>Dilbert</TITLE></HEAD><BODY>"
            f'<H1>Dilbert</H1><P><IMG SRC="/strips/dilbert{day}.gif" '
            f'ALT="strip for day {day}"></P></BODY></HTML>',
        )


def usenix_home_v1() -> str:
    """A USENIX-Association-style home page, "as of 9/29/95".

    The content is modelled on what Figure 2 shows of the real page:
    conference announcements, a symposium list, registration notes.
    """
    return (
        "<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD>\n"
        "<BODY>\n"
        '<H1><IMG SRC="/images/usenix-logo.gif" ALT="USENIX"> '
        "USENIX Association</H1>\n"
        "<P>USENIX is the UNIX and Advanced Computing Systems professional\n"
        "and technical association. Since 1975 the USENIX Association has\n"
        "brought together the community of engineers and system "
        "administrators.</P>\n"
        "<HR>\n"
        "<H2>Upcoming Events</H2>\n"
        "<UL>\n"
        '<LI><A HREF="/events/coots96/">COOTS: Conference on Object-Oriented\n'
        "Technologies, June 1996, Toronto</A>\n"
        '<LI><A HREF="/events/sec96/">Sixth USENIX Security Symposium,\n'
        "July 1996, San Jose</A>\n"
        '<LI><A HREF="/events/lisa95/">LISA IX, September 1995, Monterey</A>\n'
        "</UL>\n"
        "<H2>Registration</H2>\n"
        "<P>Registration materials for the 1996 Technical Conference will be\n"
        "available in October. Contact the conference office for details.</P>\n"
        "<P>Members receive the newsletter <I>;login:</I> six times a year.</P>\n"
        "<HR>\n"
        "<ADDRESS>USENIX Association, Berkeley, CA</ADDRESS>\n"
        "</BODY></HTML>\n"
    )


def usenix_home_v2() -> str:
    """The same page "as of 11/3/95": events dropped and added, the
    registration paragraph rewritten, one sentence edited in place."""
    return (
        "<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD>\n"
        "<BODY>\n"
        '<H1><IMG SRC="/images/usenix-logo.gif" ALT="USENIX"> '
        "USENIX Association</H1>\n"
        "<P>USENIX is the UNIX and Advanced Computing Systems professional\n"
        "and technical association. Since 1975 the USENIX Association has\n"
        "brought together the community of engineers, system administrators,\n"
        "and technicians working on the cutting edge.</P>\n"
        "<HR>\n"
        "<H2>Upcoming Events</H2>\n"
        "<UL>\n"
        '<LI><A HREF="/events/usenix96/">1996 USENIX Technical Conference,\n'
        "January 1996, San Diego</A>\n"
        '<LI><A HREF="/events/coots96/">COOTS: Conference on Object-Oriented\n'
        "Technologies, June 1996, Toronto</A>\n"
        '<LI><A HREF="/events/sec96/">Sixth USENIX Security Symposium,\n'
        "July 1996, San Jose</A>\n"
        "</UL>\n"
        "<H2>Registration</H2>\n"
        "<P>Registration materials for the 1996 Technical Conference are now\n"
        "available online, together with the advance program.</P>\n"
        "<P>Members receive the newsletter <I>;login:</I> six times a year.</P>\n"
        "<HR>\n"
        "<ADDRESS>USENIX Association, Berkeley, CA</ADDRESS>\n"
        "</BODY></HTML>\n"
    )
