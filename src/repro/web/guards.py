"""Resource-bounded ingest guards for hostile web content.

The rest of ``repro.web`` models the 1995 network being *unreliable*;
this module models it being *adversarial*.  A tracked page can be a
truncated binary blob, a mislabeled charset, a megabyte of nested
``<b>`` tags, or a tiny compressed body that expands a thousandfold.
Every ingest path (w3newer checksum fetches, snapshot check-ins, the
diff server) funnels bytes through a :class:`ContentGuard`, which
either returns the decoded body unchanged — benign input is
byte-identical with guards on or off — or raises a
:class:`ContentGuardError` naming the tripped guard.

The error taxonomy deliberately parallels ``NetworkError``: transport
failures say "the network misbehaved", guard failures say "the content
misbehaved", and both are per-URL verdicts the caller can record
without aborting a run.

The HTML-side budgets (token count, nesting depth, attributes per tag,
diff work) live here too, as :class:`HtmlBudget` — a small mutable
meter the lexer, repairer, and differ call into.  Keeping the meter in
this module means ``repro.html`` never imports ``repro.web``; it only
holds an opaque object with ``charge_token()``-style methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ContentGuardError",
    "BodyTooLarge",
    "ExpansionBomb",
    "HeaderBomb",
    "CharsetUndecodable",
    "BinaryContent",
    "MarkupDepthExceeded",
    "TokenBomb",
    "AttributeBomb",
    "EntityBomb",
    "GuardLimits",
    "HtmlBudget",
    "ContentGuard",
    "GUARD_SLUGS",
    "RLE_ENCODING",
    "rle_compress",
    "rle_decompress",
]


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

class ContentGuardError(Exception):
    """Base of all content-guard verdicts (parallel to NetworkError).

    Each subclass carries a stable ``guard`` slug used for metrics
    (``guards.trips.<slug>``), quarantine journal entries, and report
    rendering.  The message is deterministic — no addresses, no clock.
    """

    guard = "content"

    def __init__(self, url: str, detail: str) -> None:
        super().__init__(f"{self.guard}: {detail}")
        self.url = str(url)
        self.detail = detail


class BodyTooLarge(ContentGuardError):
    """Decoded body exceeds the byte cap."""

    guard = "body-too-large"


class ExpansionBomb(ContentGuardError):
    """Compressed body expands past the ratio cap (a zip bomb)."""

    guard = "expansion-bomb"


class HeaderBomb(ContentGuardError):
    """Too many headers, or headers too large in aggregate."""

    guard = "header-bomb"


class CharsetUndecodable(ContentGuardError):
    """Declared charset (or transfer encoding) cannot be decoded
    deterministically and the body is not plain ASCII."""

    guard = "charset"


class BinaryContent(ContentGuardError):
    """Body is binary masquerading as text (NULs / control bytes)."""

    guard = "binary-content"


class MarkupDepthExceeded(ContentGuardError):
    """Element nesting exceeds the depth cap (a tag bomb)."""

    guard = "nesting-depth"


class TokenBomb(ContentGuardError):
    """Markup token count exceeds the cap."""

    guard = "token-bomb"


class AttributeBomb(ContentGuardError):
    """A single tag carries more attributes than the cap."""

    guard = "attr-bomb"


class EntityBomb(ContentGuardError):
    """Entity-reference count exceeds the cap."""

    guard = "entity-bomb"


#: Every quarantining guard class, in taxonomy order.  The hostile
#: benchmark asserts each of these trips at least once over its corpus.
GUARD_SLUGS: Tuple[str, ...] = (
    BodyTooLarge.guard,
    ExpansionBomb.guard,
    HeaderBomb.guard,
    CharsetUndecodable.guard,
    BinaryContent.guard,
    MarkupDepthExceeded.guard,
    TokenBomb.guard,
    AttributeBomb.guard,
    EntityBomb.guard,
)


# ----------------------------------------------------------------------
# Simulated transfer coding
# ----------------------------------------------------------------------

#: The one Content-Encoding the simulated web speaks: a line-oriented
#: run-length coding.  Each line is ``N*payload`` (payload repeated N
#: times) or a verbatim line.  Trivial to decode incrementally, which
#: is the point — a zip bomb must be caught *while* expanding, not
#: after materializing gigabytes.
RLE_ENCODING = "x-aide-rle"

_MAX_RUN_DIGITS = 12


def rle_compress(text: str) -> str:
    """Encode ``text`` line-by-line, collapsing runs of equal lines."""
    out: List[str] = []
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        j = i
        while j < len(lines) and lines[j] == lines[i]:
            j += 1
        run = j - i
        line = lines[i]
        if run > 1 and "*" not in line:
            out.append(f"{run}*{line}")
        else:
            out.extend([_escape_rle_line(line)] * run)
        i = j
    return "\n".join(out)


def _escape_rle_line(line: str) -> str:
    # A verbatim line that *looks* like a run header would mis-decode;
    # prefix a 1* count to pin its meaning.
    head, sep, _ = line.partition("*")
    if sep and head.isdigit() and len(head) <= _MAX_RUN_DIGITS:
        return f"1*{line}"
    return line


def rle_decompress(encoded: str, limits: "GuardLimits", url: str = "") -> str:
    """Decode incrementally, aborting the moment a cap is crossed."""
    encoded_size = max(1, len(encoded))
    max_decoded = min(
        limits.max_body_bytes,
        limits.max_expansion_ratio * encoded_size,
    )
    out: List[str] = []
    total = 0
    for raw in encoded.split("\n"):
        head, sep, payload = raw.partition("*")
        if sep and head.isdigit() and len(head) <= _MAX_RUN_DIGITS:
            count = int(head)
        else:
            count, payload = 1, raw
        cost = count * (len(payload) + 1)
        total += cost
        if total > max_decoded:
            if total > limits.max_body_bytes:
                raise BodyTooLarge(
                    url,
                    f"decoded body exceeds {limits.max_body_bytes} bytes",
                )
            raise ExpansionBomb(
                url,
                f"decoded/encoded ratio exceeds {limits.max_expansion_ratio}x "
                f"({total}+ bytes from {encoded_size})",
            )
        out.extend([payload] * count)
    return "\n".join(out)


# ----------------------------------------------------------------------
# Limits
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GuardLimits:
    """Every cap the guard enforces.  ``0`` disables a cap."""

    max_body_bytes: int = 1 << 20          # decoded body size
    max_expansion_ratio: int = 32          # decoded / encoded
    max_headers: int = 64                  # header count
    max_header_bytes: int = 8192           # aggregate name+value bytes
    max_nesting_depth: int = 512           # element stack depth
    max_tokens: int = 200_000              # lexed nodes per document
    max_attrs_per_tag: int = 256
    max_entity_refs: int = 50_000          # '&' occurrences per body
    max_diff_cost: int = 25_000_000        # len(old) * len(new) tokens
    binary_control_ratio: float = 0.10     # control chars / body chars

    @classmethod
    def strict(cls) -> "GuardLimits":
        """Tight caps for fuzzing — trips fast, keeps corpora small."""
        return cls(
            max_body_bytes=64 * 1024,
            max_expansion_ratio=8,
            max_headers=16,
            max_header_bytes=2048,
            max_nesting_depth=64,
            max_tokens=4096,
            max_attrs_per_tag=32,
            max_entity_refs=512,
            max_diff_cost=250_000,
        )

    def html_budget(self, url: str = "") -> "HtmlBudget":
        return HtmlBudget(
            url=url,
            max_tokens=self.max_tokens,
            max_depth=self.max_nesting_depth,
            max_attrs_per_tag=self.max_attrs_per_tag,
            max_work=self.max_diff_cost,
        )


# ----------------------------------------------------------------------
# HTML budget meter
# ----------------------------------------------------------------------

@dataclass
class HtmlBudget:
    """A mutable meter the HTML layer charges against.

    The lexer calls :meth:`charge_token` per node and
    :meth:`check_attrs` per tag; the repairer calls :meth:`check_depth`
    as its element stack grows; the differ asks :meth:`over_work`
    whether the quadratic comparator would bust the work cap (and
    degrades to a line diff rather than raising).  ``0`` caps are
    unlimited, so a default-constructed budget is a no-op.
    """

    url: str = ""
    max_tokens: int = 0
    max_depth: int = 0
    max_attrs_per_tag: int = 0
    max_work: int = 0
    tokens: int = 0
    peak_depth: int = 0

    def fork(self) -> "HtmlBudget":
        """A fresh meter with the same caps (counters reset) — the
        caps are per document, not per lifetime of the budget."""
        return HtmlBudget(
            url=self.url,
            max_tokens=self.max_tokens,
            max_depth=self.max_depth,
            max_attrs_per_tag=self.max_attrs_per_tag,
            max_work=self.max_work,
        )

    def charge_token(self) -> None:
        self.tokens += 1
        if self.max_tokens and self.tokens > self.max_tokens:
            raise TokenBomb(
                self.url, f"more than {self.max_tokens} markup tokens"
            )

    def check_attrs(self, count: int) -> None:
        if self.max_attrs_per_tag and count > self.max_attrs_per_tag:
            raise AttributeBomb(
                self.url,
                f"tag with more than {self.max_attrs_per_tag} attributes",
            )

    def check_depth(self, depth: int) -> None:
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self.max_depth and depth > self.max_depth:
            raise MarkupDepthExceeded(
                self.url, f"nesting deeper than {self.max_depth} elements"
            )

    def over_work(self, old_tokens: int, new_tokens: int) -> bool:
        """True when the quadratic diff would exceed the work cap."""
        if not self.max_work:
            return False
        return old_tokens * new_tokens > self.max_work


# ----------------------------------------------------------------------
# The guard
# ----------------------------------------------------------------------

#: Charsets the 1995-96 toolchain decodes deterministically.  Anything
#: else declared on a non-ASCII body is a quarantine verdict: guessing
#: would make checksums (and therefore change detection) unstable.
_KNOWN_CHARSETS = {
    "", "us-ascii", "ascii", "utf-8", "utf8",
    "iso-8859-1", "latin-1", "latin1",
}

_TEXT_CONTROLS = {"\t", "\n", "\r", "\f"}


def _charset_of(content_type: str) -> str:
    for part in content_type.split(";")[1:]:
        name, sep, value = part.partition("=")
        if sep and name.strip().lower() == "charset":
            return value.strip().strip('"').lower()
    return ""


class ContentGuard:
    """Admits or quarantines one response at a time.

    :meth:`admit` inspects headers and body against
    :class:`GuardLimits` and returns the (transfer-decoded) body, or
    raises the :class:`ContentGuardError` subclass naming the tripped
    guard.  Trips are counted per guard class, and mirrored to the
    observability registry as ``guards.trips.<slug>`` when an ``obs``
    registry is attached.
    """

    def __init__(self, limits: Optional[GuardLimits] = None, obs=None) -> None:
        self.limits = limits or GuardLimits()
        self.obs = obs
        self.admitted = 0
        self.trips: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------
    def _trip(self, exc: ContentGuardError) -> ContentGuardError:
        self.trips[exc.guard] = self.trips.get(exc.guard, 0) + 1
        if self.obs is not None:
            self.obs.counter(f"guards.trips.{exc.guard}").inc()
        return exc

    def html_budget(self, url: str = "") -> HtmlBudget:
        return self.limits.html_budget(url)

    def stats(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "tripped": sum(self.trips.values()),
            "trips": dict(sorted(self.trips.items())),
        }

    # -- header envelope -----------------------------------------------
    def check_headers(self, url: str, headers) -> None:
        """Header count/size caps — applies to HEAD responses too."""
        limits = self.limits
        if limits.max_headers and len(headers) > limits.max_headers:
            raise self._trip(HeaderBomb(
                url, f"more than {limits.max_headers} headers"
            ))
        if limits.max_header_bytes:
            total = sum(len(k) + len(v) for k, v in headers)
            if total > limits.max_header_bytes:
                raise self._trip(HeaderBomb(
                    url,
                    f"headers exceed {limits.max_header_bytes} bytes "
                    f"({total})",
                ))

    # -- body envelope -------------------------------------------------
    def admit(self, url: str, response) -> str:
        """Full envelope check for a fetched response.

        Returns the transfer-decoded body — byte-identical to the wire
        body for anything benign (identity encoding, sane markup).
        """
        self.check_headers(url, response.headers)
        body = response.body
        encoding = (response.headers.get("Content-Encoding") or "").lower()
        if encoding in ("", "identity"):
            pass
        elif encoding == RLE_ENCODING:
            try:
                body = rle_decompress(body, self.limits, url)
            except ContentGuardError as exc:
                raise self._trip(exc)
        else:
            raise self._trip(CharsetUndecodable(
                url, f"unknown content-encoding {encoding!r}"
            ))
        return self._admit_text(url, body, response.content_type)

    def admit_body(self, url: str, body: str,
                   content_type: str = "text/html") -> str:
        """Body-only check, for callers holding bytes without headers
        (direct check-ins, quarantine retry)."""
        return self._admit_text(url, body, content_type)

    def _admit_text(self, url: str, body: str, content_type: str) -> str:
        limits = self.limits
        if limits.max_body_bytes and len(body) > limits.max_body_bytes:
            raise self._trip(BodyTooLarge(
                url,
                f"body of {len(body)} bytes exceeds {limits.max_body_bytes}",
            ))
        self._check_charset(url, body, content_type)
        self._check_binary(url, body)
        if limits.max_entity_refs:
            refs = body.count("&")
            if refs > limits.max_entity_refs:
                raise self._trip(EntityBomb(
                    url,
                    f"{refs} entity references exceed "
                    f"{limits.max_entity_refs}",
                ))
        self._check_markup(url, body, content_type)
        self.admitted += 1
        if self.obs is not None:
            self.obs.counter("guards.admitted").inc()
        return body

    def _check_charset(self, url: str, body: str, content_type: str) -> None:
        """Deterministic fallback decoding: an unknown declared charset
        is only acceptable when the body is pure ASCII (every fallback
        agrees there); otherwise decoding would be a guess and the
        checksum pipeline unstable."""
        charset = _charset_of(content_type)
        if charset in _KNOWN_CHARSETS:
            return
        if body.isascii():
            return
        raise self._trip(CharsetUndecodable(
            url, f"undecodable charset {charset!r} on non-ASCII body"
        ))

    def _check_binary(self, url: str, body: str) -> None:
        if not body:
            return
        if "\x00" in body:
            raise self._trip(BinaryContent(url, "NUL byte in body"))
        controls = sum(
            1 for ch in body
            if (ch < " " and ch not in _TEXT_CONTROLS) or ch == "\x7f"
        )
        ratio = controls / len(body)
        if ratio > self.limits.binary_control_ratio:
            raise self._trip(BinaryContent(
                url,
                f"control-character ratio {ratio:.2f} exceeds "
                f"{self.limits.binary_control_ratio:.2f}",
            ))

    def _check_markup(self, url: str, body: str, content_type: str) -> None:
        """Structural scan: lex and repair under the HTML budget so tag
        bombs, attribute bombs, and token floods quarantine at ingest,
        not at first diff."""
        if not content_type.split(";")[0].strip().lower().startswith("text/html"):
            return
        budget = self.limits.html_budget(url)
        if not (budget.max_tokens or budget.max_depth
                or budget.max_attrs_per_tag):
            return
        from ..html.lexer import iter_nodes
        from ..html.repair import repair_nodes

        try:
            repair_nodes(iter_nodes(body, budget=budget), budget=budget)
        except ContentGuardError as exc:
            raise self._trip(exc)
