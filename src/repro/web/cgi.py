"""CGI scripts for the simulated web.

The paper's world is full of CGI: output that carries no Last-Modified
header (so URL-minder/w3newer fall back to checksums), pages that embed
access counters or the current time ("noisy" modifications, Section
3.1), and services reachable only by POST (Section 8.4).  A
:class:`CgiScript` is a Python callable dispatched by the server; this
module also supplies the stock scripts those experiments need.
"""

from __future__ import annotations

import codecs
from typing import Callable, Dict, Optional

from .http import Request, Response, make_response

__all__ = [
    "CgiScript",
    "parse_query_string",
    "encode_query_string",
    "CounterScript",
    "ClockScript",
    "FormEchoScript",
    "StaticCgiScript",
]

#: A CGI script: (request, now) -> Response.
CgiScript = Callable[[Request, int], Response]


def parse_query_string(query: Optional[str]) -> Dict[str, str]:
    """Decode ``a=1&b=two`` (and ``+`` / ``%XX`` escapes) to a dict.

    Duplicate keys keep the last value — enough for AIDE's forms.
    """
    out: Dict[str, str] = {}
    if not query:
        return out
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        out[_unescape(key)] = _unescape(value)
    return out


def encode_query_string(params: Dict[str, str]) -> str:
    """Inverse of :func:`parse_query_string`."""
    return "&".join(f"{_escape(k)}={_escape(v)}" for k, v in params.items())


def _invalid_run_as_percent(err: UnicodeError) -> tuple:
    """Codec error handler: render each invalid byte as a literal
    ``%XX`` escape instead of U+FFFD.

    ``decode("utf-8", "replace")`` folds every malformed run — overlong
    encodings, stray continuation bytes, truncated sequences — into the
    same replacement character, so distinct hostile query strings
    collapse into identical keys.  Re-emitting the offending bytes as
    percent escapes keeps distinct inputs distinct (and round-trips:
    re-submitting the decoded form resends the same bytes).
    """
    raw = err.object[err.start:err.end]
    return "".join(f"%{byte:02X}" for byte in raw), err.end


codecs.register_error("aide-percent", _invalid_run_as_percent)


def _unescape(text: str) -> str:
    """Decode ``+`` and ``%XX`` byte escapes (UTF-8 sequences included).

    Percent escapes are byte-level, so multi-byte characters arrive as
    several ``%XX`` runs; bytes are accumulated and decoded together.
    Malformed escapes pass through literally, as servers of the era
    did, and byte runs that are not valid UTF-8 (overlong encodings
    included) stay visible as literal ``%XX`` text rather than being
    folded into U+FFFD.
    """
    text = text.replace("+", " ")
    out = bytearray()
    i = 0
    while i < len(text):
        if text[i] == "%" and i + 2 < len(text):
            hex_part = text[i + 1:i + 3]
            try:
                out.append(int(hex_part, 16))
                i += 3
                continue
            except ValueError:
                pass
        out.extend(text[i].encode("utf-8"))
        i += 1
    return out.decode("utf-8", "aide-percent")


_SAFE = set(b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
            b"0123456789-_.~/")


def _escape(text: str) -> str:
    out = []
    for byte in text.encode("utf-8"):
        if byte in _SAFE:
            out.append(chr(byte))
        elif byte == 0x20:
            out.append("+")
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


class CounterScript:
    """A page embedding its own access count — the canonical noisy page.

    Section 3.1: "pages that report the number of times they have been
    accessed... will look different every time they are retrieved."
    CGI output carries no Last-Modified, so date-based checkers cannot
    even see it, and checksum-based checkers see a change on every hit.
    """

    def __init__(self, title: str = "Visitor counter") -> None:
        self.title = title
        self.hits = 0

    def __call__(self, request: Request, now: int) -> Response:
        self.hits += 1
        body = (
            f"<HTML><HEAD><TITLE>{self.title}</TITLE></HEAD><BODY>"
            f"<H1>{self.title}</H1>"
            f"<P>You are visitor number <B>{self.hits}</B>.</P>"
            "</BODY></HTML>"
        )
        return make_response(200, body)


class ClockScript:
    """A page embedding the current time — the other noisy archetype."""

    def __init__(self, title: str = "Current time") -> None:
        self.title = title

    def __call__(self, request: Request, now: int) -> Response:
        from ..simclock import format_timestamp

        body = (
            f"<HTML><HEAD><TITLE>{self.title}</TITLE></HEAD><BODY>"
            f"<P>The time is now {format_timestamp(now)}.</P>"
            "</BODY></HTML>"
        )
        return make_response(200, body)


class FormEchoScript:
    """A POST service whose output depends on the submitted form.

    Section 8.4's problem case: "services that use POST cannot be
    accessed [by AIDE], because the input to the services is not
    stored."  The AIDE POST extension replays stored form input against
    scripts like this one.
    """

    def __init__(self, title: str = "Query results") -> None:
        self.title = title
        #: Mutable backend state so that results can change between
        #: submissions of the identical form (a changing database).
        self.generation = 0

    def __call__(self, request: Request, now: int) -> Response:
        if request.method == "POST":
            params = parse_query_string(request.body)
        else:
            params = parse_query_string(request.url.query)
        rows = "".join(
            f"<LI>{key} = {value} (gen {self.generation})"
            for key, value in sorted(params.items())
        )
        body = (
            f"<HTML><HEAD><TITLE>{self.title}</TITLE></HEAD><BODY>"
            f"<H1>{self.title}</H1><UL>{rows}</UL></BODY></HTML>"
        )
        return make_response(200, body)


class StaticCgiScript:
    """CGI returning fixed content — dynamic transport, stable payload.

    Exercises the checksum path: no Last-Modified, yet the checksum
    does not change, so no (junk) notification should fire.
    """

    def __init__(self, body: str) -> None:
        self.body = body

    def __call__(self, request: Request, now: int) -> Response:
        return make_response(200, self.body)
