"""The robot exclusion protocol (1994 convention).

Paper Section 3.1: a site "may disallow retrieval of this URL by
'robots'... programs only voluntarily follow the 'robot exclusion
protocol', the convention that defines the use of robots.txt.  Although
w3newer currently obeys this protocol, it is not clear that it should".
w3newer therefore parses robots.txt, caches the verdict, and exposes an
``ignore_robots`` flag.

The format implemented is the original norobots convention: records of
``User-agent:`` lines followed by ``Disallow:`` lines, blank-line
separated, ``#`` comments, prefix-match semantics, empty Disallow
meaning "allow everything".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["RobotsFile", "parse_robots_txt"]


@dataclass
class _Record:
    agents: List[str] = field(default_factory=list)
    disallows: List[str] = field(default_factory=list)


@dataclass
class RobotsFile:
    """Parsed robots.txt with the original prefix-match semantics."""

    records: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...]], ...] = ()

    def allows(self, agent: str, path: str) -> bool:
        """May ``agent`` fetch ``path``?

        The most specific applicable record wins: a record naming the
        agent explicitly beats the ``*`` record; within a record, any
        matching Disallow prefix forbids access.
        """
        agent_lower = agent.lower()
        chosen = None
        for agents, disallows in self.records:
            if any(name != "*" and name.lower() in agent_lower for name in agents):
                chosen = disallows
                break
            if "*" in agents and chosen is None:
                chosen = disallows
        if chosen is None:
            return True
        return not any(path.startswith(prefix) for prefix in chosen if prefix)

    @property
    def is_empty(self) -> bool:
        return not self.records


def parse_robots_txt(text: str) -> RobotsFile:
    """Parse robots.txt text; garbage lines are ignored, per the
    convention's "be liberal" guidance."""
    records: List[_Record] = []
    current: _Record = _Record()
    saw_agent = False

    def _flush() -> None:
        nonlocal current, saw_agent
        if current.agents:
            records.append(current)
        current = _Record()
        saw_agent = False

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            _flush()
            continue
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "user-agent":
            if saw_agent and current.disallows:
                # New record begins without a blank separator.
                _flush()
            current.agents.append(value)
            saw_agent = True
        elif key == "disallow" and saw_agent:
            if value:
                current.disallows.append(value)
    _flush()
    return RobotsFile(
        records=tuple(
            (tuple(record.agents), tuple(record.disallows)) for record in records
        )
    )
