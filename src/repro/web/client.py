"""The user agent: how AIDE's tools speak HTTP.

w3newer, snapshot, and the centralized tracker all fetch through a
:class:`UserAgent`: optional proxy routing, redirect following with a
hop limit, and convenience GET/HEAD/POST wrappers.  Robot-exclusion
policy deliberately does NOT live here — whether to obey robots.txt is
the *tool's* decision (Section 3.1 debates it), so the client only
offers :meth:`fetch_robots`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..simclock import SimClock
from .http import Headers, NetworkError, Request, Response
from .network import Network
from .proxy import ProxyCache
from .robots import RobotsFile, parse_robots_txt
from .url import Url, join_url, parse_url

__all__ = ["UserAgent", "FetchResult", "TooManyRedirects",
           "RobotsUnavailable", "robots_from_response"]

_MAX_REDIRECTS = 5


class TooManyRedirects(NetworkError):
    """Redirect chain exceeded the hop limit (loop or misconfiguration).

    Carries the full hop trail (``redirects``, the URLs visited in
    order) so reports can show *where* the chain went instead of a
    bare count — a loop between two CGI endpoints and a five-deep
    server migration read very differently to the person fixing it.
    """

    def __init__(self, url: str, redirects: List[str]) -> None:
        chain = " -> ".join(redirects) if redirects else str(url)
        super().__init__(
            f"more than {_MAX_REDIRECTS} redirects from {url} "
            f"(chain: {chain})"
        )
        self.url = str(url)
        self.redirects = list(redirects)


class RobotsUnavailable(Exception):
    """robots.txt answered with an HTTP error (500 from an overloaded
    host, 403, ...).

    Deliberately NOT a :class:`NetworkError`: transport failures mean
    "could not ask", which callers may shrug at, while an HTTP error
    means the host answered and we still don't know its policy — the
    checker must surface that as a per-URL error instead of crawling a
    host that never said "allowed".
    """

    def __init__(self, host: str, status: int, reason: str) -> None:
        super().__init__(f"robots.txt for {host}: HTTP {status} {reason}")
        self.host = host
        self.status = status
        self.reason = reason


def robots_from_response(host: str, response) -> RobotsFile:
    """Turn a ``/robots.txt`` response into a policy, per the protocol.

    Only 404 means "no robots file, no restrictions".  Any other non-ok
    status raises :class:`RobotsUnavailable` — a 500 from an overloaded
    host is not permission to crawl it.
    """
    if response.ok:
        return parse_robots_txt(response.body)
    if response.status == 404:
        return RobotsFile()
    raise RobotsUnavailable(host, response.status, response.reason)


@dataclass
class FetchResult:
    """A response plus the redirect trail that produced it."""

    response: Response
    url: Url
    redirects: List[str] = field(default_factory=list)

    @property
    def moved(self) -> bool:
        return bool(self.redirects)


class UserAgent:
    """HTTP client with optional proxy and redirect following."""

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        proxy: Optional[ProxyCache] = None,
        agent_name: str = "w3newer/1.0",
        default_timeout: int = 60,
        politeness=None,
    ) -> None:
        self.network = network
        self.clock = clock
        self.proxy = proxy
        self.agent_name = agent_name
        self.default_timeout = default_timeout
        #: Optional :class:`~repro.web.politeness.PolitenessLog`: every
        #: outbound request (retries included) is noted per host before
        #: dispatch — the wire-side ground truth the crawl governor's
        #: virtual schedule is checked against.
        self.politeness = politeness

    # ------------------------------------------------------------------
    def _transport(self, request: Request) -> Response:
        request.headers.set("User-Agent", self.agent_name)
        if self.politeness is not None:
            self.politeness.note(
                request.url.host, self.clock.now, method=request.method
            )
        if self.proxy is not None:
            return self.proxy.request(request)
        return self.network.request(request)

    def _fetch(
        self,
        method: str,
        url: Union[str, Url],
        body: str = "",
        timeout: Optional[int] = None,
        headers: Optional[Headers] = None,
    ) -> FetchResult:
        if isinstance(url, str):
            url = parse_url(url)
        url = url.normalized()
        timeout = timeout if timeout is not None else self.default_timeout
        redirects: List[str] = []
        current = url
        for _ in range(_MAX_REDIRECTS + 1):
            request = Request(
                method=method,
                url=current,
                headers=headers.copy() if headers else Headers(),
                body=body,
                timeout=timeout,
            )
            response = self._transport(request)
            if response.status in (301, 302):
                location = response.headers.get("Location")
                if not location:
                    return FetchResult(response, current, redirects)
                redirects.append(str(current))
                current = join_url(current, location).normalized()
                continue
            return FetchResult(response, current, redirects)
        redirects.append(str(current))
        raise TooManyRedirects(str(url), redirects)

    # ------------------------------------------------------------------
    def get(self, url: Union[str, Url], timeout: Optional[int] = None,
            headers: Optional[Headers] = None) -> FetchResult:
        return self._fetch("GET", url, timeout=timeout, headers=headers)

    def head(self, url: Union[str, Url], timeout: Optional[int] = None) -> FetchResult:
        return self._fetch("HEAD", url, timeout=timeout)

    def post(self, url: Union[str, Url], body: str,
             timeout: Optional[int] = None) -> FetchResult:
        return self._fetch("POST", url, body=body, timeout=timeout)

    def fetch_robots(self, host: str, timeout: Optional[int] = None) -> RobotsFile:
        """Fetch and parse ``http://host/robots.txt``.

        A missing file (404) means "no restrictions", per the protocol;
        any other HTTP error raises :class:`RobotsUnavailable`.
        Transport errors propagate — the caller decides whether an
        unreachable host blocks the real fetch anyway.
        """
        result = self.get(f"http://{host}/robots.txt", timeout=timeout)
        return robots_from_response(host, result.response)
