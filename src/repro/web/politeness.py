"""Transport-level per-host request accounting.

The crawl pipeline's politeness guarantees (max in-flight per host,
min inter-request delay) are *scheduled* by the governor's virtual
timeline; this log is the ground truth on the other side of the stack:
it counts what actually went over the wire, per host, at the
:class:`~repro.web.client.UserAgent` transport hook.  Tests cross-check
the two — every request the governor placed must show up here, and
nothing else.

Attached to a UserAgent (or through a ResilientAgent's passthrough),
every request is noted before dispatch, including retries the
resilience layer issues — retries are real traffic a polite crawler
must account for.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["PolitenessLog"]


class PolitenessLog:
    """Per-host counts and timing of outbound requests."""

    def __init__(self) -> None:
        self.requests_by_host: Dict[str, int] = {}
        self.last_request_at: Dict[str, int] = {}
        #: Smallest observed gap between successive requests to one
        #: host, in sim-clock seconds (None until a host repeats).
        #: Within one frozen-clock run every gap is 0 — the virtual
        #: spacing lives in the governor — so this is meaningful for
        #: cross-run cadence, not intra-run pacing.
        self.min_gap: Optional[int] = None
        self.total = 0

    def note(self, host: str, now: int, method: str = "GET") -> None:
        """Record one outbound request to ``host`` at sim time ``now``."""
        host = (host or "-").lower()
        self.total += 1
        self.requests_by_host[host] = self.requests_by_host.get(host, 0) + 1
        last = self.last_request_at.get(host)
        if last is not None:
            gap = now - last
            if self.min_gap is None or gap < self.min_gap:
                self.min_gap = gap
        self.last_request_at[host] = now

    def busiest(self) -> Optional[Tuple[str, int]]:
        """The host that received the most requests (ties: name order)."""
        if not self.requests_by_host:
            return None
        host = min(
            self.requests_by_host,
            key=lambda h: (-self.requests_by_host[h], h),
        )
        return host, self.requests_by_host[host]

    def stats(self) -> Dict[str, object]:
        """Aggregate accounting for the observability surface."""
        top = self.busiest()
        return {
            "requests": self.total,
            "hosts": len(self.requests_by_host),
            "busiest_host": top[0] if top else None,
            "busiest_requests": top[1] if top else 0,
            "min_gap": self.min_gap,
        }
