"""Virtual HTTP servers.

Each :class:`HttpServer` is one origin host on the simulated internet:
a tree of static pages (with Last-Modified stamps maintained by the
shared :class:`~repro.simclock.SimClock`), CGI dispatch, a robots.txt,
conditional-GET handling, redirects, and per-server response delay (so
overload/timeout experiments work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..simclock import SimClock
from .cgi import CgiScript
from .http import Request, Response, make_response
from .robots import RobotsFile, parse_robots_txt

__all__ = ["Page", "HttpServer"]


@dataclass
class Page:
    """One static resource: body, modification stamp, optional quirks."""

    body: str
    last_modified: int
    content_type: str = "text/html"
    #: Some 1995 servers omitted Last-Modified even for static files;
    #: the checksum fallback path needs such pages.
    send_last_modified: bool = True
    #: Revision counter, handy for tests and workload bookkeeping.
    version: int = 1
    #: Extra response headers (e.g. ``Content-Encoding`` for the
    #: simulated transfer coding, or a hostile server's header flood).
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class _Redirect:
    location: str
    permanent: bool = True


class HttpServer:
    """A single virtual host.

    Pages are keyed by path (query strings route to CGI only).  All
    mutation goes through :meth:`set_page` so Last-Modified stamps stay
    truthful — exactly the invariant w3newer's date logic relies on.
    """

    def __init__(
        self,
        host: str,
        clock: SimClock,
        response_delay: int = 0,
    ) -> None:
        self.host = host
        self.clock = clock
        #: Seconds this server takes to answer; requests whose timeout
        #: is smaller observe a timeout (set high to simulate overload).
        self.response_delay = response_delay
        self._pages: Dict[str, Page] = {}
        self._cgi: Dict[str, CgiScript] = {}
        self._redirects: Dict[str, _Redirect] = {}
        self._gone: Dict[str, int] = {}  # path -> status (404 or 410)
        self._robots: Optional[RobotsFile] = None
        self.request_count = 0
        self.head_count = 0
        self.get_count = 0
        self.post_count = 0

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------
    def set_page(
        self,
        path: str,
        body: str,
        *,
        content_type: str = "text/html",
        send_last_modified: bool = True,
        touch: bool = True,
        headers: Optional[Dict[str, str]] = None,
    ) -> Page:
        """Create or replace a static page.

        ``touch=True`` stamps Last-Modified with the current simulation
        time; ``touch=False`` preserves the previous stamp (content
        changed but the server lies — another real-world failure mode).
        Setting identical content with ``touch=True`` still restamps,
        reproducing servers that touch files without changing them.
        """
        existing = self._pages.get(path)
        stamp = self.clock.now if touch or existing is None else existing.last_modified
        version = existing.version + 1 if existing else 1
        page = Page(
            body=body,
            last_modified=stamp,
            content_type=content_type,
            send_last_modified=send_last_modified,
            version=version,
            headers=dict(headers) if headers else {},
        )
        self._pages[path] = page
        self._gone.pop(path, None)
        self._redirects.pop(path, None)
        return page

    def get_page(self, path: str) -> Optional[Page]:
        return self._pages.get(path)

    def remove_page(self, path: str, status: int = 404) -> None:
        """Delete a page; subsequent requests get 404 (or 410 Gone)."""
        if status not in (404, 410):
            raise ValueError("removal status must be 404 or 410")
        self._pages.pop(path, None)
        self._gone[path] = status

    def add_redirect(self, path: str, location: str, permanent: bool = True) -> None:
        """The URL moved, leaving a forwarding pointer (Section 3.1)."""
        self._pages.pop(path, None)
        self._redirects[path] = _Redirect(location=location, permanent=permanent)

    def register_cgi(self, path: str, script: CgiScript) -> None:
        self._cgi[path] = script

    def set_robots_txt(self, text: str) -> None:
        self._robots = parse_robots_txt(text)
        self.set_page("/robots.txt", text, content_type="text/plain")

    @property
    def robots(self) -> RobotsFile:
        return self._robots if self._robots is not None else RobotsFile()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Serve one request.  Transport errors (timeouts, refusals) are
        the network's concern; everything here is an HTTP response."""
        self.request_count += 1
        if request.method == "HEAD":
            self.head_count += 1
        elif request.method == "GET":
            self.get_count += 1
        else:
            self.post_count += 1

        path = request.url.path or "/"

        redirect = self._redirects.get(path)
        if redirect is not None:
            status = 301 if redirect.permanent else 302
            return make_response(status, location=redirect.location)

        script = self._cgi.get(path)
        if script is not None:
            response = script(request, self.clock.now)
            if request.method == "HEAD":
                response.body = ""
            return response

        if request.method == "POST":
            return make_response(405, "<P>POST to a non-CGI resource.</P>")

        gone = self._gone.get(path)
        if gone is not None:
            return make_response(gone, f"<P>{gone}: {path}</P>")

        page = self._pages.get(path)
        if page is None:
            return make_response(404, f"<P>404: {path} not found.</P>")

        stamp = page.last_modified if page.send_last_modified else None
        since = request.headers.get("X-Sim-If-Modified-Since")
        if since is not None and page.send_last_modified:
            if page.last_modified <= int(since):
                return make_response(304, last_modified=stamp)

        body = "" if request.method == "HEAD" else page.body
        response = make_response(
            200, body, last_modified=stamp, content_type=page.content_type
        )
        for name, value in page.headers.items():
            response.headers.set(name, value)
        if request.method == "HEAD":
            # Content-Length still advertises the entity size.
            response.headers.set("Content-Length", str(len(page.body)))
        return response
