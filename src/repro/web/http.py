"""HTTP/1.0 message model for the simulated web.

Only what 1995-96 tooling used: ``GET``, ``HEAD``, ``POST``; the
``Last-Modified``, ``If-Modified-Since``, ``Content-Type``,
``Content-Length`` and ``Location`` headers; and the status codes AIDE's
error handling distinguishes.  Bodies are ``str`` — the corpus is HTML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import re

from ..simclock import MONTH_NAMES, format_timestamp, timestamp_from_civil
from .url import Url, parse_url

__all__ = [
    "Headers",
    "Request",
    "Response",
    "STATUS_REASONS",
    "format_http_date",
    "parse_http_date",
    "NetworkError",
    "DnsError",
    "ConnectionRefused",
    "TimeoutError_",
    "NetworkUnreachable",
]

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    #: HTTP/1.0's spelling; the Memento TimeGate's redirect carries it.
    302: "Moved Temporarily",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    #: Datetime negotiation (RFC 7089): an exact-match TimeGate with no
    #: revision at the requested instant refuses rather than guesses.
    406: "Not Acceptable",
    410: "Gone",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


# ----------------------------------------------------------------------
# HTTP dates
# ----------------------------------------------------------------------
#: RFC 850 / obsolete cookie-era dates: ``Sunday, 06-Nov-95 08:49:37 GMT``
#: (full weekday name, two-digit year).
_RFC850_RE = re.compile(
    r"^\s*[A-Za-z]+,\s+(\d{1,2})-([A-Za-z]{3})-(\d{2,4})\s+"
    r"(\d{2}):(\d{2}):(\d{2})\s+GMT\s*$"
)
#: asctime(): ``Sun Nov  6 08:49:37 1995`` (no comma, no zone).
_ASCTIME_RE = re.compile(
    r"^\s*[A-Za-z]{3}\s+([A-Za-z]{3})\s+(\d{1,2})\s+"
    r"(\d{2}):(\d{2}):(\d{2})\s+(\d{4})\s*$"
)


def format_http_date(ts: int) -> str:
    """Render a simulation timestamp as an RFC 1123 HTTP date.

    The one format a server may *send* (``Last-Modified``,
    ``Memento-Datetime``, ``Accept-Datetime`` values).  Alias of
    :func:`repro.simclock.format_timestamp`, re-exported here so HTTP
    code has one obvious import instead of inline strftime variants.
    """
    return format_timestamp(ts)


def parse_http_date(text: Optional[str]) -> Optional[int]:
    """Parse any of the three HTTP date formats into a sim timestamp.

    RFC 1123 (``Fri, 01 Sep 1995 00:00:00 GMT``) is the preferred form;
    RFC 850 (``Friday, 01-Sep-95 00:00:00 GMT``) and C asctime
    (``Fri Sep  1 00:00:00 1995``) are tolerated because a reader
    "MUST accept" all three — 1995 servers emitted every one of them.
    Two-digit RFC 850 years are windowed: 70-99 → 19xx, else 20xx.
    None for garbage or pre-epoch dates, same contract as
    :func:`repro.simclock.parse_timestamp`.
    """
    if not text:
        return None
    from ..simclock import parse_timestamp

    ts = parse_timestamp(text)
    if ts is not None:
        return ts
    match = _RFC850_RE.match(text)
    if match:
        day = int(match.group(1))
        month_name = match.group(2).capitalize()
        if month_name not in MONTH_NAMES:
            return None
        year = int(match.group(3))
        if year < 100:
            year += 1900 if year >= 70 else 2000
        return timestamp_from_civil(
            year, MONTH_NAMES.index(month_name) + 1, day,
            int(match.group(4)), int(match.group(5)), int(match.group(6)),
        )
    match = _ASCTIME_RE.match(text)
    if match:
        month_name = match.group(1).capitalize()
        if month_name not in MONTH_NAMES:
            return None
        return timestamp_from_civil(
            int(match.group(6)), MONTH_NAMES.index(month_name) + 1,
            int(match.group(2)),
            int(match.group(3)), int(match.group(4)), int(match.group(5)),
        )
    return None


class NetworkError(Exception):
    """Base of all transport-level failures (not HTTP responses).

    The paper distinguishes these from per-URL HTTP errors: "Local
    problems such as network connectivity or the status of a
    proxy-caching server can cause all HTTP requests to fail."
    """


class DnsError(NetworkError):
    """Host name does not resolve (server renamed or deactivated)."""


class ConnectionRefused(NetworkError):
    """Host resolves but nothing is listening."""


class TimeoutError_(NetworkError):
    """The server (or an overloaded proxy) did not answer in time."""


class NetworkUnreachable(NetworkError):
    """Systemic connectivity failure — every request will fail."""


class Headers:
    """Case-insensitive header multimap with last-wins get semantics."""

    def __init__(self, items: Optional[Dict[str, str]] = None) -> None:
        self._items: Dict[str, Tuple[str, str]] = {}
        if items:
            for key, value in items.items():
                self.set(key, value)

    def set(self, key: str, value: str) -> None:
        self._items[key.lower()] = (key, str(value))

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        entry = self._items.get(key.lower())
        return entry[1] if entry else default

    def remove(self, key: str) -> None:
        self._items.pop(key.lower(), None)

    def __contains__(self, key: str) -> bool:
        return key.lower() in self._items

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = dict(self._items)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}: {v}" for k, v in self)
        return f"Headers({inner})"


@dataclass
class Request:
    """One HTTP request.  ``timeout`` is in simulated seconds."""

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    timeout: int = 60

    def __post_init__(self) -> None:
        if isinstance(self.url, str):
            self.url = parse_url(self.url)
        self.method = self.method.upper()
        if self.method not in ("GET", "HEAD", "POST"):
            raise ValueError(f"unsupported method: {self.method}")

    @property
    def is_conditional(self) -> bool:
        return "If-Modified-Since" in self.headers


@dataclass
class Response:
    """One HTTP response."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def last_modified(self) -> Optional[int]:
        """The Last-Modified header parsed back to a sim timestamp.

        Servers in this simulation stamp the raw integer alongside the
        formatted date (header ``X-Sim-Last-Modified``); when only the
        human-readable RFC-1123 date is present (a hand-built response),
        it is parsed instead.  Absence returns None — exactly the case
        the paper's checksum fallback handles.
        """
        raw = self.headers.get("X-Sim-Last-Modified")
        if raw is not None:
            try:
                return int(raw)
            except ValueError:
                return None
        return parse_http_date(self.headers.get("Last-Modified"))

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "text/html")


def make_response(
    status: int,
    body: str = "",
    *,
    last_modified: Optional[int] = None,
    content_type: str = "text/html",
    location: Optional[str] = None,
) -> Response:
    """Convenience constructor used throughout the server code."""
    headers = Headers()
    headers.set("Content-Type", content_type)
    headers.set("Content-Length", str(len(body)))
    if last_modified is not None:
        headers.set("Last-Modified", format_http_date(last_modified))
        headers.set("X-Sim-Last-Modified", str(last_modified))
    if location is not None:
        headers.set("Location", location)
    return Response(status=status, headers=headers, body=body)


__all__.append("make_response")
