"""URL parsing, joining, and normalization (RFC 1738/1808 era).

AIDE handles ``http:`` and ``file:`` URLs (w3newer supports ``file:``
hotlist entries checked with a cheap ``stat``), resolves relative links
when rewriting snapshot pages with a ``BASE`` directive, and keys every
repository and cache on normalized URL strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["Url", "parse_url", "join_url"]

_URL_RE = re.compile(
    r"^(?:(?P<scheme>[a-zA-Z][a-zA-Z0-9+.\-]*):)?"
    r"(?://(?P<host>[^/:?#]*)(?::(?P<port>\d+))?)?"
    r"(?P<path>[^?#]*)"
    r"(?:\?(?P<query>[^#]*))?"
    r"(?:#(?P<fragment>.*))?$"
)

_DEFAULT_PORTS = {"http": 80, "https": 443, "gopher": 70, "ftp": 21}


@dataclass(frozen=True)
class Url:
    """A parsed URL.  Immutable; use :func:`join_url` to derive others."""

    scheme: str = ""
    host: str = ""
    port: Optional[int] = None
    path: str = ""
    query: Optional[str] = None
    fragment: Optional[str] = None

    @property
    def effective_port(self) -> Optional[int]:
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS.get(self.scheme)

    @property
    def request_path(self) -> str:
        """Path + query as sent in an HTTP request line."""
        path = self.path or "/"
        if self.query is not None:
            return f"{path}?{self.query}"
        return path

    @property
    def netloc(self) -> str:
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            return f"{self.host}:{self.port}"
        return self.host

    def normalized(self) -> "Url":
        """Canonical form: lowercased scheme/host, default port dropped,
        empty path of a host-full URL becomes "/", fragment dropped.

        Fragments never reach the server, so two URLs differing only in
        fragment are the same page for tracking purposes.
        """
        scheme = self.scheme.lower()
        host = self.host.lower()
        port = self.port
        if port is not None and port == _DEFAULT_PORTS.get(scheme):
            port = None
        path = self.path
        if host and not path:
            path = "/"
        return Url(scheme=scheme, host=host, port=port, path=path,
                   query=self.query, fragment=None)

    def without_fragment(self) -> "Url":
        return replace(self, fragment=None)

    def __str__(self) -> str:
        out = ""
        if self.scheme:
            out += f"{self.scheme}:"
        if self.host or self.scheme in ("http", "https", "ftp", "file"):
            out += f"//{self.netloc}"
        out += self.path
        if self.query is not None:
            out += f"?{self.query}"
        if self.fragment is not None:
            out += f"#{self.fragment}"
        return out


def parse_url(text: str) -> Url:
    """Parse a URL string.  Forgiving: anything matches (worst case it
    all lands in ``path``), mirroring how 1995 tools treated hotlist
    lines."""
    match = _URL_RE.match(text.strip())
    assert match is not None  # the pattern cannot fail
    parts = match.groupdict()
    return Url(
        scheme=(parts["scheme"] or "").lower(),
        host=(parts["host"] or "").lower(),
        port=int(parts["port"]) if parts["port"] else None,
        path=parts["path"] or "",
        query=parts["query"],
        fragment=parts["fragment"],
    )


def _merge_paths(base: Url, path: str) -> str:
    if not path:
        return base.path or "/"
    if path.startswith("/"):
        return path
    base_path = base.path or "/"
    directory = base_path.rsplit("/", 1)[0]
    return f"{directory}/{path}"


def _remove_dot_segments(path: str) -> str:
    if not path:
        return path
    absolute = path.startswith("/")
    segments = path.split("/")
    out = []
    for segment in segments:
        if segment == ".":
            continue
        if segment == "..":
            if out and out[-1] not in ("", ".."):
                out.pop()
            elif not absolute:
                out.append("..")
            continue
        out.append(segment)
    # Preserve a trailing slash when the last segment vanished.
    if path.endswith(("/.", "/..", "/")) and (not out or out[-1] != ""):
        out.append("")
    result = "/".join(out)
    if absolute and not result.startswith("/"):
        result = "/" + result
    return result


def join_url(base: Url, reference: str) -> Url:
    """Resolve ``reference`` against ``base`` (RFC 1808 semantics).

    This is what a browser does with relative ``HREF``s, and what the
    snapshot facility's ``BASE`` rewriting has to emulate.
    """
    ref = parse_url(reference)
    if ref.scheme:
        resolved = replace(ref, path=_remove_dot_segments(ref.path)).normalized()
        return replace(resolved, fragment=ref.fragment)
    if ref.host:
        # Network-path reference ("//host/path"): adopt base's scheme.
        resolved = Url(
            scheme=base.scheme,
            host=ref.host,
            port=ref.port,
            path=_remove_dot_segments(ref.path),
            query=ref.query,
        ).normalized()
        return replace(resolved, fragment=ref.fragment)
    if not ref.path and ref.query is None:
        # Fragment-only reference: same document.
        return replace(base, fragment=ref.fragment)
    merged = _remove_dot_segments(_merge_paths(base, ref.path))
    return Url(
        scheme=base.scheme,
        host=base.host,
        port=base.port,
        path=merged,
        query=ref.query,
        fragment=ref.fragment,
    )
