"""The simulated World-Wide Web.

Virtual hosts, HTTP/1.0 transport with fault injection, a
proxy-caching server, CGI, the robot exclusion protocol, and the
synthetic sites the paper's experiments revolve around.  AIDE's tools
speak to this substrate exactly as they would to the 1995 internet —
through GET/HEAD/POST and headers — so every systems issue the paper
discusses (timeouts, moved URLs, robot bans, noisy pages) is
exercisable deterministically.
"""

from .client import (
    FetchResult,
    RobotsUnavailable,
    TooManyRedirects,
    UserAgent,
    robots_from_response,
)
from .http import (
    ConnectionRefused,
    DnsError,
    Headers,
    NetworkError,
    NetworkUnreachable,
    Request,
    Response,
    TimeoutError_,
    make_response,
)
from .guards import (
    AttributeBomb,
    BinaryContent,
    BodyTooLarge,
    CharsetUndecodable,
    ContentGuard,
    ContentGuardError,
    EntityBomb,
    ExpansionBomb,
    GuardLimits,
    HeaderBomb,
    HtmlBudget,
    MarkupDepthExceeded,
    TokenBomb,
)
from .network import FaultPlan, FaultRule, Network, RequestRecord
from .politeness import PolitenessLog
from .proxy import ProxyCache
from .resilience import (
    CircuitBreaker,
    CircuitOpen,
    ResilientAgent,
    RetriesExhausted,
    RetryPolicy,
)
from .robots import RobotsFile, parse_robots_txt
from .server import HttpServer, Page
from .url import Url, join_url, parse_url

__all__ = [
    "FetchResult",
    "RobotsUnavailable",
    "TooManyRedirects",
    "UserAgent",
    "robots_from_response",
    "AttributeBomb",
    "BinaryContent",
    "BodyTooLarge",
    "CharsetUndecodable",
    "ContentGuard",
    "ContentGuardError",
    "EntityBomb",
    "ExpansionBomb",
    "GuardLimits",
    "HeaderBomb",
    "HtmlBudget",
    "MarkupDepthExceeded",
    "TokenBomb",
    "FaultPlan",
    "FaultRule",
    "CircuitBreaker",
    "CircuitOpen",
    "ResilientAgent",
    "RetriesExhausted",
    "RetryPolicy",
    "ConnectionRefused",
    "DnsError",
    "Headers",
    "NetworkError",
    "NetworkUnreachable",
    "Request",
    "Response",
    "TimeoutError_",
    "make_response",
    "Network",
    "RequestRecord",
    "ProxyCache",
    "RobotsFile",
    "parse_robots_txt",
    "PolitenessLog",
    "HttpServer",
    "Page",
    "Url",
    "join_url",
    "parse_url",
]
